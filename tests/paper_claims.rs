//! Integration tests for the paper's headline qualitative claims, exercised across the
//! topology, search, and analysis crates at a reduced (but not toy) scale.
//!
//! These tests pin the *direction* of every effect the paper reports; absolute values are
//! scale-dependent and are checked against the paper in `EXPERIMENTS.md` instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfoverlay::analysis::powerlaw_fit::fit_exponent_from_counts;
use sfoverlay::graph::generators::GeometricRandomNetwork;
use sfoverlay::graph::{metrics, traversal};
use sfoverlay::prelude::*;
use sfoverlay::search::experiment::{average_over_sources, rw_normalized_to_nf, ttl_sweep};
use sfoverlay::topology::dapa::DiscoverAndAttempt;

const N: usize = 2_000;
const SEARCHES: usize = 40;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn mean_hits(
    graph: &sfoverlay::graph::Graph,
    algo: &dyn SearchAlgorithm,
    ttl: u32,
    seed: u64,
) -> f64 {
    average_over_sources(graph, algo, ttl, SEARCHES, &mut rng(seed)).mean_hits
}

/// Paper §III-B / Fig. 1(c): applying harder cutoffs to PA lowers the fitted degree
/// exponent, and the distribution accumulates nodes at the cutoff.
#[test]
fn harder_cutoffs_lower_the_pa_degree_exponent() {
    let fit_for = |k_c: usize| {
        let graph = PreferentialAttachment::new(6_000, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate(&mut rng(1))
            .unwrap();
        let hist = metrics::degree_histogram(&graph);
        assert!(
            hist.count(k_c) > hist.count(k_c - 1),
            "k_c={k_c}: no accumulation at the cutoff"
        );
        fit_exponent_from_counts(&hist.counts, 2, k_c - 1)
            .expect("fit succeeds")
            .gamma
    };
    let gamma_10 = fit_for(10);
    let gamma_50 = fit_for(50);
    assert!(
        gamma_10 < gamma_50 + 0.1,
        "exponent with k_c=10 ({gamma_10:.2}) should not exceed the k_c=50 exponent ({gamma_50:.2})"
    );
}

/// Paper §V-B.1 / Fig. 6: without a cutoff, flooding reaches more peers for the same τ than
/// with a tight cutoff, but increasing m to 3 makes the difference negligible.
#[test]
fn three_links_per_peer_neutralize_the_cutoff_penalty_for_flooding() {
    let tau = 5u32;
    let hits = |m: usize, cutoff: DegreeCutoff, seed: u64| {
        let graph = PreferentialAttachment::new(N, m)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        mean_hits(&graph, &Flooding::new(), tau, seed)
    };
    let m1_free = hits(1, DegreeCutoff::Unbounded, 2);
    let m1_capped = hits(1, DegreeCutoff::hard(10), 2);
    assert!(
        m1_capped < m1_free,
        "m=1: the cutoff should hurt flooding ({m1_capped:.1} >= {m1_free:.1})"
    );

    let m3_free = hits(3, DegreeCutoff::Unbounded, 3);
    let m3_capped = hits(3, DegreeCutoff::hard(10), 3);
    let penalty = (m3_free - m3_capped) / m3_free;
    assert!(
        penalty < 0.25,
        "m=3: the cutoff penalty should be small, got {:.0}%",
        penalty * 100.0
    );
}

/// Paper §V-B.1 / Fig. 9: hard cutoffs *improve* normalized-flooding efficiency on PA
/// topologies.
#[test]
fn hard_cutoffs_improve_normalized_flooding_on_pa() {
    let tau = 8u32;
    let m = 2usize;
    let hits = |cutoff: DegreeCutoff| {
        let graph = PreferentialAttachment::new(N, m)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(5))
            .unwrap();
        mean_hits(&graph, &NormalizedFlooding::new(m), tau, 5)
    };
    let capped = hits(DegreeCutoff::hard(10));
    let free = hits(DegreeCutoff::Unbounded);
    assert!(
        capped > free,
        "NF with k_c=10 ({capped:.1} hits) should beat the unbounded topology ({free:.1} hits)"
    );
}

/// Paper §V-B.1 / Fig. 11: the same improvement holds for message-normalized random walks.
#[test]
fn hard_cutoffs_improve_random_walks_on_pa() {
    let tau = 8u32;
    let m = 2usize;
    let hits = |cutoff: DegreeCutoff| {
        let graph = PreferentialAttachment::new(N, m)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(7))
            .unwrap();
        rw_normalized_to_nf(&graph, m, &[tau], SEARCHES, &mut rng(7))[0].mean_hits
    };
    let capped = hits(DegreeCutoff::hard(10));
    let free = hits(DegreeCutoff::Unbounded);
    assert!(
        capped > free,
        "RW with k_c=10 ({capped:.1} hits) should beat the unbounded topology ({free:.1} hits)"
    );
}

/// Paper §V-B.1 / Fig. 7: flooding on CM topologies with m=1 cannot reach the system size
/// even for large τ, because the network is disconnected.
#[test]
fn cm_with_single_stub_keeps_floods_below_system_size() {
    let graph = ConfigurationModel::new(N, 2.6, 1)
        .unwrap()
        .generate(&mut rng(9))
        .unwrap();
    assert!(!traversal::is_connected(&graph));
    let deep_flood = mean_hits(&graph, &Flooding::new(), 30, 9);
    assert!(
        deep_flood < 0.9 * (N as f64),
        "deep floods on a disconnected CM m=1 topology should stall, got {deep_flood:.0}"
    );

    let connected = ConfigurationModel::new(N, 2.6, 3)
        .unwrap()
        .generate(&mut rng(9))
        .unwrap();
    let deep_flood_m3 = mean_hits(&connected, &Flooding::new(), 30, 9);
    assert!(
        deep_flood_m3 > deep_flood,
        "m=3 coverage should exceed m=1 coverage"
    );
}

/// Paper §IV-A / Fig. 3: HAPA without a cutoff produces super-hubs and a star-like
/// topology; a cutoff destroys the star. PA and HAPA flooding performance is similar for
/// small cutoffs.
#[test]
fn hapa_star_topology_and_cutoff_behaviour() {
    let star = HopAndAttempt::new(N, 1)
        .unwrap()
        .generate(&mut rng(11))
        .unwrap();
    assert!(star.max_degree().unwrap() > N / 4, "no super-hub emerged");

    let capped = HopAndAttempt::new(N, 1)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(10))
        .generate(&mut rng(11))
        .unwrap();
    assert!(capped.max_degree().unwrap() <= 10);

    let pa_capped = PreferentialAttachment::new(N, 1)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(10))
        .generate(&mut rng(11))
        .unwrap();
    let hapa_hits = mean_hits(&capped, &Flooding::new(), 6, 11);
    let pa_hits = mean_hits(&pa_capped, &Flooding::new(), 6, 11);
    let ratio = hapa_hits / pa_hits;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "for small cutoffs PA and HAPA flooding should be comparable, ratio {ratio:.2}"
    );
}

/// Paper §IV-B / Fig. 4: DAPA with a short horizon is short-sighted (light tail); larger
/// τ_sub recovers heavier tails and better flooding coverage (Fig. 8).
#[test]
fn dapa_locality_controls_tail_weight_and_search_coverage() {
    let (substrate, _) = GeometricRandomNetwork::with_average_degree(2 * N, 10.0)
        .unwrap()
        .generate(&mut rng(13))
        .unwrap();
    let short = DiscoverAndAttempt::new(N, 1, 2)
        .unwrap()
        .generate_on(&substrate, &mut rng(13))
        .unwrap();
    let long = DiscoverAndAttempt::new(N, 1, 20)
        .unwrap()
        .generate_on(&substrate, &mut rng(13))
        .unwrap();
    assert!(
        long.graph.max_degree().unwrap() > short.graph.max_degree().unwrap(),
        "larger tau_sub should produce heavier tails"
    );
    let short_hits = mean_hits(&short.graph, &Flooding::new(), 10, 13);
    let long_hits = mean_hits(&long.graph, &Flooding::new(), 10, 13);
    assert!(
        long_hits > short_hits,
        "tau_sub=20 flooding coverage ({long_hits:.0}) should exceed tau_sub=2 ({short_hits:.0})"
    );
}

/// Paper §V-B.1 / Fig. 8(a): for DAPA with weak connectedness (m=1), imposing a hard cutoff
/// improves flooding because it spreads links that would have gone to hubs.
#[test]
fn dapa_with_weak_connectedness_benefits_from_cutoffs() {
    let (substrate, _) = GeometricRandomNetwork::with_average_degree(2 * N, 10.0)
        .unwrap()
        .generate(&mut rng(17))
        .unwrap();
    let free = DiscoverAndAttempt::new(N, 1, 10)
        .unwrap()
        .generate_on(&substrate, &mut rng(17))
        .unwrap();
    let capped = DiscoverAndAttempt::new(N, 1, 10)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(10))
        .generate_on(&substrate, &mut rng(17))
        .unwrap();
    let free_hits = mean_hits(&free.graph, &Flooding::new(), 12, 17);
    let capped_hits = mean_hits(&capped.graph, &Flooding::new(), 12, 17);
    assert!(
        capped_hits > 0.8 * free_hits,
        "the cutoff should not hurt weakly connected DAPA much (capped {capped_hits:.0} vs free {free_hits:.0})"
    );
}

/// Paper §V-B.2: NF costs no more messages than plain flooding, and the messaging penalty
/// of hard cutoffs is minimal.
#[test]
fn messaging_complexity_of_nf_and_cutoffs() {
    let m = 2usize;
    let tau = 6u32;
    let build = |cutoff| {
        PreferentialAttachment::new(N, m)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(19))
            .unwrap()
    };
    let capped = build(DegreeCutoff::hard(10));
    let free = build(DegreeCutoff::Unbounded);

    let fl_msgs =
        ttl_sweep(&free, &Flooding::new(), &[tau], SEARCHES, &mut rng(19))[0].mean_messages;
    let nf_msgs_free = ttl_sweep(
        &free,
        &NormalizedFlooding::new(m),
        &[tau],
        SEARCHES,
        &mut rng(19),
    )[0]
    .mean_messages;
    let nf_msgs_capped = ttl_sweep(
        &capped,
        &NormalizedFlooding::new(m),
        &[tau],
        SEARCHES,
        &mut rng(19),
    )[0]
    .mean_messages;

    assert!(
        nf_msgs_free <= fl_msgs,
        "NF must not cost more messages than FL"
    );
    assert!(
        nf_msgs_capped <= nf_msgs_free * 1.5 + 5.0,
        "the cutoff messaging penalty should stay small ({nf_msgs_capped:.0} vs {nf_msgs_free:.0})"
    );
}
