//! Shard-boundary correctness: a `ShardedCsr` store must be indistinguishable from the
//! unsharded `CsrGraph` snapshot it partitions — same structure, same BFS, and
//! byte-identical `SearchOutcome`s for every algorithm and fixed seed, for shard counts
//! that do and do not divide the node count.
//!
//! These are the contract tests of the `sfo-engine` layer: the scenario runner swaps a
//! sharded store under the legacy sweep whenever `shard_count > 1`, and the batched
//! scheduler fans jobs across workers that all read the same shards, so any divergence
//! (an off-by-one at a range boundary, a reordered neighbor slice, a job picking up the
//! wrong stream) would silently corrupt results. Topologies are drawn from the UCM and
//! HAPA generators plus the churn-aged live overlay, like `csr_equivalence.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfoverlay::engine::{run_queries, run_queries_serial, AlgorithmTable, QueryBatch, ShardedCsr};
use sfoverlay::graph::{traversal, CsrGraph, Graph, NodeId};
use sfoverlay::prelude::*;
use sfoverlay::sim::overlay::{JoinStrategy, OverlayConfig, OverlayNetwork};
use std::sync::Arc;

/// The shard counts under test: trivial, even splits, and counts that do not divide the
/// node sizes drawn below.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Runs `body` over deterministic cases, each with its own input RNG.
fn for_cases(cases: u64, body: impl Fn(u64, &mut StdRng)) {
    for case in 0..cases {
        let mut input = rng(0x5EA2_DED0 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(case, &mut input);
    }
}

/// Draws a random UCM or HAPA topology of the kind the experiments sweep.
fn random_topology(case: u64, input: &mut StdRng) -> Graph {
    let n: usize = input.gen_range(100..600);
    let m: usize = input.gen_range(1..4);
    let seed: u64 = input.gen_range(0..10_000);
    let k_c: usize = input.gen_range((m.max(5))..40);
    if input.gen::<bool>() {
        let gamma: f64 = input.gen_range(2.1..3.1);
        UncorrelatedConfigurationModel::new(n, gamma, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate(&mut rng(seed))
            .unwrap_or_else(|e| panic!("case {case}: UCM generation failed: {e}"))
    } else {
        HopAndAttempt::new(n, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate(&mut rng(seed))
            .unwrap_or_else(|e| panic!("case {case}: HAPA generation failed: {e}"))
    }
}

/// A churn-aged live overlay frozen to CSR: the simulator's snapshot shape.
fn aged_overlay_csr(case: u64, input: &mut StdRng) -> CsrGraph {
    let config = OverlayConfig {
        stubs: input.gen_range(1..4),
        cutoff: DegreeCutoff::hard(input.gen_range(5..20)),
        join_strategy: JoinStrategy::UniformRandom,
        repair_on_leave: true,
    };
    let mut overlay = OverlayNetwork::new(config).unwrap();
    let mut r = rng(input.gen_range(0..10_000) ^ case);
    for _ in 0..input.gen_range(50..200) {
        if overlay.peer_count() > 3 && r.gen::<f64>() < 0.3 {
            let victim = overlay.random_peer(&mut r).unwrap();
            overlay.leave(victim, &mut r).unwrap();
        } else {
            overlay.join(&mut r);
        }
    }
    let (graph, _) = overlay.snapshot();
    graph.freeze()
}

/// Structure is preserved for every shard count: counts, degrees, neighbor slices (order
/// included), shard-range bookkeeping, and the boundary tables.
#[test]
fn sharding_preserves_structure_for_all_counts() {
    for_cases(12, |case, input| {
        let csr = if case % 3 == 0 {
            aged_overlay_csr(case, input)
        } else {
            random_topology(case, input).freeze()
        };
        for shards in SHARD_COUNTS {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            assert_eq!(sharded.node_count(), csr.node_count(), "case {case}");
            assert_eq!(sharded.edge_count(), csr.edge_count(), "case {case}");
            for node in csr.nodes() {
                assert_eq!(
                    sharded.neighbors(node),
                    csr.neighbors(node),
                    "case {case}, {shards} shards, {node}"
                );
            }
            // Contiguous cover with near-equal sizes.
            let mut next = 0;
            for shard in sharded.shards() {
                assert_eq!(shard.node_range().start, next);
                next = shard.node_range().end;
            }
            assert_eq!(next, csr.node_count());
            // Boundary tables account exactly for the non-internal directed entries.
            let cross: usize = sharded.shards().iter().map(|s| s.boundary().len()).sum();
            assert_eq!(sharded.cross_shard_edges() * 2, cross, "case {case}");
            assert_eq!(sharded.to_csr(), csr, "case {case}, {shards} shards");
        }
    });
}

/// BFS distance maps and connected components agree between the sharded store and the
/// plain snapshot, from several sources including shard-boundary nodes.
#[test]
fn bfs_agrees_across_shard_boundaries() {
    for_cases(8, |case, input| {
        let csr = random_topology(case, input).freeze();
        for shards in SHARD_COUNTS {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            // Probe the first and last node of every shard (the boundary-adjacent ids)
            // plus a few random interior sources.
            let mut sources: Vec<NodeId> = sharded
                .shards()
                .iter()
                .flat_map(|s| {
                    let r = s.node_range();
                    [NodeId::new(r.start), NodeId::new(r.end - 1)]
                })
                .collect();
            for _ in 0..3 {
                sources.push(NodeId::new(input.gen_range(0..csr.node_count())));
            }
            for source in sources {
                assert_eq!(
                    traversal::bfs_distances(&sharded, source),
                    traversal::bfs_distances(&csr, source),
                    "case {case}, {shards} shards, source {source}"
                );
            }
            assert_eq!(
                traversal::connected_components(&sharded),
                traversal::connected_components(&csr),
                "case {case}, {shards} shards"
            );
        }
    });
}

/// Every search algorithm returns a byte-identical `SearchOutcome` on the sharded store
/// and the plain snapshot for a fixed seed — flooding, random walks, and the rest.
#[test]
fn search_outcomes_are_identical_on_sharded_and_plain_snapshots() {
    type Pair = (
        &'static str,
        Box<dyn SearchAlgorithm<CsrGraph>>,
        Box<dyn SearchAlgorithm<ShardedCsr>>,
    );
    let algorithms: Vec<Pair> = vec![
        ("FL", Box::new(Flooding::new()), Box::new(Flooding::new())),
        (
            "NF",
            Box::new(NormalizedFlooding::new(2)),
            Box::new(NormalizedFlooding::new(2)),
        ),
        (
            "RW",
            Box::new(RandomWalk::new()),
            Box::new(RandomWalk::new()),
        ),
        (
            "multi-RW",
            Box::new(MultipleRandomWalk::new(4)),
            Box::new(MultipleRandomWalk::new(4)),
        ),
        (
            "HD-RW",
            Box::new(DegreeBiasedWalk::new()),
            Box::new(DegreeBiasedWalk::new()),
        ),
        (
            "pFL",
            Box::new(ProbabilisticFlooding::new(0.5)),
            Box::new(ProbabilisticFlooding::new(0.5)),
        ),
    ];
    for_cases(8, |case, input| {
        let csr = random_topology(case, input).freeze();
        let ttl: u32 = input.gen_range(1..8);
        let search_seed: u64 = input.gen_range(0..10_000);
        for shards in SHARD_COUNTS {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            for _ in 0..3 {
                let source = NodeId::new(input.gen_range(0..csr.node_count()));
                for (name, on_csr, on_sharded) in &algorithms {
                    let plain = on_csr.search(&csr, source, ttl, &mut rng(search_seed));
                    let split = on_sharded.search(&sharded, source, ttl, &mut rng(search_seed));
                    assert_eq!(
                        plain, split,
                        "case {case}: {name} diverged on {shards} shards from {source} at ttl {ttl}"
                    );
                }
            }
        }
    });
}

/// The batched scheduler is a pure scheduling change: pooled execution over any shard
/// and worker count equals the serial reference loop over the unsharded snapshot,
/// job for job.
#[test]
fn batched_execution_equals_the_serial_unsharded_reference() {
    for_cases(6, |case, input| {
        let csr = random_topology(case, input).freeze();
        let seed: u64 = input.gen_range(0..10_000);

        // Mixed-algorithm batch across random sources and TTLs.
        let plain_table: AlgorithmTable<CsrGraph> = vec![
            Box::new(Flooding::new()),
            Box::new(NormalizedFlooding::new(2)),
            Box::new(RandomWalk::new()),
        ];
        let sharded_table: Arc<AlgorithmTable<ShardedCsr>> = Arc::new(vec![
            Box::new(Flooding::new()),
            Box::new(NormalizedFlooding::new(2)),
            Box::new(RandomWalk::new()),
        ]);
        let mut batch = QueryBatch::new();
        for i in 0..60 {
            batch.push(
                NodeId::new(input.gen_range(0..csr.node_count())),
                i % 3,
                input.gen_range(1..6),
            );
        }
        let reference = run_queries_serial(&csr, &plain_table, &batch, seed);

        for shards in SHARD_COUNTS {
            let sharded = Arc::new(ShardedCsr::from_csr(&csr, shards));
            for workers in [1usize, 2, 4] {
                let pool = WorkerPool::new(EngineConfig::with_workers(workers));
                let pooled = run_queries(&pool, &sharded, &sharded_table, &batch, seed);
                assert_eq!(
                    pooled, reference,
                    "case {case}: batch diverged at {shards} shards / {workers} workers"
                );
            }
        }
    });
}

/// The engine-facing sweep frontends are worker- and shard-count independent too, on the
/// overlay-shaped snapshots the simulator serves.
#[test]
fn batched_sweeps_are_worker_and_shard_independent_on_overlay_snapshots() {
    for_cases(4, |case, input| {
        let csr = aged_overlay_csr(case, input);
        let seed: u64 = input.gen_range(0..10_000);
        let ttls = [1u32, 2, 4];

        let single = Arc::new(ShardedCsr::from_csr(&csr, 1));
        let serial_pool = WorkerPool::new(EngineConfig::with_workers(1));
        let reference = sfoverlay::engine::batched_ttl_sweep(
            &serial_pool,
            &single,
            Box::new(Flooding::new()),
            &ttls,
            20,
            seed,
        );
        let rw_reference = sfoverlay::engine::batched_rw_normalized_to_nf(
            &serial_pool,
            &single,
            2,
            &ttls,
            20,
            seed,
        );

        for shards in SHARD_COUNTS {
            let sharded = Arc::new(ShardedCsr::from_csr(&csr, shards));
            for workers in [2usize, 4] {
                let pool = WorkerPool::new(EngineConfig::with_workers(workers));
                assert_eq!(
                    sfoverlay::engine::batched_ttl_sweep(
                        &pool,
                        &sharded,
                        Box::new(Flooding::new()),
                        &ttls,
                        20,
                        seed,
                    ),
                    reference,
                    "case {case}: FL sweep diverged at {shards} shards / {workers} workers"
                );
                assert_eq!(
                    sfoverlay::engine::batched_rw_normalized_to_nf(
                        &pool, &sharded, 2, &ttls, 20, seed,
                    ),
                    rw_reference,
                    "case {case}: RW/NF sweep diverged at {shards} shards / {workers} workers"
                );
            }
        }
    });
}

/// End to end through the scenario layer: a spec's results are invariant under every
/// combination of the engine knobs, and the sharded-store-under-legacy-sweep path is
/// byte-identical to the unsharded path.
#[test]
fn scenario_results_are_invariant_under_engine_knobs() {
    let base = ScenarioSpec::sweep(
        "shard-equivalence",
        TopologySpec::Ucm {
            nodes: 400,
            gamma: 2.4,
            m: 2,
            cutoff: Some(15),
        },
        SearchSpec::NormalizedFlooding { k_min: None },
        SweepSpec::single(vec![1, 2, 4], 10),
        77,
        2,
    );
    let runner = ScenarioRunner::new();
    let plain = runner.run(&base).unwrap();
    // Legacy sweep over a sharded store: byte-identical results.
    for shards in SHARD_COUNTS {
        let mut spec = base.clone();
        spec.sweep.as_mut().unwrap().shard_count = shards;
        let sharded = runner.run(&spec).unwrap();
        assert_eq!(sharded.result, plain.result, "{shards} shards (serial)");
    }
    // Batched execution: one reference, invariant across thread and shard counts.
    let mut batched = base.clone();
    batched.sweep.as_mut().unwrap().batch = true;
    let reference = runner.run(&batched).unwrap();
    for shards in SHARD_COUNTS {
        let mut spec = batched.clone();
        let sweep = spec.sweep.as_mut().unwrap();
        sweep.shard_count = shards;
        sweep.threads = 1 + (shards % 4);
        let report = runner.run(&spec).unwrap();
        assert_eq!(report.result, reference.result, "{shards} shards (batched)");
    }
}
