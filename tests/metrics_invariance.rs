//! Telemetry never changes results: the headline invariant of `sfo-obs`.
//!
//! Instrumentation is pure observation — relaxed atomic increments and monotonic
//! clock reads — so a run with a metrics registry attached must produce a
//! `ScenarioReport` byte-identical to a plain run's, while the registry itself fills
//! with the phase timings and counters the run generated. These tests pin both halves
//! at the facade level (determinism rule 6 in `docs/ARCHITECTURE.md`), including over
//! the wire: a serving worker accumulates request telemetry that `WorkerClient::stats`
//! polls without perturbing the batches it serves.

use sfoverlay::net::{ServeConfig, WorkerServer};
use sfoverlay::prelude::*;
use sfoverlay::scenario::json::{FromJson, JsonValue, ToJson};
use sfoverlay::scenario::ScenarioResult;
use std::path::PathBuf;
use std::sync::Arc;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfo-metrics-inv-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A batched capped-PA sweep: the shape that exercises the engine pool, the freeze
/// path, and the sweep fold all at once.
fn sweep_spec(name: &str, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::sweep(
        format!("metrics-inv-{name}"),
        TopologySpec::Pa {
            nodes: 400,
            m: 2,
            cutoff: Some(12),
        },
        SearchSpec::Flooding,
        SweepSpec::single(vec![1, 2, 4], 7),
        seed,
        2,
    );
    spec.sweep.as_mut().unwrap().batch = true;
    spec
}

#[test]
fn metered_sweep_reports_are_byte_identical_to_plain_ones() {
    let spec = sweep_spec("sweep", 29);
    let plain = ScenarioRunner::new().run(&spec).unwrap();

    let registry = Arc::new(Registry::new());
    let metered = ScenarioRunner::new()
        .with_metrics(Arc::clone(&registry))
        .run(&spec)
        .unwrap();
    assert_eq!(
        metered.to_json_string(),
        plain.to_json_string(),
        "attaching a registry changed the report bytes"
    );

    // The registry really observed the run: every phase histogram saw one sample per
    // (curve, realization) task and the engine pool counted its batched jobs.
    let snapshot = registry.snapshot();
    let tasks = 2; // one sweep curve × two realizations
    for phase in [
        "scenario.generate_micros",
        "scenario.freeze_micros",
        "scenario.sweep_micros",
    ] {
        let hist = snapshot
            .histogram(phase)
            .unwrap_or_else(|| panic!("{phase} missing"));
        assert_eq!(hist.count, tasks, "{phase} sample count");
    }
    assert_eq!(snapshot.counter("engine.batches"), Some(tasks));
    assert!(snapshot.counter("engine.jobs").unwrap() > 0);
}

#[test]
fn metered_live_overlay_reports_are_byte_identical_to_plain_ones() {
    // The live path routes telemetry all the way into the overlay peers; the emergent
    // topology (grown by per-peer RNG streams) must not notice.
    let dir = scratch("live");
    let plain_path = dir.join("plain.sfos").display().to_string();
    let metered_path = dir.join("metered.sfos").display().to_string();
    let plain = ScenarioRunner::new()
        .run(&ScenarioSpec::live(
            "metrics-inv-live",
            LiveConfig::small(),
            &plain_path,
            7,
        ))
        .unwrap();

    let registry = Arc::new(Registry::new());
    let metered = ScenarioRunner::new()
        .with_metrics(Arc::clone(&registry))
        .run(&ScenarioSpec::live(
            "metrics-inv-live",
            LiveConfig::small(),
            &metered_path,
            7,
        ))
        .unwrap();

    // The grown snapshot bytes are identical (so the emergent topology, its
    // provenance, and its identity all are)...
    let plain_bytes = std::fs::read(&plain_path).unwrap();
    let metered_bytes = std::fs::read(&metered_path).unwrap();
    assert_eq!(plain_bytes, metered_bytes, "telemetry changed grown bytes");
    // ...and so is every realization field except the output path the specs differ by.
    let (ScenarioResult::Live { realizations: a }, ScenarioResult::Live { realizations: b }) =
        (&plain.result, &metered.result)
    else {
        panic!("expected live results");
    };
    let (a, b) = (&a[0], &b[0]);
    assert_eq!(
        (a.arrivals, a.leaves, a.crashes, a.final_peers),
        (b.arrivals, b.leaves, b.crashes, b.final_peers)
    );
    assert_eq!(
        (a.edges, a.max_degree, a.messages, a.identity),
        (b.edges, b.max_degree, b.messages, b.identity)
    );

    let snapshot = registry.snapshot();
    assert!(snapshot.counter("overlay.msg.join").unwrap() > 0);
    assert_eq!(
        snapshot
            .histogram("scenario.generate_micros")
            .unwrap()
            .count,
        1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn served_batches_fill_worker_telemetry_that_stats_polls() {
    let dir = scratch("wire");
    let base = sweep_spec("wire", 41);
    let path = dir.join("wire.sfos");
    build_snapshot(&base, 0).unwrap().save(&path).unwrap();

    let server = WorkerServer::bind(&ServeConfig {
        snapshot_path: path.display().to_string(),
        listen: "127.0.0.1:0".to_string(),
        engine_workers: 2,
        shard_count: 2,
        shard_index: None,
        mmap: false,
        queue_bound: 0,
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // Snapshot sweeps are pinned to one realization by validation.
    let mut spec = base.clone();
    spec.realizations = 1;
    spec.topology = Some(TopologySpec::Snapshot {
        path: path.display().to_string(),
    });
    let local = remote_runner().run(&spec).unwrap();
    // Two slices through the same worker: splits are contiguity, not placement.
    spec.sweep.as_mut().unwrap().workers = vec![addr.clone(), addr.clone()];

    // Dispatch with a client-side registry: the distributed result matches the local
    // one (telemetry on either end changes nothing)...
    let registry = Arc::new(Registry::new());
    let report = remote_runner_with_metrics(Arc::clone(&registry))
        .run(&spec)
        .unwrap();
    assert_eq!(report.result, local.result);
    let client_side = registry.snapshot();
    assert_eq!(client_side.counter("dispatch.slices"), Some(2));
    assert_eq!(
        client_side
            .histogram("dispatch.worker_micros")
            .unwrap()
            .count,
        2
    );

    // ...and the worker accumulated the served side, polled over the wire.
    let mut client = WorkerClient::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.counter("net.connections").unwrap() > 0);
    assert!(stats.counter("net.frames_in.SubmitBatch").unwrap() >= 2);
    assert!(stats.counter("engine.jobs").unwrap() > 0);
    assert!(stats.counter("net.bytes_out").unwrap() > 0);
    let requests = stats.histogram("net.request_micros").unwrap();
    assert!(requests.count >= 2);
    assert!(requests.p95() >= requests.p50());

    // Polling is itself observed: a second poll sees the first one's frame.
    let again = client.stats().unwrap();
    assert!(
        again.counter("net.frames_in.StatsRequest").unwrap()
            > stats.counter("net.frames_in.StatsRequest").unwrap_or(0)
    );

    // The polled snapshot survives the JSON rendering `--metrics-out` uses.
    let json = stats.to_json().to_pretty_string();
    let reparsed = MetricsSnapshot::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
    assert_eq!(reparsed, stats);

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
