//! Integration tests of the declarative scenario layer: every spec variant round-trips
//! through JSON, runs to a byte-identical report for a fixed seed, and invalid specs
//! fail with typed errors instead of panics.

use sfoverlay::prelude::*;
use sfoverlay::topology::fitness::FitnessDistribution;

/// One small static spec per topology family, plus one per search algorithm, plus the
/// two dynamic kinds — together they cover every `ScenarioSpec` variant.
fn all_spec_variants() -> Vec<ScenarioSpec> {
    let nodes = 120usize;
    let topologies = vec![
        TopologySpec::Pa {
            nodes,
            m: 2,
            cutoff: Some(10),
        },
        TopologySpec::Hapa {
            nodes,
            m: 2,
            cutoff: None,
        },
        TopologySpec::Cm {
            nodes,
            gamma: 2.2,
            m: 2,
            cutoff: Some(20),
        },
        TopologySpec::Ucm {
            nodes,
            gamma: 2.6,
            m: 1,
            cutoff: None,
        },
        TopologySpec::DapaGrn {
            nodes,
            m: 2,
            tau_sub: 4,
            cutoff: Some(15),
        },
        TopologySpec::DapaMesh {
            nodes,
            m: 2,
            tau_sub: 6,
            cutoff: None,
        },
        TopologySpec::NonlinearPa {
            nodes,
            m: 2,
            alpha: 0.8,
            cutoff: None,
        },
        TopologySpec::Fitness {
            nodes,
            m: 2,
            distribution: FitnessDistribution::Exponential { rate: 1.0 },
            cutoff: Some(25),
        },
        TopologySpec::LocalEvents {
            nodes,
            m: 2,
            p_add_links: 0.2,
            q_rewire: 0.1,
            cutoff: None,
        },
        TopologySpec::Attractiveness {
            nodes,
            m: 2,
            a: 2.0,
            cutoff: Some(30),
        },
    ];
    let mut specs: Vec<ScenarioSpec> = topologies
        .into_iter()
        .map(|topology| {
            ScenarioSpec::sweep(
                format!("roundtrip-{}", topology.label()),
                topology,
                SearchSpec::Flooding,
                SweepSpec::single(vec![1, 3], 4),
                17,
                2,
            )
        })
        .collect();

    let searches = vec![
        SearchSpec::Flooding,
        SearchSpec::NormalizedFlooding { k_min: None },
        SearchSpec::NormalizedFlooding { k_min: Some(3) },
        SearchSpec::ProbabilisticFlooding { p: 0.5 },
        SearchSpec::ExpandingRing {
            initial_ttl: 1,
            increment: 2,
        },
        SearchSpec::RandomWalk,
        SearchSpec::MultipleRandomWalk { walkers: 4 },
        SearchSpec::DegreeBiasedWalk,
        SearchSpec::RwNormalizedToNf { k_min: None },
    ];
    for (i, search) in searches.into_iter().enumerate() {
        specs.push(ScenarioSpec::sweep(
            format!("roundtrip-search-{i}"),
            TopologySpec::Pa {
                nodes,
                m: 2,
                cutoff: Some(12),
            },
            search,
            SweepSpec::single(vec![2, 4], 4),
            23,
            1,
        ));
    }

    // A curve-label override (single curve, static): the label names the legend *and*
    // the RNG stream family.
    let mut labelled = ScenarioSpec::degree_distribution(
        "roundtrip-curve-label",
        TopologySpec::Pa {
            nodes,
            m: 2,
            cutoff: Some(10),
        },
        None,
        8,
        29,
        2,
    );
    labelled.curve_label = Some("m=2".to_string());
    specs.push(labelled);

    let mut sim = SimulationConfig::small();
    sim.initial_peers = 120;
    sim.duration = 120;
    specs.push(ScenarioSpec::churn("roundtrip-churn", sim, 31, 2));

    let mut run = TraceRunConfig::small();
    run.bootstrap_peers = 80;
    specs.push(ScenarioSpec::trace(
        "roundtrip-trace",
        ChurnTraceConfig {
            duration: 150,
            arrival_rate: 0.4,
            sessions: SessionModel::Exponential { mean: 60.0 },
            crash_fraction: 0.25,
        },
        run,
        37,
        2,
    ));
    specs
}

#[test]
fn every_spec_variant_round_trips_and_reruns_byte_identically() {
    let runner = ScenarioRunner::new();
    for spec in all_spec_variants() {
        // Spec -> JSON -> spec is lossless.
        let spec_text = spec.to_json_string();
        let reparsed = ScenarioSpec::parse(&spec_text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", spec.name));
        assert_eq!(reparsed, spec, "{}", spec.name);

        // Run once, serialize the report, parse it back, and rerun from the embedded
        // spec: the two report serializations must be byte-identical.
        let report = runner
            .run(&spec)
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", spec.name));
        assert_eq!(
            report.spec, spec,
            "{}: report must embed its spec",
            spec.name
        );
        let report_text = report.to_json_string();
        let parsed_report = ScenarioReport::parse(&report_text)
            .unwrap_or_else(|e| panic!("{}: report reparse failed: {e}", spec.name));
        assert_eq!(parsed_report, report, "{}", spec.name);
        let rerun = runner
            .run(&parsed_report.spec)
            .unwrap_or_else(|e| panic!("{}: rerun failed: {e}", spec.name));
        assert_eq!(
            rerun.to_json_string(),
            report_text,
            "{}: rerunning the embedded spec must reproduce the report byte for byte",
            spec.name
        );
    }
}

#[test]
fn snapshot_topology_specs_round_trip_through_json() {
    // The snapshot family has no generator parameters — just a path — and must survive
    // spec -> JSON -> spec like every other family. (Validation and execution against
    // real .sfos files are covered by tests/snapshot_roundtrip.rs; this is the codec.)
    let mut spec = ScenarioSpec::sweep(
        "snapshot-sweep",
        TopologySpec::Snapshot {
            path: "realization0.sfos".to_string(),
        },
        SearchSpec::NormalizedFlooding { k_min: Some(2) },
        SweepSpec::single(vec![1, 2, 4], 10),
        2024,
        1,
    );
    spec.sweep.as_mut().unwrap().batch = true;
    // The worker list is part of the sweep section and must round-trip verbatim.
    spec.sweep.as_mut().unwrap().workers = vec![
        "10.0.0.1:9000".to_string(),
        "unix:/var/run/sfo.sock".to_string(),
    ];
    let text = spec.to_json_string();
    assert!(text.contains("\"family\": \"snapshot\""));
    assert!(text.contains("\"path\": \"realization0.sfos\""));
    assert!(text.contains("\"workers\""));
    assert!(text.contains("unix:/var/run/sfo.sock"));
    let back = ScenarioSpec::parse(&text).unwrap();
    assert_eq!(back, spec, "{text}");
    assert_eq!(back.to_json_string(), text);

    // Pre-sfo-net spec files have no "workers" key at all; absence parses to an empty
    // worker list (local execution).
    let legacy = text.replace(
        ",\n    \"workers\": [\"10.0.0.1:9000\", \"unix:/var/run/sfo.sock\"]",
        "",
    );
    assert_ne!(legacy, text, "the replace must have found the worker list");
    let mut no_workers = spec.clone();
    no_workers.sweep.as_mut().unwrap().workers = Vec::new();
    assert_eq!(ScenarioSpec::parse(&legacy).unwrap(), no_workers);

    // Unknown or generator-family fields on a snapshot topology fail loudly.
    let stray = r#"{"family": "snapshot", "path": "x.sfos", "nodes": 100}"#;
    let full = format!(
        r#"{{"name": "s", "topology": {stray}, "search": null,
            "dynamics": {{"kind": "static"}}, "sweep": null,
            "measure": {{"kind": "search_sweep"}}, "seed": 1, "realizations": 1}}"#
    );
    assert!(matches!(
        ScenarioSpec::parse(&full),
        Err(ScenarioError::InvalidSpec { .. })
    ));
}

#[test]
fn invalid_specs_return_typed_errors_not_panics() {
    let base = |topology| {
        ScenarioSpec::sweep(
            "invalid",
            topology,
            SearchSpec::Flooding,
            SweepSpec::single(vec![2], 4),
            1,
            1,
        )
    };

    // Zero nodes.
    let zero_nodes = base(TopologySpec::Pa {
        nodes: 0,
        m: 2,
        cutoff: None,
    });
    assert!(matches!(
        zero_nodes.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // Hard cutoff below m.
    let cutoff_below_m = base(TopologySpec::Hapa {
        nodes: 100,
        m: 3,
        cutoff: Some(2),
    });
    assert!(matches!(
        cutoff_below_m.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // The same spec arriving through JSON text stays a typed error.
    let text = cutoff_below_m.to_json_string();
    let reparsed = ScenarioSpec::parse(&text).expect("structurally valid JSON");
    assert!(matches!(
        reparsed.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // Flash-crowd intensity outside [0, 1].
    let mut run = TraceRunConfig::small();
    run.workload = Workload::FlashCrowd {
        hot_item: sfoverlay::sim::catalog::ItemId::new(0),
        start: 0,
        end: 50,
        intensity: 1.5,
    };
    let bad_intensity = ScenarioSpec::trace(
        "invalid-intensity",
        ChurnTraceConfig {
            duration: 100,
            arrival_rate: 0.5,
            sessions: SessionModel::Fixed { length: 10.0 },
            crash_fraction: 0.2,
        },
        run,
        1,
        1,
    );
    assert!(matches!(
        bad_intensity.validate(),
        Err(ScenarioError::Sim(_))
    ));

    // Zero realizations, empty TTL grid, zero fan-out.
    let mut spec = base(TopologySpec::Pa {
        nodes: 100,
        m: 2,
        cutoff: None,
    });
    spec.realizations = 0;
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));
    let mut spec = base(TopologySpec::Pa {
        nodes: 100,
        m: 2,
        cutoff: None,
    });
    spec.sweep.as_mut().unwrap().ttls.clear();
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));
    let mut spec = base(TopologySpec::Pa {
        nodes: 100,
        m: 2,
        cutoff: None,
    });
    spec.search = Some(SearchSpec::NormalizedFlooding { k_min: Some(0) });
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // Malformed JSON text is a parse error with a position, not a panic.
    assert!(matches!(
        ScenarioSpec::parse("{\"name\": }"),
        Err(ScenarioError::Parse { .. })
    ));
}

#[test]
fn shipped_example_specs_validate_and_the_smoke_spec_runs() {
    let examples_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut spec_files: Vec<_> = std::fs::read_dir(&examples_dir)
        .expect("examples directory exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension()? == "json").then_some(path)
        })
        .collect();
    spec_files.sort();
    assert!(
        spec_files.len() >= 5,
        "expected several shipped scenario files, found {spec_files:?}"
    );
    for path in &spec_files {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.starts_with("//"),
            "{}: example specs carry a header comment tying them to the paper",
            path.display()
        );
        let spec = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: validation failed: {e}", path.display()));
    }

    // The CI smoke spec runs end to end and its report embeds the spec.
    let smoke_text = std::fs::read_to_string(examples_dir.join("scenario_smoke.json")).unwrap();
    let smoke = ScenarioSpec::parse(&smoke_text).unwrap();
    let report = ScenarioRunner::new().run(&smoke).unwrap();
    assert_eq!(report.spec, smoke);
    let curves = report.sweep_curves().unwrap();
    assert_eq!(curves.len(), 4);
    for curve in curves {
        assert!(curve.points.iter().all(|p| p.hits.mean > 0.0));
    }
}

#[test]
fn scenario_reports_expose_figure_ready_series() {
    let spec = ScenarioSpec::sweep(
        "series-check",
        TopologySpec::Pa {
            nodes: 200,
            m: 2,
            cutoff: None,
        },
        SearchSpec::NormalizedFlooding { k_min: None },
        SweepSpec::grid(vec![1, 2], vec![Some(10), None], vec![2, 4], 5),
        3,
        2,
    );
    let report = ScenarioRunner::new().run(&spec).unwrap();
    let hits = report.series(SweepMetric::Hits);
    assert_eq!(hits.len(), 4);
    assert_eq!(hits[0].label, "PA, m=1, k_c=10");
    for series in &hits {
        assert_eq!(series.points.len(), 2);
        for p in &series.points {
            assert_eq!(p.realizations, 2);
        }
    }
}
