//! Integration tests for the extension surface: the modified preferential-attachment
//! generators, the additional search strategies, the structural metrics, replication, and
//! the extension experiments — exercised together through the public `sfoverlay` API the
//! way a downstream user would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfoverlay::analysis::kmin::select_k_min;
use sfoverlay::analysis::stats::{bootstrap_mean_ci, pearson_correlation};
use sfoverlay::experiments::{run_experiment, Scale};
use sfoverlay::graph::generators::{random_regular, star_graph};
use sfoverlay::graph::{centrality, correlations, io, kcore, metrics, traversal, NodeId};
use sfoverlay::prelude::*;
use sfoverlay::search::coverage::{coverage_curve, granularity};
use sfoverlay::search::experiment::ttl_sweep;
use sfoverlay::sim::catalog::Catalog;
use sfoverlay::sim::churn::{generate_trace, ChurnTraceConfig, SessionModel};
use sfoverlay::sim::query::{run_query, QueryMethod};
use sfoverlay::sim::replication::{allocate, place};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn tiny_scale() -> Scale {
    Scale {
        degree_nodes: 500,
        search_nodes: 400,
        realizations: 1,
        searches_per_point: 5,
    }
}

/// Every extended generator produces the requested size, respects the hard cutoff, and is
/// usable through the shared trait object interface.
#[test]
fn extended_generators_respect_cutoffs_through_the_trait_interface() {
    let n = 600;
    let cutoff = DegreeCutoff::hard(15);
    let generators: Vec<(Box<dyn TopologyGenerator>, Locality)> = vec![
        (
            Box::new(
                NonlinearPreferentialAttachment::new(n, 2, 0.7)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
            Locality::Global,
        ),
        (
            Box::new(
                FitnessModel::new(n, 2)
                    .unwrap()
                    .with_distribution(FitnessDistribution::UniformRange { min: 0.1, max: 1.0 })
                    .with_cutoff(cutoff),
            ),
            Locality::Global,
        ),
        (
            Box::new(
                LocalEventsModel::new(n, 2, 0.2, 0.2)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
            Locality::Global,
        ),
        (
            Box::new(
                InitialAttractiveness::with_target_gamma(n, 2, 2.5)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
            Locality::Global,
        ),
        (
            Box::new(
                UncorrelatedConfigurationModel::new(n, 2.6, 2)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
            Locality::Global,
        ),
    ];
    for (generator, locality) in &generators {
        let graph = generator.generate(&mut rng(5)).unwrap();
        assert_eq!(graph.node_count(), n, "{}", generator.name());
        assert!(graph.max_degree().unwrap() <= 15, "{}", generator.name());
        assert_eq!(generator.locality(), *locality, "{}", generator.name());
        assert_eq!(generator.target_nodes(), n);
        graph.assert_consistent();
    }
}

/// The DMS generator's exponent knob behaves as advertised: smaller target gamma grows
/// heavier tails, which a Clauset-style fit on the generated network recovers in order.
#[test]
fn initial_attractiveness_orders_tails_by_target_gamma() {
    let heavy = InitialAttractiveness::with_target_gamma(4_000, 2, 2.3)
        .unwrap()
        .generate(&mut rng(9))
        .unwrap();
    let light = InitialAttractiveness::with_target_gamma(4_000, 2, 3.5)
        .unwrap()
        .generate(&mut rng(9))
        .unwrap();
    assert!(heavy.max_degree().unwrap() > light.max_degree().unwrap());
    let fit_heavy = select_k_min(&heavy.degrees(), 2, 8, heavy.max_degree().unwrap()).unwrap();
    let fit_light = select_k_min(&light.degrees(), 2, 8, light.max_degree().unwrap()).unwrap();
    assert!(
        fit_heavy.fit.gamma < fit_light.fit.gamma + 0.5,
        "fitted exponents should track the target ordering ({} vs {})",
        fit_heavy.fit.gamma,
        fit_light.fit.gamma
    );
}

/// The paper's headline observation extends to the new practical search strategies:
/// probabilistic flooding also benefits from hard cutoffs on PA topologies, while plain
/// flooding loses raw coverage.
#[test]
fn hard_cutoffs_help_probabilistic_flooding_but_cost_flooding_coverage() {
    let n = 1_500;
    let ttl = [6u32];
    let free = PreferentialAttachment::new(n, 2)
        .unwrap()
        .generate(&mut rng(21))
        .unwrap();
    let capped = PreferentialAttachment::new(n, 2)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(10))
        .generate(&mut rng(21))
        .unwrap();

    let fl_free = ttl_sweep(&free, &Flooding::new(), &ttl, 40, &mut rng(1))[0].mean_hits;
    let fl_capped = ttl_sweep(&capped, &Flooding::new(), &ttl, 40, &mut rng(1))[0].mean_hits;
    assert!(
        fl_capped < fl_free,
        "cutoffs shrink FL coverage ({fl_capped} vs {fl_free})"
    );

    let pfl = ProbabilisticFlooding::new(0.5);
    let pfl_free = ttl_sweep(&free, &pfl, &ttl, 40, &mut rng(2))[0];
    let pfl_capped = ttl_sweep(&capped, &pfl, &ttl, 40, &mut rng(2))[0];
    let eff_free = pfl_free.mean_hits / pfl_free.mean_messages.max(1.0);
    let eff_capped = pfl_capped.mean_hits / pfl_capped.mean_messages.max(1.0);
    assert!(
        eff_capped > eff_free * 0.9,
        "per-message efficiency should not collapse under the cutoff ({eff_capped} vs {eff_free})"
    );
}

/// The degree-biased walk exploits hubs: it covers an unbounded PA overlay faster than the
/// uniform walk, and the advantage shrinks once a hard cutoff removes the hubs.
#[test]
fn degree_biased_walk_relies_on_hubs() {
    let n = 1_500;
    let budget = [60u32];
    let free = PreferentialAttachment::new(n, 2)
        .unwrap()
        .generate(&mut rng(31))
        .unwrap();
    let biased = ttl_sweep(&free, &DegreeBiasedWalk::new(), &budget, 40, &mut rng(3))[0].mean_hits;
    let uniform = ttl_sweep(&free, &RandomWalk::new(), &budget, 40, &mut rng(3))[0].mean_hits;
    assert!(
        biased > uniform,
        "on an unbounded PA overlay the hub-seeking walk should beat the uniform walk \
         ({biased} vs {uniform})"
    );
}

/// Structural metrics agree with each other on generated overlays: core numbers are bounded
/// by degree, the cutoff caps the degeneracy, and the disassortative knn(k) signature of PA
/// shows up.
#[test]
fn structural_metrics_are_mutually_consistent_on_pa_overlays() {
    let graph = PreferentialAttachment::new(2_000, 3)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(25))
        .generate(&mut rng(41))
        .unwrap();
    let decomposition = kcore::core_decomposition(&graph);
    assert!(decomposition.degeneracy <= 25);
    assert!(
        decomposition.degeneracy >= 3,
        "a PA overlay with m=3 contains at least a 3-core"
    );
    for node in graph.nodes() {
        assert!(decomposition.core_numbers[node.index()] <= graph.degree(node));
    }
    let knn = correlations::knn_by_degree(&graph);
    assert!(knn.len() > 3);
    let low_k = knn.first().unwrap().average_neighbor_degree;
    let high_k = knn.last().unwrap().average_neighbor_degree;
    assert!(
        low_k > high_k * 0.8,
        "PA overlays are not assortative: knn at low degree ({low_k}) should not be far below \
         knn at the top degree ({high_k})"
    );
    let betweenness = centrality::betweenness_centrality_sampled(&graph, 50, &mut rng(42));
    let top = betweenness.most_central().unwrap();
    assert!(
        graph.degree(top) as f64 >= graph.average_degree(),
        "the most loaded peer should not be a low-degree satellite"
    );
}

/// Edge-list round trips preserve generated topologies well enough to recompute identical
/// degree histograms.
#[test]
fn edge_list_round_trip_preserves_degree_structure() {
    let graph = UncorrelatedConfigurationModel::new(800, 2.4, 2)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(20))
        .generate(&mut rng(51))
        .unwrap();
    let text = io::write_edge_list(&graph);
    let parsed = io::parse_edge_list(&text).unwrap();
    assert_eq!(parsed.node_count(), graph.node_count());
    assert_eq!(parsed.edge_count(), graph.edge_count());
    assert_eq!(
        metrics::degree_histogram(&parsed).counts,
        metrics::degree_histogram(&graph).counts
    );
}

/// Replication strategies interoperate with the live overlay and the lookup machinery; the
/// square-root rule never does worse than uniform on expected blind-search size while
/// popular items stay findable.
#[test]
fn replication_and_lookup_work_end_to_end() {
    let catalog = Catalog::new(40, 1.0).unwrap();
    let mut overlay = OverlayNetwork::new(OverlayConfig {
        stubs: 3,
        cutoff: DegreeCutoff::hard(12),
        join_strategy: JoinStrategy::UniformRandom,
        repair_on_leave: true,
    })
    .unwrap();
    let mut r = rng(61);
    for _ in 0..500 {
        overlay.join(&mut r);
    }
    let allocation = allocate(&catalog, ReplicationStrategy::SquareRoot, 240).unwrap();
    place(&mut overlay, &allocation, &mut r).unwrap();

    let mut successes = 0usize;
    let queries = 100usize;
    for _ in 0..queries {
        let source = overlay.random_peer(&mut r).unwrap();
        let item = catalog.sample_query(&mut r);
        let outcome = run_query(
            &overlay,
            QueryMethod::NormalizedFlooding { k_min: 3 },
            source,
            item,
            6,
            &mut r,
        )
        .unwrap();
        if outcome.found {
            successes += 1;
        }
    }
    assert!(
        successes as f64 / queries as f64 > 0.5,
        "square-root replication plus NF should find most items ({successes}/{queries})"
    );
}

/// Churn traces replay deterministically against a live overlay: arrivals and departures
/// keep the peer count non-negative and the overlay consistent.
#[test]
fn churn_trace_replays_against_the_live_overlay() {
    let trace_config = ChurnTraceConfig {
        duration: 400,
        arrival_rate: 0.8,
        sessions: SessionModel::Pareto {
            shape: 1.8,
            minimum: 20.0,
        },
        crash_fraction: 0.3,
    };
    let mut r = rng(71);
    let trace = generate_trace(&trace_config, &mut r).unwrap();
    assert!(trace.arrivals > 100);

    let mut overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
    let mut alive = std::collections::HashMap::new();
    for event in &trace.events {
        match event.action {
            sfoverlay::sim::churn::ChurnAction::Arrive => {
                let outcome = overlay.join(&mut r);
                alive.insert(event.session, outcome.peer);
            }
            sfoverlay::sim::churn::ChurnAction::DepartGracefully => {
                if let Some(peer) = alive.remove(&event.session) {
                    overlay.leave(peer, &mut r).unwrap();
                }
            }
            sfoverlay::sim::churn::ChurnAction::Crash => {
                if let Some(peer) = alive.remove(&event.session) {
                    overlay.crash(peer).unwrap();
                }
            }
        }
    }
    overlay.assert_consistent();
    assert_eq!(overlay.peer_count(), alive.len());
    assert!(overlay.peer_count() > 0);
    assert!(
        overlay.max_degree().unwrap_or(0) <= 30,
        "default cutoff still enforced under churn"
    );
}

/// Coverage curves, granularity, and the analysis statistics compose: flooding on a star
/// baseline has perfect first-round granularity, and bootstrap intervals cover the mean of
/// repeated search outcomes.
#[test]
fn coverage_and_statistics_compose_on_reference_topologies() {
    let star = star_graph(200).unwrap();
    let curve = coverage_curve(&Flooding::new(), &star, NodeId::new(5), 2, &mut rng(81));
    let grain = granularity(&curve);
    assert!((grain[0].marginal_hits_per_message - 1.0).abs() < 1e-9);

    let regular = random_regular(300, 3, &mut rng(82)).unwrap();
    assert!(traversal::is_connected(&regular));
    let hits: Vec<f64> = (0..20)
        .map(|i| {
            ttl_sweep(
                &regular,
                &NormalizedFlooding::new(3),
                &[4],
                10,
                &mut rng(100 + i),
            )[0]
            .mean_hits
        })
        .collect();
    let ci = bootstrap_mean_ci(&hits, 500, 0.95, &mut rng(83)).unwrap();
    let mean = hits.iter().sum::<f64>() / hits.len() as f64;
    assert!(ci.contains(mean));

    let messages: Vec<f64> = hits.iter().map(|h| h * 3.0).collect();
    assert!((pearson_correlation(&hits, &messages).unwrap() - 1.0).abs() < 1e-9);
}

/// The extension experiments are registered and runnable at smoke scale.
#[test]
fn extension_experiments_run_at_tiny_scale() {
    let scale = tiny_scale();
    for id in ["generator-zoo", "hub-load", "replication"] {
        let output = run_experiment(id, &scale, 5).unwrap_or_else(|| panic!("{id} not registered"));
        let table = output
            .as_table()
            .unwrap_or_else(|| panic!("{id} should be a table"));
        assert!(table.row_count() >= 3, "{id}");
    }
    let strategies = run_experiment("search-strategies", &scale, 5).expect("registered");
    assert!(strategies.as_figure().expect("figure").series.len() >= 12);
}
