//! Property-based tests (proptest) on the core data structures and algorithms: invariants
//! that must hold for *every* parameter combination, not just the ones the paper plots.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfoverlay::graph::{metrics, traversal, Graph, NodeId};
use sfoverlay::prelude::*;
use sfoverlay::topology::powerlaw::BoundedPowerLaw;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A graph built from an arbitrary edge list stays internally consistent, and its
    /// total degree is exactly twice the edge count.
    #[test]
    fn graph_edge_insertion_invariants(edges in prop::collection::vec((0usize..40, 0usize..40), 0..200)) {
        let mut graph = Graph::with_nodes(40);
        for (a, b) in edges {
            if a != b {
                let _ = graph.add_edge_if_absent(NodeId::new(a), NodeId::new(b));
            }
        }
        graph.assert_consistent();
        prop_assert_eq!(graph.total_degree(), 2 * graph.edge_count());
        prop_assert_eq!(graph.edges().count(), graph.edge_count());
        // BFS from node 0 never reports more reachable nodes than exist.
        let reachable = metrics::reachable_within(&graph, NodeId::new(0), 40);
        prop_assert!(reachable < graph.node_count());
    }

    /// Removing the edges of any node leaves a consistent graph with the node isolated.
    #[test]
    fn node_isolation_preserves_consistency(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..150),
        victim in 0usize..30,
    ) {
        let mut graph = Graph::with_nodes(30);
        for (a, b) in edges {
            if a != b {
                let _ = graph.add_edge_if_absent(NodeId::new(a), NodeId::new(b));
            }
        }
        let removed = graph.isolate_node(NodeId::new(victim)).unwrap();
        graph.assert_consistent();
        prop_assert_eq!(graph.degree(NodeId::new(victim)), 0);
        for neighbor in removed {
            prop_assert!(!graph.contains_edge(NodeId::new(victim), neighbor));
        }
    }

    /// PA respects its size, minimum-degree, cutoff, and connectivity invariants for every
    /// valid parameter combination.
    #[test]
    fn preferential_attachment_invariants(
        n in 20usize..200,
        m in 1usize..4,
        k_c in prop::option::of(5usize..40),
        seed in 0u64..1_000,
    ) {
        prop_assume!(k_c.map_or(true, |k| k >= m));
        let cutoff = DegreeCutoff::from(k_c);
        let graph = PreferentialAttachment::new(n.max(m + 2), m)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        prop_assert_eq!(graph.node_count(), n.max(m + 2));
        prop_assert!(graph.min_degree().unwrap() >= 1);
        if let Some(k) = k_c {
            prop_assert!(graph.max_degree().unwrap() <= k);
        }
        prop_assert!(traversal::is_connected(&graph));
        graph.assert_consistent();
    }

    /// The configuration model never exceeds its cutoff and never loses more than a small
    /// fraction of stubs to simplification.
    #[test]
    fn configuration_model_invariants(
        n in 50usize..400,
        gamma in 2.1f64..3.2,
        m in 1usize..4,
        k_c in 10usize..60,
        seed in 0u64..1_000,
    ) {
        let outcome = ConfigurationModel::new(n, gamma, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate_with_report(&mut rng(seed))
            .unwrap();
        prop_assert_eq!(outcome.graph.node_count(), n);
        prop_assert!(outcome.graph.max_degree().unwrap() <= k_c);
        let target: usize = outcome.target_degrees.iter().sum();
        prop_assert_eq!(target % 2, 0);
        let realized = outcome.graph.total_degree();
        prop_assert!(realized <= target);
        // The "marginal" stub loss the paper describes only holds when the cutoff is well
        // below the system size; when k_c is a sizable fraction of n (possible only for the
        // smallest generated networks here), multi-edges between the few high-degree nodes
        // are common and the loss can be large, so the quantitative bound is restricted to
        // the regime the paper operates in (k_c ≲ n / 4).
        if 4 * k_c <= n {
            prop_assert!((target - realized) as f64 <= 0.25 * target as f64,
                "lost {} of {} stubs", target - realized, target);
        }
        outcome.graph.assert_consistent();
    }

    /// The bounded power law is a proper distribution for every parameterization.
    #[test]
    fn bounded_power_law_is_a_distribution(
        gamma in 1.1f64..4.0,
        k_min in 1usize..5,
        span in 1usize..100,
    ) {
        let law = BoundedPowerLaw::new(gamma, k_min, k_min + span).unwrap();
        let total: f64 = (k_min..=k_min + span).map(|k| law.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(law.mean() >= k_min as f64 && law.mean() <= (k_min + span) as f64);
    }

    /// Search sanity for arbitrary PA overlays: hits are bounded by BFS reachability (FL
    /// attains it exactly), NF hits never exceed FL hits, and RW messages equal its budget
    /// unless it starts from an isolated node.
    #[test]
    fn search_algorithms_respect_reachability_bounds(
        n in 30usize..150,
        m in 1usize..3,
        ttl in 1u32..6,
        seed in 0u64..500,
    ) {
        let graph = PreferentialAttachment::new(n.max(m + 2), m)
            .unwrap()
            .generate(&mut rng(seed))
            .unwrap();
        let source = NodeId::new((seed as usize) % graph.node_count());
        let reachable = metrics::reachable_within(&graph, source, ttl);

        let fl = Flooding::new().search(&graph, source, ttl, &mut rng(seed));
        prop_assert_eq!(fl.hits, reachable);

        let nf = NormalizedFlooding::new(m).search(&graph, source, ttl, &mut rng(seed));
        prop_assert!(nf.hits <= fl.hits);
        prop_assert!(nf.messages <= fl.messages);

        let rw = RandomWalk::new().search(&graph, source, ttl, &mut rng(seed));
        prop_assert!(rw.hits <= ttl as usize);
        if graph.degree(source) > 0 {
            prop_assert_eq!(rw.messages, ttl as usize);
        }
    }

    /// The live overlay stays consistent and below its cutoff under arbitrary interleavings
    /// of joins and departures.
    #[test]
    fn live_overlay_survives_arbitrary_churn(
        operations in prop::collection::vec(0u8..10, 1..120),
        stubs in 1usize..4,
        k_c in 4usize..20,
        seed in 0u64..1_000,
    ) {
        let config = OverlayConfig {
            stubs,
            cutoff: DegreeCutoff::hard(k_c),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut overlay = OverlayNetwork::new(config).unwrap();
        let mut r = rng(seed);
        for op in operations {
            // 70% joins, 20% graceful leaves, 10% crashes.
            if op < 7 || overlay.peer_count() < 3 {
                overlay.join(&mut r);
            } else if op < 9 {
                let victim = overlay.random_peer(&mut r).unwrap();
                overlay.leave(victim, &mut r).unwrap();
            } else {
                let victim = overlay.random_peer(&mut r).unwrap();
                overlay.crash(victim).unwrap();
            }
        }
        overlay.assert_consistent();
        prop_assert!(overlay.max_degree().unwrap_or(0) <= k_c);
        let (graph, peers) = overlay.snapshot();
        prop_assert_eq!(graph.node_count(), peers.len());
        graph.assert_consistent();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The nonlinear and initial-attractiveness generators keep the size / cutoff /
    /// connectivity invariants of PA for every kernel parameterization.
    #[test]
    fn modified_pa_generators_keep_pa_invariants(
        n in 20usize..150,
        m in 1usize..4,
        alpha in 0.0f64..2.0,
        attractiveness in -0.9f64..4.0,
        k_c in prop::option::of(5usize..30),
        seed in 0u64..500,
    ) {
        prop_assume!(k_c.map_or(true, |k| k >= m));
        prop_assume!(attractiveness > -(m as f64));
        let cutoff = DegreeCutoff::from(k_c);
        let nodes = n.max(m + 2);

        let nlpa = NonlinearPreferentialAttachment::new(nodes, m, alpha)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        prop_assert_eq!(nlpa.node_count(), nodes);
        prop_assert!(traversal::is_connected(&nlpa));
        if let Some(k) = k_c {
            prop_assert!(nlpa.max_degree().unwrap() <= k);
        }
        nlpa.assert_consistent();

        let dms = InitialAttractiveness::new(nodes, m, attractiveness)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        prop_assert_eq!(dms.node_count(), nodes);
        prop_assert!(traversal::is_connected(&dms));
        if let Some(k) = k_c {
            prop_assert!(dms.max_degree().unwrap() <= k);
        }
        dms.assert_consistent();
    }

    /// The uncorrelated configuration model never exceeds the tighter of the structural and
    /// hard cutoffs and never realizes more degree than it targeted.
    #[test]
    fn ucm_invariants(
        n in 60usize..400,
        gamma in 2.1f64..3.2,
        m in 1usize..3,
        k_c in prop::option::of(5usize..40),
        seed in 0u64..500,
    ) {
        prop_assume!(k_c.map_or(true, |k| k >= m));
        let generator = UncorrelatedConfigurationModel::new(n, gamma, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::from(k_c));
        let outcome = generator.generate_with_report(&mut rng(seed)).unwrap();
        let (_, k_max) = generator.support().unwrap();
        prop_assert!(outcome.graph.max_degree().unwrap_or(0) <= k_max);
        for (realized, target) in outcome.graph.degrees().iter().zip(&outcome.target_degrees) {
            prop_assert!(realized <= target);
        }
        prop_assert!(outcome.unplaced_stubs <= 2 * outcome.target_degrees.iter().sum::<usize>() / 100 + 4);
        outcome.graph.assert_consistent();
    }

    /// Edge-list serialization round-trips arbitrary simple graphs: node count, edge count,
    /// and the sorted edge set are preserved.
    #[test]
    fn edge_list_round_trip(edges in prop::collection::vec((0usize..30, 0usize..30), 0..120)) {
        use sfoverlay::graph::io::{parse_edge_list, write_edge_list};
        let mut graph = Graph::with_nodes(30);
        for (a, b) in edges {
            if a != b {
                let _ = graph.add_edge_if_absent(NodeId::new(a), NodeId::new(b));
            }
        }
        let parsed = parse_edge_list(&write_edge_list(&graph)).unwrap();
        prop_assert_eq!(parsed.node_count(), graph.node_count());
        prop_assert_eq!(parsed.edge_count(), graph.edge_count());
        let mut original: Vec<_> = graph.edges().collect();
        let mut reparsed: Vec<_> = parsed.edges().collect();
        original.sort_unstable();
        reparsed.sort_unstable();
        prop_assert_eq!(original, reparsed);
    }

    /// Core numbers never exceed degrees and the degeneracy never exceeds the maximum
    /// degree, for arbitrary graphs.
    #[test]
    fn core_numbers_are_bounded_by_degrees(
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..100),
    ) {
        use sfoverlay::graph::kcore::core_decomposition;
        let mut graph = Graph::with_nodes(25);
        for (a, b) in edges {
            if a != b {
                let _ = graph.add_edge_if_absent(NodeId::new(a), NodeId::new(b));
            }
        }
        let decomposition = core_decomposition(&graph);
        for node in graph.nodes() {
            prop_assert!(decomposition.core_numbers[node.index()] <= graph.degree(node));
        }
        prop_assert!(decomposition.degeneracy <= graph.max_degree().unwrap_or(0));
        // Core sizes are monotone non-increasing in k.
        let sizes = decomposition.core_sizes();
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// The item-hit probability is a probability and is monotone in both coverage and
    /// replica count.
    #[test]
    fn success_probability_is_monotone(
        hits in 0usize..500,
        replicas in 0usize..50,
        population in 2usize..600,
    ) {
        use sfoverlay::search::coverage::success_probability;
        let p = success_probability(hits, replicas, population);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(success_probability(hits + 10, replicas, population) >= p - 1e-12);
        prop_assert!(success_probability(hits, replicas + 1, population) >= p - 1e-12);
    }

    /// Replica allocation always spends exactly the budget and gives every item at least
    /// one copy, for every strategy and catalog skew.
    #[test]
    fn replica_allocation_spends_the_budget(
        items in 1usize..60,
        spare in 0usize..200,
        skew in 0.0f64..2.0,
        strategy_index in 0usize..3,
    ) {
        use sfoverlay::sim::catalog::Catalog;
        use sfoverlay::sim::replication::allocate;
        let strategies = [
            ReplicationStrategy::Uniform,
            ReplicationStrategy::Proportional,
            ReplicationStrategy::SquareRoot,
        ];
        let catalog = Catalog::new(items, skew).unwrap();
        let budget = items + spare;
        let allocation = allocate(&catalog, strategies[strategy_index], budget).unwrap();
        prop_assert_eq!(allocation.total(), budget);
        prop_assert!(allocation.replicas.iter().all(|&r| r >= 1));
    }

    /// Session-length models always produce positive durations, and churn traces stay
    /// time-ordered with departures never preceding their arrivals.
    #[test]
    fn churn_traces_are_well_formed(
        duration in 50u64..400,
        rate in 0.05f64..1.5,
        mean_session in 2.0f64..200.0,
        crash_fraction in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        use sfoverlay::sim::churn::{generate_trace, ChurnAction, ChurnTraceConfig, SessionModel};
        let config = ChurnTraceConfig {
            duration,
            arrival_rate: rate,
            sessions: SessionModel::Exponential { mean: mean_session },
            crash_fraction,
        };
        let trace = generate_trace(&config, &mut rng(seed)).unwrap();
        prop_assert!(trace.departures() <= trace.arrivals);
        let mut arrival_time = std::collections::HashMap::new();
        let mut last_time = 0u64;
        for event in &trace.events {
            prop_assert!(event.time >= last_time);
            prop_assert!(event.time <= duration);
            last_time = event.time;
            match event.action {
                ChurnAction::Arrive => {
                    arrival_time.insert(event.session, event.time);
                }
                _ => {
                    let arrived = arrival_time.get(&event.session).copied();
                    prop_assert!(arrived.is_some());
                    prop_assert!(arrived.unwrap() <= event.time);
                }
            }
        }
    }
}
