//! Property-based tests on the core data structures and algorithms: invariants that must
//! hold for *every* parameter combination, not just the ones the paper plots.
//!
//! The build environment has no access to crates.io, so instead of proptest these tests
//! use a deterministic seeded-case harness: each property runs over a fixed number of
//! randomly generated cases, with all inputs drawn from a per-case `StdRng`. Failures
//! report the case seed, so a failing case replays exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfoverlay::graph::{metrics, traversal, Graph, NodeId};
use sfoverlay::prelude::*;
use sfoverlay::topology::powerlaw::BoundedPowerLaw;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Runs `body` for `cases` deterministic cases, each with its own input RNG.
fn for_cases(cases: u64, body: impl Fn(u64, &mut StdRng)) {
    for case in 0..cases {
        let mut input = rng(0xC0FF_EE00 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(case, &mut input);
    }
}

/// Builds a random simple graph on `nodes` nodes from up to `max_edges` random pairs.
fn random_graph(nodes: usize, max_edges: usize, input: &mut StdRng) -> Graph {
    let mut graph = Graph::with_nodes(nodes);
    for _ in 0..input.gen_range(0..=max_edges) {
        let a = input.gen_range(0..nodes);
        let b = input.gen_range(0..nodes);
        if a != b {
            let _ = graph.add_edge_if_absent(NodeId::new(a), NodeId::new(b));
        }
    }
    graph
}

/// A graph built from an arbitrary edge list stays internally consistent, and its
/// total degree is exactly twice the edge count.
#[test]
fn graph_edge_insertion_invariants() {
    for_cases(24, |case, input| {
        let graph = random_graph(40, 200, input);
        graph.assert_consistent();
        assert_eq!(graph.total_degree(), 2 * graph.edge_count(), "case {case}");
        assert_eq!(graph.edges().count(), graph.edge_count(), "case {case}");
        // BFS from node 0 never reports more reachable nodes than exist.
        let reachable = metrics::reachable_within(&graph, NodeId::new(0), 40);
        assert!(reachable < graph.node_count(), "case {case}");
    });
}

/// Removing the edges of any node leaves a consistent graph with the node isolated.
#[test]
fn node_isolation_preserves_consistency() {
    for_cases(24, |case, input| {
        let mut graph = random_graph(30, 150, input);
        let victim = input.gen_range(0..30);
        let removed = graph.isolate_node(NodeId::new(victim)).unwrap();
        graph.assert_consistent();
        assert_eq!(graph.degree(NodeId::new(victim)), 0, "case {case}");
        for neighbor in removed {
            assert!(
                !graph.contains_edge(NodeId::new(victim), neighbor),
                "case {case}"
            );
        }
    });
}

/// PA respects its size, minimum-degree, cutoff, and connectivity invariants for every
/// valid parameter combination.
#[test]
fn preferential_attachment_invariants() {
    for_cases(24, |case, input| {
        let n: usize = input.gen_range(20..200);
        let m: usize = input.gen_range(1..4);
        let k_c: Option<usize> = if input.gen::<bool>() {
            Some(input.gen_range(5..40).max(m))
        } else {
            None
        };
        let seed: u64 = input.gen_range(0..1_000u64);
        let cutoff = DegreeCutoff::from(k_c);
        let graph = PreferentialAttachment::new(n.max(m + 2), m)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        assert_eq!(graph.node_count(), n.max(m + 2), "case {case}");
        assert!(graph.min_degree().unwrap() >= 1, "case {case}");
        if let Some(k) = k_c {
            assert!(graph.max_degree().unwrap() <= k, "case {case}");
        }
        assert!(traversal::is_connected(&graph), "case {case}");
        graph.assert_consistent();
    });
}

/// The configuration model never exceeds its cutoff and never loses more than a small
/// fraction of stubs to simplification.
#[test]
fn configuration_model_invariants() {
    for_cases(24, |case, input| {
        let n: usize = input.gen_range(50..400);
        let gamma: f64 = input.gen_range(2.1..3.2);
        let m: usize = input.gen_range(1..4);
        let k_c: usize = input.gen_range(10..60);
        let seed: u64 = input.gen_range(0..1_000u64);
        let outcome = ConfigurationModel::new(n, gamma, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate_with_report(&mut rng(seed))
            .unwrap();
        assert_eq!(outcome.graph.node_count(), n, "case {case}");
        assert!(outcome.graph.max_degree().unwrap() <= k_c, "case {case}");
        let target: usize = outcome.target_degrees.iter().sum();
        assert_eq!(target % 2, 0, "case {case}");
        let realized = outcome.graph.total_degree();
        assert!(realized <= target, "case {case}");
        // The "marginal" stub loss the paper describes only holds when the cutoff is well
        // below the system size; when k_c is a sizable fraction of n (possible only for the
        // smallest generated networks here), multi-edges between the few high-degree nodes
        // are common and the loss can be large, so the quantitative bound is restricted to
        // the regime the paper operates in (k_c ≲ n / 4).
        if 4 * k_c <= n {
            assert!(
                (target - realized) as f64 <= 0.25 * target as f64,
                "case {case}: lost {} of {} stubs",
                target - realized,
                target
            );
        }
        outcome.graph.assert_consistent();
    });
}

/// The bounded power law is a proper distribution for every parameterization.
#[test]
fn bounded_power_law_is_a_distribution() {
    for_cases(24, |case, input| {
        let gamma: f64 = input.gen_range(1.1..4.0);
        let k_min: usize = input.gen_range(1..5);
        let span: usize = input.gen_range(1..100);
        let law = BoundedPowerLaw::new(gamma, k_min, k_min + span).unwrap();
        let total: f64 = (k_min..=k_min + span).map(|k| law.pmf(k)).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "case {case}: pmf sums to {total}"
        );
        assert!(
            law.mean() >= k_min as f64 && law.mean() <= (k_min + span) as f64,
            "case {case}"
        );
    });
}

/// Search sanity for arbitrary PA overlays: hits are bounded by BFS reachability (FL
/// attains it exactly), NF hits never exceed FL hits, and RW messages equal its budget
/// unless it starts from an isolated node.
#[test]
fn search_algorithms_respect_reachability_bounds() {
    for_cases(24, |case, input| {
        let n: usize = input.gen_range(30..150);
        let m: usize = input.gen_range(1..3);
        let ttl: u32 = input.gen_range(1..6);
        let seed: u64 = input.gen_range(0..500u64);
        let graph = PreferentialAttachment::new(n.max(m + 2), m)
            .unwrap()
            .generate(&mut rng(seed))
            .unwrap();
        let source = NodeId::new((seed as usize) % graph.node_count());
        let reachable = metrics::reachable_within(&graph, source, ttl);

        let fl = Flooding::new().search(&graph, source, ttl, &mut rng(seed));
        assert_eq!(fl.hits, reachable, "case {case}");

        let nf = NormalizedFlooding::new(m).search(&graph, source, ttl, &mut rng(seed));
        assert!(nf.hits <= fl.hits, "case {case}");
        assert!(nf.messages <= fl.messages, "case {case}");

        let rw = RandomWalk::new().search(&graph, source, ttl, &mut rng(seed));
        assert!(rw.hits <= ttl as usize, "case {case}");
        if graph.degree(source) > 0 {
            assert_eq!(rw.messages, ttl as usize, "case {case}");
        }
    });
}

/// The live overlay stays consistent and below its cutoff under arbitrary interleavings
/// of joins and departures.
#[test]
fn live_overlay_survives_arbitrary_churn() {
    for_cases(24, |case, input| {
        let stubs: usize = input.gen_range(1..4);
        let k_c: usize = input.gen_range(4..20);
        let seed: u64 = input.gen_range(0..1_000u64);
        let operation_count: usize = input.gen_range(1..120);
        let operations: Vec<u8> = (0..operation_count)
            .map(|_| input.gen_range(0..10u8))
            .collect();
        let config = OverlayConfig {
            stubs,
            cutoff: DegreeCutoff::hard(k_c),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut overlay = OverlayNetwork::new(config).unwrap();
        let mut r = rng(seed);
        for op in operations {
            // 70% joins, 20% graceful leaves, 10% crashes.
            if op < 7 || overlay.peer_count() < 3 {
                overlay.join(&mut r);
            } else if op < 9 {
                let victim = overlay.random_peer(&mut r).unwrap();
                overlay.leave(victim, &mut r).unwrap();
            } else {
                let victim = overlay.random_peer(&mut r).unwrap();
                overlay.crash(victim).unwrap();
            }
        }
        overlay.assert_consistent();
        assert!(overlay.max_degree().unwrap_or(0) <= k_c, "case {case}");
        let (graph, peers) = overlay.snapshot();
        assert_eq!(graph.node_count(), peers.len(), "case {case}");
        graph.assert_consistent();
    });
}

/// The nonlinear and initial-attractiveness generators keep the size / cutoff /
/// connectivity invariants of PA for every kernel parameterization.
#[test]
fn modified_pa_generators_keep_pa_invariants() {
    for_cases(16, |case, input| {
        let n: usize = input.gen_range(20..150);
        let m: usize = input.gen_range(1..4);
        let alpha: f64 = input.gen_range(0.0..2.0);
        // Initial attractiveness must exceed -m for the kernel to stay positive.
        let attractiveness: f64 = input.gen_range((-(m as f64) * 0.9)..4.0);
        let k_c: Option<usize> = if input.gen::<bool>() {
            Some(input.gen_range(5..30).max(m))
        } else {
            None
        };
        let seed: u64 = input.gen_range(0..500u64);
        let cutoff = DegreeCutoff::from(k_c);
        let nodes = n.max(m + 2);

        let nlpa = NonlinearPreferentialAttachment::new(nodes, m, alpha)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        assert_eq!(nlpa.node_count(), nodes, "case {case}");
        assert!(traversal::is_connected(&nlpa), "case {case}");
        if let Some(k) = k_c {
            assert!(nlpa.max_degree().unwrap() <= k, "case {case}");
        }
        nlpa.assert_consistent();

        let dms = InitialAttractiveness::new(nodes, m, attractiveness)
            .unwrap()
            .with_cutoff(cutoff)
            .generate(&mut rng(seed))
            .unwrap();
        assert_eq!(dms.node_count(), nodes, "case {case}");
        assert!(traversal::is_connected(&dms), "case {case}");
        if let Some(k) = k_c {
            assert!(dms.max_degree().unwrap() <= k, "case {case}");
        }
        dms.assert_consistent();
    });
}

/// The uncorrelated configuration model never exceeds the tighter of the structural and
/// hard cutoffs and never realizes more degree than it targeted.
#[test]
fn ucm_invariants() {
    for_cases(16, |case, input| {
        let n: usize = input.gen_range(60..400);
        let gamma: f64 = input.gen_range(2.1..3.2);
        let m: usize = input.gen_range(1..3);
        let k_c: Option<usize> = if input.gen::<bool>() {
            Some(input.gen_range(5..40).max(m))
        } else {
            None
        };
        let seed: u64 = input.gen_range(0..500u64);
        let generator = UncorrelatedConfigurationModel::new(n, gamma, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::from(k_c));
        let outcome = generator.generate_with_report(&mut rng(seed)).unwrap();
        let (_, k_max) = generator.support().unwrap();
        assert!(
            outcome.graph.max_degree().unwrap_or(0) <= k_max,
            "case {case}"
        );
        for (realized, target) in outcome.graph.degrees().iter().zip(&outcome.target_degrees) {
            assert!(realized <= target, "case {case}");
        }
        assert!(
            outcome.unplaced_stubs <= 2 * outcome.target_degrees.iter().sum::<usize>() / 100 + 4,
            "case {case}"
        );
        outcome.graph.assert_consistent();
    });
}

/// Edge-list serialization round-trips arbitrary simple graphs: node count, edge count,
/// and the sorted edge set are preserved.
#[test]
fn edge_list_round_trip() {
    use sfoverlay::graph::io::{parse_edge_list, write_edge_list};
    for_cases(16, |case, input| {
        let graph = random_graph(30, 120, input);
        let parsed = parse_edge_list(&write_edge_list(&graph)).unwrap();
        assert_eq!(parsed.node_count(), graph.node_count(), "case {case}");
        assert_eq!(parsed.edge_count(), graph.edge_count(), "case {case}");
        let mut original: Vec<_> = graph.edges().collect();
        let mut reparsed: Vec<_> = parsed.edges().collect();
        original.sort_unstable();
        reparsed.sort_unstable();
        assert_eq!(original, reparsed, "case {case}");
    });
}

/// Core numbers never exceed degrees and the degeneracy never exceeds the maximum
/// degree, for arbitrary graphs.
#[test]
fn core_numbers_are_bounded_by_degrees() {
    use sfoverlay::graph::kcore::core_decomposition;
    for_cases(16, |case, input| {
        let graph = random_graph(25, 100, input);
        let decomposition = core_decomposition(&graph);
        for node in graph.nodes() {
            assert!(
                decomposition.core_numbers[node.index()] <= graph.degree(node),
                "case {case}"
            );
        }
        assert!(
            decomposition.degeneracy <= graph.max_degree().unwrap_or(0),
            "case {case}"
        );
        // Core sizes are monotone non-increasing in k.
        let sizes = decomposition.core_sizes();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "case {case}");
        }
    });
}

/// The item-hit probability is a probability and is monotone in both coverage and
/// replica count.
#[test]
fn success_probability_is_monotone() {
    use sfoverlay::search::coverage::success_probability;
    for_cases(16, |case, input| {
        let hits: usize = input.gen_range(0..500);
        let replicas: usize = input.gen_range(0..50);
        let population: usize = input.gen_range(2..600);
        let p = success_probability(hits, replicas, population);
        assert!((0.0..=1.0).contains(&p), "case {case}");
        assert!(
            success_probability(hits + 10, replicas, population) >= p - 1e-12,
            "case {case}"
        );
        assert!(
            success_probability(hits, replicas + 1, population) >= p - 1e-12,
            "case {case}"
        );
    });
}

/// Replica allocation always spends exactly the budget and gives every item at least
/// one copy, for every strategy and catalog skew.
#[test]
fn replica_allocation_spends_the_budget() {
    use sfoverlay::sim::catalog::Catalog;
    use sfoverlay::sim::replication::allocate;
    for_cases(16, |case, input| {
        let items: usize = input.gen_range(1..60);
        let spare: usize = input.gen_range(0..200);
        let skew: f64 = input.gen_range(0.0..2.0);
        let strategies = [
            ReplicationStrategy::Uniform,
            ReplicationStrategy::Proportional,
            ReplicationStrategy::SquareRoot,
        ];
        let strategy = strategies[input.gen_range(0..strategies.len())];
        let catalog = Catalog::new(items, skew).unwrap();
        let budget = items + spare;
        let allocation = allocate(&catalog, strategy, budget).unwrap();
        assert_eq!(allocation.total(), budget, "case {case}");
        assert!(allocation.replicas.iter().all(|&r| r >= 1), "case {case}");
    });
}

/// Session-length models always produce positive durations, and churn traces stay
/// time-ordered with departures never preceding their arrivals.
#[test]
fn churn_traces_are_well_formed() {
    use sfoverlay::sim::churn::{generate_trace, ChurnAction, ChurnTraceConfig, SessionModel};
    for_cases(16, |case, input| {
        let duration: u64 = input.gen_range(50..400);
        let rate: f64 = input.gen_range(0.05..1.5);
        let mean_session: f64 = input.gen_range(2.0..200.0);
        let crash_fraction: f64 = input.gen_range(0.0..1.0);
        let seed: u64 = input.gen_range(0..500u64);
        let config = ChurnTraceConfig {
            duration,
            arrival_rate: rate,
            sessions: SessionModel::Exponential { mean: mean_session },
            crash_fraction,
        };
        let trace = generate_trace(&config, &mut rng(seed)).unwrap();
        assert!(trace.departures() <= trace.arrivals, "case {case}");
        let mut arrival_time = std::collections::HashMap::new();
        let mut last_time = 0u64;
        for event in &trace.events {
            assert!(event.time >= last_time, "case {case}");
            assert!(event.time <= duration, "case {case}");
            last_time = event.time;
            match event.action {
                ChurnAction::Arrive => {
                    arrival_time.insert(event.session, event.time);
                }
                _ => {
                    let arrived = arrival_time.get(&event.session).copied();
                    assert!(arrived.is_some(), "case {case}");
                    assert!(arrived.unwrap() <= event.time, "case {case}");
                }
            }
        }
    });
}
