//! The load-testing subsystem end to end: workload specs as files, seed-deterministic
//! arrival schedules, the open-loop driver against a live worker, the typed shed path,
//! and the headline invariant — a metered, shed-provoking loadtest never perturbs a
//! single byte of any served `BatchResult` (determinism rule 6 in
//! `docs/ARCHITECTURE.md`).

use sfoverlay::net::message::{
    recv_message, send_message, BatchRequest, Hello, Message, WHOLE_SNAPSHOT,
};
use sfoverlay::net::{NetListener, ServeConfig, WorkerServer};
use sfoverlay::prelude::*;
use std::path::{Path, PathBuf};

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfo-loadtest-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small capped-PA topology to serve; built once per test that needs one.
fn snapshot_fixture(dir: &Path) -> String {
    let spec = ScenarioSpec::sweep(
        "loadtest-fixture",
        TopologySpec::Pa {
            nodes: 400,
            m: 2,
            cutoff: Some(12),
        },
        SearchSpec::Flooding,
        SweepSpec::single(vec![1], 1),
        17,
        1,
    );
    let path = dir.join("loadtest.sfos").display().to_string();
    build_snapshot(&spec, 0).unwrap().save(&path).unwrap();
    path
}

/// Binds a worker over the fixture with the given per-connection queue bound.
fn serve(snapshot_path: &str, queue_bound: usize) -> (String, sfoverlay::net::WorkerServerHandle) {
    let server = WorkerServer::bind(&ServeConfig {
        snapshot_path: snapshot_path.to_string(),
        listen: "127.0.0.1:0".to_string(),
        engine_workers: 1,
        shard_count: 1,
        shard_index: None,
        mmap: false,
        queue_bound,
    })
    .unwrap();
    let addr = server.local_addr();
    (addr, server.spawn())
}

/// Mirrors the driver's request construction: request `index` of a workload is a pure
/// function of `(spec, index, node_count)` — the contract that makes the byte-identity
/// comparison below meaningful.
fn request_for(spec: &WorkloadSpec, index: u64, node_count: u64) -> BatchRequest {
    let mut batch = QueryBatch::new();
    for source in spec.request_sources(index, node_count) {
        batch.push(NodeId::new(source as usize), 0, spec.ttl);
    }
    BatchRequest::Queries {
        seed: spec.seed,
        index_offset: index * spec.jobs_per_request as u64,
        algorithms: vec![spec.search.clone()],
        batch,
    }
}

#[test]
fn workload_spec_files_round_trip_like_cli_inputs() {
    let dir = scratch("roundtrip");
    let spec = WorkloadSpec {
        name: "rt".to_string(),
        arrivals: ArrivalSpec::Bursty {
            rate_hz: 120.0,
            shape: 1.5,
            mean_on_secs: 0.4,
            mean_off_secs: 0.6,
        },
        duration_secs: 2.0,
        connections: 3,
        jobs_per_request: 4,
        search: SearchSpec::NormalizedFlooding { k_min: Some(2) },
        ttl: 5,
        seed: 99,
    };
    // Through the filesystem, the way `sfo loadtest <file>` consumes it.
    let path = dir.join("workload.json");
    std::fs::write(&path, spec.to_json_string()).unwrap();
    let reparsed = WorkloadSpec::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reparsed, spec);
    // A bursty spec's long-run offered rate is its on-fraction times the burst target.
    let offered = reparsed.arrivals.offered_rate_hz();
    assert!((offered - 120.0 * 0.4).abs() < 1e-9, "offered {offered}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn arrival_schedules_are_pure_functions_of_the_spec() {
    for arrivals in [
        ArrivalSpec::Poisson { rate_hz: 500.0 },
        ArrivalSpec::Bursty {
            rate_hz: 800.0,
            shape: 1.4,
            mean_on_secs: 0.05,
            mean_off_secs: 0.05,
        },
    ] {
        let spec = WorkloadSpec {
            name: "sched".to_string(),
            arrivals,
            duration_secs: 1.0,
            connections: 2,
            jobs_per_request: 1,
            search: SearchSpec::Flooding,
            ttl: 2,
            seed: 5,
        };
        assert_eq!(spec.schedule().unwrap(), spec.schedule().unwrap());
        let mut renamed = spec.clone();
        renamed.name = "sched-b".to_string();
        assert_ne!(
            spec.schedule().unwrap(),
            renamed.schedule().unwrap(),
            "the schedule stream is salted by the workload name"
        );
        // Sources too: derived per request index, independent of call order.
        assert_eq!(spec.request_sources(7, 400), spec.request_sources(7, 400));
        assert_ne!(spec.request_sources(7, 400), spec.request_sources(8, 400));
    }
}

#[test]
fn a_shed_reply_is_a_typed_client_error_that_keeps_the_connection() {
    // A scripted worker: Hello, then answer every batch with a typed shed, then one
    // real-looking error — proving WorkerClient surfaces NetError::Overloaded and the
    // connection survives to carry the next request.
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    let fake = std::thread::spawn(move || {
        let mut stream = listener.accept().unwrap();
        send_message(
            &mut stream,
            &Message::Hello(Hello {
                identity: 7,
                node_count: 10,
                edge_count: 9,
                shard_count: 1,
                engine_workers: 1,
                shard_index: WHOLE_SNAPSHOT,
            }),
        )
        .unwrap();
        let Message::SubmitBatch(_) = recv_message(&mut stream).unwrap() else {
            panic!("expected a batch");
        };
        send_message(
            &mut stream,
            &Message::Overloaded {
                queued: 3,
                limit: 2,
            },
        )
        .unwrap();
        let Message::SubmitBatch(_) = recv_message(&mut stream).unwrap() else {
            panic!("expected a second batch on the same connection");
        };
        send_message(&mut stream, &Message::BatchResult { outcomes: vec![] }).unwrap();
    });

    let mut client = WorkerClient::connect(&addr).unwrap();
    let mut batch = QueryBatch::new();
    batch.push(NodeId::new(0), 0, 1);
    let request = BatchRequest::Queries {
        seed: 1,
        index_offset: 0,
        algorithms: vec![SearchSpec::Flooding],
        batch,
    };
    let err = client.submit(&request).unwrap_err();
    let NetError::Overloaded { queued, limit } = &err else {
        panic!("expected NetError::Overloaded, got {err}");
    };
    assert_eq!((*queued, *limit), (3, 2));
    assert!(err.to_string().contains("queue bound"), "{err}");
    // The shed left the connection usable: the next submit round-trips normally.
    assert_eq!(client.submit(&request).unwrap(), vec![]);
    fake.join().unwrap();
}

#[test]
fn a_saturating_loadtest_reconciles_counters_and_never_perturbs_result_bytes() {
    let dir = scratch("saturate");
    let snapshot = snapshot_fixture(&dir);

    // Deliberately past saturation: heavy requests (800 floods each) against a
    // single-threaded worker whose per-connection queue holds one batch, offered
    // faster than it can possibly serve. The driver must survive this — sheds are
    // counted, not fatal.
    let spec = WorkloadSpec {
        name: "saturate".to_string(),
        arrivals: ArrivalSpec::Poisson { rate_hz: 1_000.0 },
        duration_secs: 0.15,
        connections: 1,
        jobs_per_request: 800,
        search: SearchSpec::Flooding,
        ttl: 6,
        seed: 23,
    };
    let (addr, handle) = serve(&snapshot, 1);
    let report = run_loadtest(&LoadtestConfig {
        spec: spec.clone(),
        workers: vec![addr.clone()],
        record_outcomes: true,
    })
    .unwrap();

    // Driver-side reconciliation: every sent request is accounted for exactly once.
    assert_eq!(report.decode_errors, 0);
    assert_eq!(
        report.sent, report.offered,
        "open loop sends the whole schedule"
    );
    assert_eq!(report.sent, report.completed + report.shed + report.errors);
    assert_eq!(report.errors, 0);
    assert!(
        report.completed >= 1,
        "the first arrival is always admitted"
    );
    assert!(report.shed >= 1, "a bound of one past saturation must shed");
    assert_eq!(report.latency.count, report.completed);
    assert!(report.latency.p99() >= report.latency.p50());
    assert!(report.min_latency_micros <= report.latency.max);
    assert!(report.inflight.max >= 1);

    // Server-side reconciliation, over the wire: the worker counted the same sheds,
    // and its queue-depth histogram saw exactly the admitted batches.
    let mut client = WorkerClient::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.counter("net.shed_total"), Some(report.shed));
    let depth = stats.histogram("net.queue_depth").unwrap();
    assert_eq!(depth.count, report.completed);
    assert_eq!(depth.max, 1, "a bound of one never queues deeper than one");
    assert_eq!(
        stats.counter("net.frames_in.SubmitBatch"),
        Some(report.sent)
    );
    handle.stop();

    // The invariance row: replay every completed request against a fresh, unloaded,
    // unbounded worker and compare the full reply encodings. Saturation, shedding,
    // and measurement must be invisible in the payload bytes (determinism rule 6).
    let (calm_addr, calm_handle) = serve(&snapshot, 0);
    let mut calm = WorkerClient::connect(&calm_addr).unwrap();
    let node_count = calm.hello().node_count;
    let mut compared = 0u64;
    for (index, slot) in report.outcomes.iter().enumerate() {
        let Some(loaded) = slot else { continue };
        let unloaded = calm
            .submit(&request_for(&spec, index as u64, node_count))
            .unwrap();
        let loaded_bytes = Message::BatchResult {
            outcomes: loaded.clone(),
        }
        .encode();
        let unloaded_bytes = Message::BatchResult { outcomes: unloaded }.encode();
        assert_eq!(
            loaded_bytes, unloaded_bytes,
            "request {index}: a shed-provoking loadtest changed served result bytes"
        );
        compared += 1;
    }
    assert_eq!(compared, report.completed);
    calm_handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_unsaturated_loadtest_completes_the_whole_schedule() {
    let dir = scratch("calm");
    let snapshot = snapshot_fixture(&dir);
    // Light load under a bound the schedule cannot reach: nothing sheds, everything
    // completes, and the achieved rate lands in the same regime as the offered one.
    // (The bound exceeds the whole schedule so CPU contention from concurrently
    // running tests can never push the pending queue over it.)
    let spec = WorkloadSpec {
        name: "calm".to_string(),
        arrivals: ArrivalSpec::Poisson { rate_hz: 400.0 },
        duration_secs: 0.2,
        connections: 2,
        jobs_per_request: 2,
        search: SearchSpec::Flooding,
        ttl: 2,
        seed: 31,
    };
    let (addr, handle) = serve(&snapshot, 10_000);
    let report = run_loadtest(&LoadtestConfig {
        spec,
        workers: vec![addr],
        record_outcomes: false,
    })
    .unwrap();
    assert_eq!(report.decode_errors, 0);
    assert_eq!(
        report.shed, 0,
        "the bound exceeds the schedule; nothing can shed"
    );
    assert_eq!(report.completed, report.offered);
    assert!(report.achieved_rate_hz > 0.0);
    assert!(report.elapsed_secs > 0.0);
    assert!(
        report.outcomes.is_empty(),
        "outcomes are only kept on request"
    );
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
