//! Equivalence of the two graph backends: `Graph → freeze → CsrGraph` must preserve the
//! structure exactly, and every search algorithm must return byte-identical outcomes on
//! either backend for a fixed seed.
//!
//! These are the contract tests of the `GraphView` refactor: the figure harness freezes
//! each realization and runs all sweeps on the snapshot, so any divergence between the
//! backends would silently change the reproduced results. Topologies are drawn from the
//! UCM and HAPA generators (plus the churn-aged live overlay), the same families the
//! experiments use. Like `property_tests.rs`, the cases are deterministic seeded draws
//! (the build environment has no crates.io access for proptest).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfoverlay::graph::{traversal, CsrGraph, Graph, GraphView, NodeId};
use sfoverlay::prelude::*;
use sfoverlay::sim::overlay::{JoinStrategy, OverlayConfig, OverlayNetwork};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Runs `body` over deterministic cases, each with its own input RNG.
fn for_cases(cases: u64, body: impl Fn(u64, &mut StdRng)) {
    for case in 0..cases {
        let mut input = rng(0xF07E_A500 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(case, &mut input);
    }
}

/// Draws a random UCM or HAPA topology of the kind the experiments sweep.
fn random_topology(case: u64, input: &mut StdRng) -> Graph {
    let n: usize = input.gen_range(100..600);
    let m: usize = input.gen_range(1..4);
    let seed: u64 = input.gen_range(0..10_000);
    let k_c: usize = input.gen_range((m.max(5))..40);
    if input.gen::<bool>() {
        let gamma: f64 = input.gen_range(2.1..3.1);
        UncorrelatedConfigurationModel::new(n, gamma, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate(&mut rng(seed))
            .unwrap_or_else(|e| panic!("case {case}: UCM generation failed: {e}"))
    } else {
        HopAndAttempt::new(n, m)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate(&mut rng(seed))
            .unwrap_or_else(|e| panic!("case {case}: HAPA generation failed: {e}"))
    }
}

/// Structure is preserved exactly: node/edge counts, degree sequence, per-node neighbor
/// sets (and order), and the full round trip.
#[test]
fn freeze_preserves_structure_and_thaw_round_trips() {
    for_cases(20, |case, input| {
        let graph = random_topology(case, input);
        let frozen = graph.freeze();

        assert_eq!(frozen.node_count(), graph.node_count(), "case {case}");
        assert_eq!(frozen.edge_count(), graph.edge_count(), "case {case}");
        assert_eq!(GraphView::degrees(&frozen), graph.degrees(), "case {case}");

        for node in graph.nodes() {
            // Freezing preserves neighbor order outright, which implies equal sorted sets.
            assert_eq!(
                frozen.neighbors(node),
                graph.neighbors(node),
                "case {case}, {node}"
            );
            let mut frozen_sorted = frozen.neighbors(node).to_vec();
            let mut graph_sorted = graph.neighbors(node).to_vec();
            frozen_sorted.sort_unstable();
            graph_sorted.sort_unstable();
            assert_eq!(frozen_sorted, graph_sorted, "case {case}, {node}");
        }

        assert_eq!(frozen.thaw(), graph, "case {case}: thaw(freeze(g)) != g");
    });
}

/// BFS distance maps are identical on both backends, from several sources.
#[test]
fn bfs_distances_agree_on_both_backends() {
    for_cases(12, |case, input| {
        let graph = random_topology(case, input);
        let frozen = graph.freeze();
        for _ in 0..5 {
            let source = NodeId::new(input.gen_range(0..graph.node_count()));
            assert_eq!(
                traversal::bfs_distances(&graph, source),
                traversal::bfs_distances(&frozen, source),
                "case {case}, source {source}"
            );
        }
        assert_eq!(
            traversal::connected_components(&graph),
            traversal::connected_components(&frozen),
            "case {case}"
        );
    });
}

/// Every search algorithm produces a byte-identical `SearchOutcome` on the graph and on
/// its frozen snapshot when started from the same seed — the guarantee that lets the
/// experiments freeze realizations without changing any figure.
#[test]
fn search_outcomes_are_identical_on_both_backends() {
    /// One comparison entry: label, the algorithm bound to each backend.
    type BackendPair = (
        &'static str,
        Box<dyn SearchAlgorithm>,
        Box<dyn SearchAlgorithm<CsrGraph>>,
    );
    let algorithms: Vec<BackendPair> = vec![
        ("FL", Box::new(Flooding::new()), Box::new(Flooding::new())),
        (
            "NF",
            Box::new(NormalizedFlooding::new(2)),
            Box::new(NormalizedFlooding::new(2)),
        ),
        (
            "pFL",
            Box::new(ProbabilisticFlooding::new(0.5)),
            Box::new(ProbabilisticFlooding::new(0.5)),
        ),
        (
            "ring",
            Box::new(ExpandingRing::new(1, 2)),
            Box::new(ExpandingRing::new(1, 2)),
        ),
        (
            "RW",
            Box::new(RandomWalk::new()),
            Box::new(RandomWalk::new()),
        ),
        (
            "multi-RW",
            Box::new(MultipleRandomWalk::new(4)),
            Box::new(MultipleRandomWalk::new(4)),
        ),
        (
            "HD-RW",
            Box::new(DegreeBiasedWalk::new()),
            Box::new(DegreeBiasedWalk::new()),
        ),
    ];
    for_cases(10, |case, input| {
        let graph = random_topology(case, input);
        let frozen = graph.freeze();
        let ttl: u32 = input.gen_range(1..8);
        let search_seed: u64 = input.gen_range(0..10_000);
        for _ in 0..3 {
            let source = NodeId::new(input.gen_range(0..graph.node_count()));
            for (name, on_graph, on_csr) in &algorithms {
                let a = on_graph.search(&graph, source, ttl, &mut rng(search_seed));
                let b = on_csr.search(&frozen, source, ttl, &mut rng(search_seed));
                assert_eq!(
                    a, b,
                    "case {case}: {name} diverged from {source} at ttl {ttl}"
                );
            }
        }
    });
}

/// The experiment harness itself (sweeps, message normalization) agrees across backends.
#[test]
fn experiment_sweeps_agree_on_both_backends() {
    use sfoverlay::search::experiment::{rw_normalized_to_nf, ttl_sweep};
    for_cases(6, |case, input| {
        let graph = random_topology(case, input);
        let frozen = graph.freeze();
        let ttls = [1u32, 2, 4];
        let seed: u64 = input.gen_range(0..10_000);
        assert_eq!(
            ttl_sweep(&graph, &Flooding::new(), &ttls, 10, &mut rng(seed)),
            ttl_sweep(&frozen, &Flooding::new(), &ttls, 10, &mut rng(seed)),
            "case {case}: FL sweep diverged"
        );
        assert_eq!(
            rw_normalized_to_nf(&graph, 2, &ttls, 10, &mut rng(seed)),
            rw_normalized_to_nf(&frozen, 2, &ttls, 10, &mut rng(seed)),
            "case {case}: normalized RW sweep diverged"
        );
    });
}

/// Freezing a churn-aged live overlay snapshot also round-trips: the path the simulator
/// exercises between churn events.
#[test]
fn overlay_snapshots_freeze_faithfully() {
    for_cases(8, |case, input| {
        let config = OverlayConfig {
            stubs: input.gen_range(1..4),
            cutoff: DegreeCutoff::hard(input.gen_range(5..20)),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut overlay = OverlayNetwork::new(config).unwrap();
        let mut r = rng(input.gen_range(0..10_000));
        for _ in 0..input.gen_range(10..150) {
            if overlay.peer_count() > 3 && r.gen::<f64>() < 0.3 {
                let victim = overlay.random_peer(&mut r).unwrap();
                overlay.leave(victim, &mut r).unwrap();
            } else {
                overlay.join(&mut r);
            }
        }
        let (graph, peers) = overlay.snapshot();
        let frozen = graph.freeze();
        assert_eq!(frozen.node_count(), peers.len(), "case {case}");
        assert_eq!(frozen.thaw(), graph, "case {case}");
        assert_eq!(
            traversal::giant_component_fraction(&graph),
            traversal::giant_component_fraction(&frozen),
            "case {case}"
        );
    });
}
