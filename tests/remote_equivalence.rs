//! Local-vs-distributed byte identity: the headline invariant of `sfo-net`.
//!
//! A `ScenarioSpec` with `workers: [...]` run against `sfo serve` processes must
//! produce a `ScenarioReport.result` byte-identical to the same spec run locally, for
//! any worker count and job split — and the raw worker protocol must reproduce the
//! engine's serial oracle job for job. Worker-count and split-boundary invariance hold
//! by construction (per-job RNG streams keyed by global index); these tests pin the
//! construction.

use sfoverlay::net::message::BatchRequest;
use sfoverlay::net::{dispatch_queries, remote_runner, NetError, ServeConfig, WorkerServer};
use sfoverlay::prelude::*;
use std::path::PathBuf;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfo-remote-eq-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds and saves a small capped-PA snapshot; returns its path and the build spec.
fn build_fixture(dir: &std::path::Path, name: &str, seed: u64) -> (String, ScenarioSpec) {
    let mut spec = ScenarioSpec::sweep(
        format!("remote-eq-{name}"),
        TopologySpec::Pa {
            nodes: 500,
            m: 2,
            cutoff: Some(12),
        },
        SearchSpec::Flooding,
        SweepSpec::single(vec![1, 2, 3, 5], 9),
        seed,
        1,
    );
    spec.sweep.as_mut().unwrap().batch = true;
    let path = dir.join(format!("{name}.sfos"));
    build_snapshot(&spec, 0).unwrap().save(&path).unwrap();
    (path.display().to_string(), spec)
}

/// Spawns `count` servers over the same snapshot and returns their stop handles and
/// dialable addresses.
fn spawn_workers(
    snapshot_path: &str,
    count: usize,
) -> (Vec<sfoverlay::net::WorkerServerHandle>, Vec<String>) {
    let mut handles = Vec::with_capacity(count);
    let mut addrs = Vec::with_capacity(count);
    for w in 0..count {
        let server = WorkerServer::bind(&ServeConfig {
            snapshot_path: snapshot_path.to_string(),
            listen: "127.0.0.1:0".to_string(),
            engine_workers: 1 + w, // deliberately heterogeneous pools
            shard_count: w + 1,    // and heterogeneous shard counts
            shard_index: None,
            mmap: w % 2 == 1, // and a mix of mapped and read stores
            queue_bound: 0,
        })
        .unwrap();
        addrs.push(server.local_addr());
        handles.push(server.spawn());
    }
    (handles, addrs)
}

/// The snapshot-backed spec pointing at `path`, with the given worker list.
fn snapshot_spec(base: &ScenarioSpec, path: &str, workers: Vec<String>) -> ScenarioSpec {
    let mut spec = base.clone();
    spec.topology = Some(TopologySpec::Snapshot {
        path: path.to_string(),
    });
    spec.sweep.as_mut().unwrap().workers = workers;
    spec
}

#[test]
fn one_two_and_three_worker_splits_equal_the_local_run() {
    let dir = scratch("splits");
    let (path, base) = build_fixture(&dir, "splits", 77);
    let local = remote_runner()
        .run(&snapshot_spec(&base, &path, Vec::new()))
        .unwrap();

    for worker_count in [1usize, 2, 3] {
        let (handles, addrs) = spawn_workers(&path, worker_count);
        let spec = snapshot_spec(&base, &path, addrs.clone());
        let report = remote_runner().run(&spec).unwrap();
        // The *result* is byte-identical (the embedded spec differs by the worker
        // list, which is a deployment knob, not a measurement).
        assert_eq!(
            report.result, local.result,
            "{worker_count} workers diverged"
        );
        assert_eq!(
            sfoverlay::scenario::report::ScenarioReport {
                spec: local.spec.clone(),
                result: report.result.clone(),
            }
            .to_json_string(),
            local.to_json_string(),
            "{worker_count} workers: JSON bytes diverged"
        );
        // Repeating the same worker address also works: splits are contiguity, not
        // placement.
        if worker_count == 1 {
            let doubled = snapshot_spec(&base, &path, vec![addrs[0].clone(), addrs[0].clone()]);
            assert_eq!(remote_runner().run(&doubled).unwrap().result, local.result);
        }
        for handle in handles {
            handle.stop();
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rw_normalized_sweeps_are_split_invariant_too() {
    // The two-phase normalized-walk job (NF then budgeted RW on one stream) is the
    // most stream-sensitive shape; split it asymmetrically across two workers.
    let dir = scratch("rwnf");
    let (path, mut base) = build_fixture(&dir, "rwnf", 19);
    base.search = Some(SearchSpec::RwNormalizedToNf { k_min: None });
    let local = remote_runner()
        .run(&snapshot_spec(&base, &path, Vec::new()))
        .unwrap();
    let (handles, addrs) = spawn_workers(&path, 2);
    let report = remote_runner()
        .run(&snapshot_spec(&base, &path, addrs))
        .unwrap();
    assert_eq!(report.result, local.result);
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dispatched_query_batches_equal_the_serial_oracle() {
    let dir = scratch("queries");
    let (path, _) = build_fixture(&dir, "queries", 5);

    // The oracle: the engine's serial loop over the unsharded snapshot.
    let file = SnapshotFile::load(&path).unwrap();
    let node_count = file.csr.node_count();
    let specs = vec![SearchSpec::Flooding, SearchSpec::RandomWalk];
    let algorithms: Vec<Box<dyn SearchAlgorithm<CsrGraph> + Send + Sync>> =
        vec![Box::new(Flooding::new()), Box::new(RandomWalk::new())];
    let mut batch = QueryBatch::new();
    for i in 0..37 {
        batch.push(
            NodeId::new((i * 13) % node_count),
            i % 2,
            1 + (i % 4) as u32,
        );
    }
    let seed = 23u64;
    let serial = sfoverlay::engine::run_queries_serial(&file.csr, &algorithms, &batch, seed);

    let identity = sfoverlay::graph::snapshot::read_identity(&path).unwrap();
    for worker_count in [1usize, 2, 3] {
        let (handles, addrs) = spawn_workers(&path, worker_count);
        let outcomes = dispatch_queries(&addrs, identity, seed, &specs, &batch).unwrap();
        assert_eq!(outcomes, serial, "{worker_count} workers diverged");
        for handle in handles {
            handle.stop();
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn workers_serving_the_wrong_snapshot_are_refused() {
    let dir = scratch("identity");
    let (right_path, base) = build_fixture(&dir, "right", 42);
    // Same shape, different seed: a different realization with a different identity.
    let (wrong_path, _) = build_fixture(&dir, "wrong", 43);

    let (handles, addrs) = spawn_workers(&wrong_path, 1);
    let spec = snapshot_spec(&base, &right_path, addrs);
    let err = remote_runner().run(&spec).unwrap_err();
    match err {
        ScenarioError::Remote { message } => {
            assert!(
                message.contains("identity") || message.contains("serves snapshot"),
                "unhelpful refusal: {message}"
            );
        }
        other => panic!("expected a Remote error, got {other:?}"),
    }
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_single_connection_survives_refused_requests() {
    let dir = scratch("refusals");
    let (path, _) = build_fixture(&dir, "refusals", 3);
    let (handles, addrs) = spawn_workers(&path, 1);
    let mut client = WorkerClient::connect(&addrs[0]).unwrap();
    assert!(client.hello().node_count == 500);

    // An out-of-bounds range is refused...
    let refused = client.submit(&BatchRequest::SweepRange {
        seed: 1,
        start: 0,
        end: 10_000,
        searches_per_point: 2,
        ttls: vec![1],
        search: SearchSpec::Flooding,
    });
    assert!(matches!(refused, Err(NetError::Remote { .. })));
    // ...an unknown snapshot load too...
    assert!(matches!(
        client.load_snapshot("definitely-missing.sfos"),
        Err(NetError::Remote { .. })
    ));
    // ...and the connection still serves good requests afterwards.
    let outcomes = client
        .submit(&BatchRequest::SweepRange {
            seed: 1,
            start: 0,
            end: 4,
            searches_per_point: 2,
            ttls: vec![1, 2],
            search: SearchSpec::Flooding,
        })
        .unwrap();
    assert_eq!(outcomes.len(), 4);
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn connections_pin_the_snapshot_their_hello_announced() {
    // The identity handshake is a per-conversation promise: a LoadSnapshot from one
    // client must not silently retarget batches already in flight on another client's
    // connection — that connection keeps serving the store its Hello named.
    let dir = scratch("pinning");
    let (path_a, _) = build_fixture(&dir, "pin-a", 101);
    let (path_b, _) = build_fixture(&dir, "pin-b", 202);
    let (handles, addrs) = spawn_workers(&path_a, 1);

    let request = BatchRequest::SweepRange {
        seed: 9,
        start: 0,
        end: 8,
        searches_per_point: 4,
        ttls: vec![1, 2],
        search: SearchSpec::Flooding,
    };
    let mut client_a = WorkerClient::connect(&addrs[0]).unwrap();
    let identity_a = client_a.hello().identity;
    let before = client_a.submit(&request).unwrap();

    // Client B swaps the server's default snapshot...
    let mut client_b = WorkerClient::connect(&addrs[0]).unwrap();
    let hello_b = client_b.load_snapshot(&path_b).unwrap();
    assert_ne!(hello_b.identity, identity_a);

    // ...but A's connection still serves what A's Hello announced...
    let after = client_a.submit(&request).unwrap();
    assert_eq!(
        after, before,
        "a foreign LoadSnapshot retargeted a pinned connection"
    );
    // ...while fresh connections see the new default.
    let client_c = WorkerClient::connect(&addrs[0]).unwrap();
    assert_eq!(client_c.hello().identity, hello_b.identity);

    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_workers_are_byte_identical_to_tcp_ones() {
    let dir = scratch("unix");
    let (path, base) = build_fixture(&dir, "unix", 11);
    let local = remote_runner()
        .run(&snapshot_spec(&base, &path, Vec::new()))
        .unwrap();

    let socket = dir.join("worker.sock");
    let server = WorkerServer::bind(&ServeConfig {
        snapshot_path: path.clone(),
        listen: format!("unix:{}", socket.display()),
        engine_workers: 2,
        shard_count: 2,
        shard_index: None,
        mmap: true,
        queue_bound: 0,
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let report = remote_runner()
        .run(&snapshot_spec(&base, &path, vec![addr]))
        .unwrap();
    assert_eq!(report.result, local.result);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
