//! Corruption matrix for the `sfo-net` frame codec, mirroring the snapshot matrix in
//! `tests/snapshot_roundtrip.rs`: every way a frame can be malformed — wrong magic,
//! unknown version or message type, truncation in every section, checksum mismatches,
//! oversized declared lengths, lying inner counts — must surface as a typed
//! [`NetError`], never a panic and never a silently wrong message; and every
//! well-formed message must round-trip bit-exactly.

use sfoverlay::graph::generators::ring_graph;
use sfoverlay::net::frame::{
    encode_frame, read_frame, FRAME_HEADER_LEN, MAX_PAYLOAD_LEN, PROTOCOL_VERSION,
};
use sfoverlay::net::message::{
    recv_message, send_message, BatchRequest, FrontierResult, Hello, Message, ShardPayload,
    TYPE_BATCH_RESULT, TYPE_ERROR, TYPE_HELLO, TYPE_SHUFFLE, TYPE_SUBMIT_BATCH, WHOLE_SNAPSHOT,
};
use sfoverlay::net::overlay::{OverlayMessage, PeerRef};
use sfoverlay::net::NetError;
use sfoverlay::prelude::{
    shard_range, NodeId, PlacedAlgorithm, PlacedState, QueryBatch, SearchOutcome, SearchSpec,
};

/// A mid-flight placed search with a non-trivial visited delta and queue, so every
/// variable-length section of the frontier encoding is exercised.
fn sample_frontier() -> PlacedState {
    PlacedState {
        algorithm: PlacedAlgorithm::NormalizedFlooding { k_min: 2 },
        walk_phase: false,
        source: 3,
        ttl: 5,
        hits: 17,
        messages: 40,
        current: 3,
        previous: sfoverlay::engine::NO_NODE,
        walker: 0,
        steps_done: 0,
        rng: [1, 2, 3, 4],
        visited: vec![(0, 0b1001), (2, u64::MAX)],
        queue: vec![(9, 3, 1), (14, sfoverlay::engine::NO_NODE, 2)],
    }
}

/// Shard 1 of a 3-way placement over a 10-node ring — the canonical range `4..7`.
fn sample_shard() -> ShardPayload {
    let csr = ring_graph(10, 2).unwrap().freeze();
    ShardPayload {
        identity: 0xABCD_EF01_2345_6789,
        shard_index: 1,
        shard_count: 3,
        slice: csr.extract_slice(shard_range(10, 3, 1)),
    }
}

/// One of every message kind, with both batch-request shapes.
fn all_messages() -> Vec<Message> {
    let mut batch = QueryBatch::new();
    batch.push(NodeId::new(0), 0, 1);
    batch.push(NodeId::new(41), 1, 6);
    vec![
        Message::Hello(Hello {
            identity: u64::MAX,
            node_count: 1,
            edge_count: 0,
            shard_count: 1,
            engine_workers: 64,
            shard_index: WHOLE_SNAPSHOT,
        }),
        Message::LoadSnapshot {
            path: "shards/realization-0.sfos".to_string(),
        },
        Message::SubmitBatch(BatchRequest::Queries {
            seed: 0,
            index_offset: u32::MAX as u64,
            algorithms: vec![
                SearchSpec::Flooding,
                SearchSpec::ProbabilisticFlooding { p: 0.25 },
                SearchSpec::MultipleRandomWalk { walkers: 4 },
            ],
            batch,
        }),
        Message::SubmitBatch(BatchRequest::SweepRange {
            seed: 0xDEAD_BEEF,
            start: 0,
            end: 0,
            searches_per_point: 0,
            ttls: Vec::new(),
            search: SearchSpec::NormalizedFlooding { k_min: None },
        }),
        Message::BatchResult {
            outcomes: vec![SearchOutcome::new(0, 0), SearchOutcome::new(9999, 123456)],
        },
        Message::Error {
            message: "worker 3 refused: wrong identity".to_string(),
        },
        Message::Overlay(OverlayMessage::Join {
            origin: PeerRef::new(17, "10.0.0.5:9200"),
            walks: 2,
        }),
        Message::Overlay(OverlayMessage::ForwardJoin {
            origin: PeerRef::new(17, "10.0.0.5:9200"),
            ttl: 8,
        }),
        Message::Overlay(OverlayMessage::Shuffle {
            from: PeerRef::new(2, "10.0.0.2:9200"),
            peers: vec![
                PeerRef::new(5, "10.0.0.5:9200"),
                PeerRef::new(6, "unix:/tmp/peer-6.sock"),
            ],
            reply: false,
        }),
        Message::Overlay(OverlayMessage::Probe {
            from: PeerRef::new(3, "10.0.0.3:9200"),
            nonce: u64::MAX,
            ack: true,
        }),
        Message::Overlay(OverlayMessage::Leave {
            from: PeerRef::new(4, "10.0.0.4:9200"),
        }),
        Message::LoadShard(sample_shard()),
        Message::ForwardFrontier {
            identity: 0xFEED_F00D_DEAD_BEEF,
            state: sample_frontier(),
        },
        Message::FrontierResult(FrontierResult::Done(SearchOutcome::new(12, 99))),
        Message::FrontierResult(FrontierResult::Continue(PlacedState {
            algorithm: PlacedAlgorithm::MultipleRandomWalk { walkers: 4 },
            walk_phase: true,
            current: 7,
            previous: 3,
            walker: 2,
            steps_done: 5,
            queue: Vec::new(),
            ..sample_frontier()
        })),
    ]
}

/// The three placed frame kinds, each with every variable-length section populated.
fn placed_messages() -> Vec<Message> {
    let mut messages = all_messages();
    messages.retain(|m| {
        matches!(
            m,
            Message::LoadShard(_) | Message::ForwardFrontier { .. } | Message::FrontierResult(_)
        )
    });
    assert_eq!(messages.len(), 4);
    messages
}

#[test]
fn every_message_round_trips_bit_exactly() {
    for message in all_messages() {
        let mut wire = Vec::new();
        send_message(&mut wire, &message).unwrap();
        let back = recv_message(&mut wire.as_slice()).unwrap();
        assert_eq!(back, message);
        // Encoding is deterministic: the same message produces the same bytes.
        let mut again = Vec::new();
        send_message(&mut again, &message).unwrap();
        assert_eq!(again, wire);
    }
}

#[test]
fn messages_stream_back_to_back() {
    let messages = all_messages();
    let mut wire = Vec::new();
    for message in &messages {
        send_message(&mut wire, message).unwrap();
    }
    let mut reader = wire.as_slice();
    for message in &messages {
        assert_eq!(&recv_message(&mut reader).unwrap(), message);
    }
    // The stream ends cleanly on a frame boundary.
    assert!(matches!(
        recv_message(&mut reader),
        Err(NetError::Truncated { section: "header" })
    ));
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = encode_frame(TYPE_HELLO, &[0u8; 32]);
    bytes[..4].copy_from_slice(b"HTTP");
    assert!(matches!(
        read_frame(&mut bytes.as_slice()),
        Err(NetError::BadMagic { found }) if &found == b"HTTP"
    ));
}

#[test]
fn unknown_versions_are_rejected_with_the_found_value() {
    let mut bytes = encode_frame(TYPE_ERROR, &{
        let mut p = Vec::new();
        p.extend_from_slice(&1u32.to_le_bytes());
        p.push(b'x');
        p
    });
    let future = PROTOCOL_VERSION + 41;
    bytes[4..6].copy_from_slice(&future.to_le_bytes());
    assert!(matches!(
        read_frame(&mut bytes.as_slice()),
        Err(NetError::UnsupportedVersion { found }) if found == future
    ));
}

#[test]
fn unknown_message_types_are_rejected() {
    let bytes = encode_frame(999, b"");
    let (message_type, payload) = read_frame(&mut bytes.as_slice()).unwrap();
    assert!(matches!(
        Message::decode(message_type, &payload),
        Err(NetError::UnknownFrameType { found: 999 })
    ));
}

#[test]
fn truncation_at_every_boundary_is_typed_never_a_panic() {
    let message = &all_messages()[2]; // the biggest payload: a Queries request
    let mut wire = Vec::new();
    send_message(&mut wire, message).unwrap();
    for cut in 0..wire.len() {
        let result = recv_message(&mut &wire[..cut]);
        assert!(
            matches!(result, Err(NetError::Truncated { .. })),
            "cut at {cut}: {result:?}"
        );
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    // The FNV trailer (or a structural check it guards) must catch any one-byte
    // corruption anywhere in the frame.
    let mut wire = Vec::new();
    send_message(
        &mut wire,
        &Message::BatchResult {
            outcomes: vec![SearchOutcome::new(3, 7); 5],
        },
    )
    .unwrap();
    for i in 0..wire.len() {
        for bit in [0x01u8, 0x80] {
            let mut corrupted = wire.clone();
            corrupted[i] ^= bit;
            assert!(
                recv_message(&mut corrupted.as_slice()).is_err(),
                "flip of bit {bit:#04x} at byte {i} went unnoticed"
            );
        }
    }
}

#[test]
fn oversized_declared_lengths_error_before_allocation() {
    // Declares 4 GiB with a 12-byte header and nothing behind it. If the reader tried
    // to allocate first, this test would OOM rather than fail an assertion.
    let mut header = Vec::with_capacity(FRAME_HEADER_LEN);
    header.extend_from_slice(b"SFNF");
    header.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&TYPE_ERROR.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        read_frame(&mut header.as_slice()),
        Err(NetError::Oversized { declared, max })
            if declared == u64::from(u32::MAX) && max == u64::from(MAX_PAYLOAD_LEN)
    ));
    // One past the limit is rejected; the limit itself is the boundary of acceptance.
    let mut header_over = header.clone();
    header_over[8..12].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
    assert!(matches!(
        read_frame(&mut header_over.as_slice()),
        Err(NetError::Oversized { .. })
    ));
}

#[test]
fn inner_counts_lying_about_the_payload_are_bounded_before_allocation() {
    // A BatchResult whose count field claims ~4 billion outcomes (64 GiB of records)
    // inside a 4-byte payload.
    let payload = u32::MAX.to_le_bytes();
    assert!(matches!(
        Message::decode(TYPE_BATCH_RESULT, &payload),
        Err(NetError::Truncated { .. })
    ));

    // A sweep request whose TTL count lies the same way.
    let mut payload = vec![1u8];
    for _ in 0..4 {
        payload.extend_from_slice(&0u64.to_le_bytes());
    }
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Message::decode(TYPE_SUBMIT_BATCH, &payload),
        Err(NetError::Truncated { .. })
    ));
}

#[test]
fn overlay_frame_corruption_rows_are_typed() {
    // A shuffle whose peer count lies about the payload is bounded before allocation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u64.to_le_bytes());
    payload.extend_from_slice(&4u32.to_le_bytes());
    payload.extend_from_slice(b"a:99");
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Message::decode(TYPE_SHUFFLE, &payload),
        Err(NetError::Truncated { .. })
    ));

    // A probe whose ack flag is neither 0 nor 1 is corrupt, and truncation anywhere
    // inside an overlay frame stays a typed error.
    let message = Message::Overlay(OverlayMessage::Probe {
        from: PeerRef::new(3, "10.0.0.3:9200"),
        nonce: 11,
        ack: false,
    });
    let (frame_type, mut payload) = message.encode();
    *payload.last_mut().unwrap() = 7;
    assert!(matches!(
        Message::decode(frame_type, &payload),
        Err(NetError::Corrupt { .. })
    ));
    let mut wire = Vec::new();
    send_message(&mut wire, &message).unwrap();
    for cut in 0..wire.len() {
        assert!(matches!(
            recv_message(&mut &wire[..cut]),
            Err(NetError::Truncated { .. })
        ));
    }
}

#[test]
fn trailing_payload_bytes_are_corrupt() {
    let (message_type, mut payload) = Message::LoadSnapshot {
        path: "x.sfos".to_string(),
    }
    .encode();
    payload.extend_from_slice(b"extra");
    assert!(matches!(
        Message::decode(message_type, &payload),
        Err(NetError::Corrupt { .. })
    ));
}

#[test]
fn invalid_utf8_and_malformed_specs_are_corrupt() {
    // A LoadSnapshot whose path bytes are not UTF-8.
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]);
    assert!(matches!(
        Message::decode(sfoverlay::net::message::TYPE_LOAD_SNAPSHOT, &payload),
        Err(NetError::Corrupt { .. })
    ));

    // A sweep request naming an algorithm this build has never heard of.
    let (message_type, payload) = Message::SubmitBatch(BatchRequest::SweepRange {
        seed: 1,
        start: 0,
        end: 1,
        searches_per_point: 1,
        ttls: vec![1],
        search: SearchSpec::Flooding,
    })
    .encode();
    let good = String::from_utf8_lossy(&payload).into_owned();
    assert!(good.contains("flooding"));
    let bad = payload
        .windows("flooding".len())
        .position(|w| w == b"flooding")
        .map(|at| {
            let mut p = payload.clone();
            p[at..at + 8].copy_from_slice(b"floodxng");
            p
        })
        .expect("the encoded spec names its algorithm");
    assert!(matches!(
        Message::decode(message_type, &bad),
        Err(NetError::Corrupt { .. })
    ));
}

#[test]
fn placed_frames_detect_every_single_bit_flip() {
    // The FNV trailer (or a structural check it guards) must catch any one-byte
    // corruption in a LoadShard, ForwardFrontier, or FrontierResult frame.
    for message in placed_messages() {
        let mut wire = Vec::new();
        send_message(&mut wire, &message).unwrap();
        for i in 0..wire.len() {
            for bit in [0x01u8, 0x80] {
                let mut corrupted = wire.clone();
                corrupted[i] ^= bit;
                assert!(
                    recv_message(&mut corrupted.as_slice()).is_err(),
                    "{message:?}: flip of bit {bit:#04x} at byte {i} went unnoticed"
                );
            }
        }
    }
}

#[test]
fn placed_frames_truncated_at_every_boundary_are_typed_never_a_panic() {
    for message in placed_messages() {
        let mut wire = Vec::new();
        send_message(&mut wire, &message).unwrap();
        for cut in 0..wire.len() {
            let result = recv_message(&mut &wire[..cut]);
            assert!(
                matches!(result, Err(NetError::Truncated { .. })),
                "{message:?}: cut at {cut}: {result:?}"
            );
        }
    }
}

#[test]
fn lying_frontier_lengths_are_bounded_before_allocation() {
    // The frontier's fixed prefix: identity(8) + algorithm tag+param(9) + phase(1)
    // + source/ttl(8) + hits/messages(16) + current/previous/walker/steps(16)
    // + rng(32) = 90 bytes; the visited count is the u32 right after it.
    let (frame_type, payload) = Message::ForwardFrontier {
        identity: 1,
        state: sample_frontier(),
    }
    .encode();
    let visited_count_at = 90;
    assert_eq!(
        &payload[visited_count_at..visited_count_at + 4],
        &2u32.to_le_bytes()
    );
    let mut lying = payload.clone();
    lying[visited_count_at..visited_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &lying),
        Err(NetError::Truncated { .. })
    ));

    // A queue count claiming u32::MAX (48 GiB of records) in a tiny payload. With no
    // visited records, the queue count sits right after the (zero) visited count.
    let mut state = sample_frontier();
    state.visited.clear();
    let (frame_type, payload) = Message::ForwardFrontier { identity: 1, state }.encode();
    let queue_count_at = visited_count_at + 4;
    assert_eq!(
        &payload[queue_count_at..queue_count_at + 4],
        &2u32.to_le_bytes()
    );
    let mut lying = payload.clone();
    lying[queue_count_at..queue_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &lying),
        Err(NetError::Truncated { .. })
    ));

    // A FrontierResult::Continue is the same state encoding behind a 1-byte tag.
    let (frame_type, payload) =
        Message::FrontierResult(FrontierResult::Continue(sample_frontier())).encode();
    let count_at = 1 + visited_count_at - 8; // tag replaces the identity prefix
    assert_eq!(&payload[count_at..count_at + 4], &2u32.to_le_bytes());
    let mut lying = payload.clone();
    lying[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &lying),
        Err(NetError::Truncated { .. })
    ));
}

#[test]
fn lying_shard_lengths_and_indices_are_bounded_before_allocation() {
    let (frame_type, payload) = Message::LoadShard(sample_shard()).encode();

    // Shard 1 of 3 over 10 nodes is rows 4..7: 4 rebased offsets follow the 48-byte
    // fixed prefix (identity 8 + node/edge counts 16 + index/count 8 + range 16), and
    // the target count is the u32 after them. Claiming u32::MAX targets (16 GiB) in
    // this payload must fail on the record bound, not allocate.
    let target_count_at = 48 + 4 * 4;
    let mut lying = payload.clone();
    lying[target_count_at..target_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &lying),
        Err(NetError::Truncated { .. })
    ));

    // The shard index is bytes 24..28. An index outside the partition is corrupt...
    assert_eq!(&payload[24..28], &1u32.to_le_bytes());
    let mut wild = payload.clone();
    wild[24..28].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &wild),
        Err(NetError::Corrupt { .. })
    ));
    // ... and so is an in-range index whose rows are not its canonical range: the
    // shipped range 4..7 is shard 1's, never shard 2's.
    let mut misplaced = payload.clone();
    misplaced[24..28].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &misplaced),
        Err(NetError::Corrupt { .. })
    ));
    // A zero shard count is not a placement at all.
    let mut empty = payload.clone();
    empty[28..32].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Message::decode(frame_type, &empty),
        Err(NetError::Corrupt { .. })
    ));
}

#[test]
fn a_pinned_worker_refuses_a_load_shard_for_the_wrong_snapshot() {
    use sfoverlay::graph::snapshot::read_identity;
    use sfoverlay::net::placed::shard_payload;
    use sfoverlay::prelude::{Provenance, ServeConfig, SnapshotFile, WorkerClient, WorkerServer};

    let dir = std::env::temp_dir().join(format!("sfo-frames-loadshard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ring.sfos");
    SnapshotFile {
        csr: ring_graph(30, 2).unwrap().freeze(),
        shards: None,
        provenance: Some(Provenance {
            label: "frames-loadshard".to_string(),
            m: 2,
            cutoff: None,
            seed: 7,
            realization: 0,
            sweep_seed: 11,
            origin: None,
        }),
    }
    .save(&path)
    .unwrap();
    let path = path.to_string_lossy().into_owned();

    let server = WorkerServer::bind(&ServeConfig {
        snapshot_path: path.clone(),
        listen: "127.0.0.1:0".to_string(),
        engine_workers: 1,
        shard_count: 3,
        shard_index: Some(1),
        mmap: false,
        queue_bound: 0,
    })
    .unwrap();
    let handle = server.spawn();

    let identity = read_identity(&path).unwrap();
    let csr = SnapshotFile::load(&path).unwrap().csr;
    let mut client = WorkerClient::connect(handle.addr()).unwrap();
    assert_eq!(client.hello().shard_index, 1);

    // The exact rows the server already holds, but stamped with a foreign identity:
    // a pinned worker must refuse rather than silently serve a different realization.
    let foreign = shard_payload(&csr, identity ^ 0xBAD, 3, 1);
    let refused = client.load_shard(foreign);
    assert!(
        matches!(&refused, Err(NetError::Remote { message }) if message.contains("refusing")),
        "{refused:?}"
    );
    // The wrong slot of the right snapshot is refused the same way.
    let misplaced = shard_payload(&csr, identity, 3, 0);
    assert!(matches!(
        client.load_shard(misplaced),
        Err(NetError::Remote { .. })
    ));
    // The connection survives both refusals, and the exact coordinates are accepted.
    let accepted = client
        .load_shard(shard_payload(&csr, identity, 3, 1))
        .unwrap();
    assert_eq!(accepted.shard_index, 1);
    assert_eq!(accepted.shard_count, 3);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
