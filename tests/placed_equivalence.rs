//! Placed-vs-local byte identity: the headline invariant of real shard placement.
//!
//! A placed run splits the *topology* (worker `i` holds only shard `i`'s rows) rather
//! than the job grid, and searches hop between hosts as `ForwardFrontier` frames
//! whenever their frontier leaves the rows the current host owns. Because a forwarded
//! frontier carries the search's exact serial state — visited delta, queue, raw RNG
//! words — cross-host traversal is a pure partition of the serial oracle's work, and
//! the `ScenarioReport.result` must be byte-identical to the single-host run *and* to
//! the whole-snapshot remote path, for any shard count, placement, and interleaving.
//! These tests pin that, plus the failure path when a shard host dies mid-batch and
//! the `sfo-obs` accounting identity tying forwarded traffic to `boundary_fraction()`.

use sfoverlay::net::frame::encode_frame;
use sfoverlay::net::message::{recv_message, send_message, Hello, Message, WHOLE_SNAPSHOT};
use sfoverlay::net::{NetListener, ServeConfig, WorkerServer};
use sfoverlay::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfo-placed-eq-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds and saves a small snapshot of the given topology; returns its path and the
/// build spec.
fn build_fixture(
    dir: &std::path::Path,
    name: &str,
    topology: TopologySpec,
    seed: u64,
) -> (String, ScenarioSpec) {
    let mut spec = ScenarioSpec::sweep(
        format!("placed-eq-{name}"),
        topology,
        SearchSpec::Flooding,
        SweepSpec::single(vec![1, 2, 3, 5], 9),
        seed,
        1,
    );
    spec.sweep.as_mut().unwrap().batch = true;
    let path = dir.join(format!("{name}.sfos"));
    build_snapshot(&spec, 0).unwrap().save(&path).unwrap();
    (path.display().to_string(), spec)
}

/// Spawns `count` placed workers over the snapshot. When `pinned`, worker `i` is
/// started with `--shard i` and extracts its slice from the file; otherwise the
/// workers come up whole-snapshot and the dispatcher ships each its `LoadShard`.
fn spawn_placed_workers(
    snapshot_path: &str,
    count: usize,
    pinned: bool,
) -> (Vec<sfoverlay::net::WorkerServerHandle>, Vec<String>) {
    let mut handles = Vec::with_capacity(count);
    let mut addrs = Vec::with_capacity(count);
    for w in 0..count {
        let server = WorkerServer::bind(&ServeConfig {
            snapshot_path: snapshot_path.to_string(),
            listen: "127.0.0.1:0".to_string(),
            engine_workers: 1,
            shard_count: if pinned { count } else { 1 + w },
            shard_index: pinned.then_some(w),
            mmap: w % 2 == 1, // a mix of mapped and read stores
            queue_bound: 0,
        })
        .unwrap();
        addrs.push(server.local_addr());
        handles.push(server.spawn());
    }
    (handles, addrs)
}

/// The snapshot-backed spec pointing at `path`, with the given worker list and
/// placement mode.
fn snapshot_spec(
    base: &ScenarioSpec,
    path: &str,
    workers: Vec<String>,
    placed: bool,
) -> ScenarioSpec {
    let mut spec = base.clone();
    spec.topology = Some(TopologySpec::Snapshot {
        path: path.to_string(),
    });
    let sweep = spec.sweep.as_mut().unwrap();
    sweep.workers = workers;
    sweep.placed = placed;
    spec
}

/// The full matrix: 1/2/4/7-shard placed runs across UCM, HAPA, and capped-PA overlay
/// topologies, byte-diffed against the serial oracle and the whole-snapshot remote
/// path.
#[test]
fn placed_shard_sweeps_equal_the_serial_oracle_and_the_remote_path() {
    let dir = scratch("matrix");
    let fixtures = [
        (
            "ucm",
            TopologySpec::Ucm {
                nodes: 300,
                gamma: 2.5,
                m: 2,
                cutoff: Some(17),
            },
            31,
        ),
        (
            "hapa",
            TopologySpec::Hapa {
                nodes: 300,
                m: 2,
                cutoff: Some(10),
            },
            47,
        ),
        (
            "overlay",
            TopologySpec::Pa {
                nodes: 300,
                m: 2,
                cutoff: Some(12),
            },
            77,
        ),
    ];
    for (name, topology, seed) in fixtures {
        let (path, base) = build_fixture(&dir, name, topology, seed);
        // The serial oracle: the same snapshot swept in this process.
        let local = remote_runner()
            .run(&snapshot_spec(&base, &path, Vec::new(), false))
            .unwrap();
        // The whole-snapshot remote path: one worker holding every row.
        let (handles, addrs) = spawn_placed_workers(&path, 1, false);
        let remote = remote_runner()
            .run(&snapshot_spec(&base, &path, addrs, false))
            .unwrap();
        assert_eq!(remote.result, local.result, "{name}: remote path diverged");
        for handle in handles {
            handle.stop();
        }

        for shard_count in [1usize, 2, 4, 7] {
            // Dispatcher-shipped shards on even counts, `--shard`-pinned on odd ones:
            // the placement mechanism must be invisible in the bytes.
            let pinned = shard_count % 2 == 1;
            let (handles, addrs) = spawn_placed_workers(&path, shard_count, pinned);
            let report = remote_runner()
                .run(&snapshot_spec(&base, &path, addrs, true))
                .unwrap();
            assert_eq!(
                report.result, local.result,
                "{name}: {shard_count} placed shards diverged from the serial oracle"
            );
            assert_eq!(
                sfoverlay::scenario::report::ScenarioReport {
                    spec: local.spec.clone(),
                    result: report.result.clone(),
                }
                .to_json_string(),
                local.to_json_string(),
                "{name}: {shard_count} shards: JSON bytes diverged"
            );
            for handle in handles {
                handle.stop();
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rw_normalized_and_walk_sweeps_forward_walker_state_byte_identically() {
    // Walks are the stream-sensitive shape: the walker's position, step budget, and
    // raw RNG words all travel inside the forwarded frontier. The two-phase
    // normalized-walk job (NF then budgeted RW on one stream) additionally crosses
    // the phase boundary mid-placement.
    let dir = scratch("walks");
    let (path, base) = build_fixture(
        &dir,
        "walks",
        TopologySpec::Pa {
            nodes: 300,
            m: 2,
            cutoff: Some(12),
        },
        19,
    );
    for (name, search) in [
        (
            "rw-normalized",
            SearchSpec::RwNormalizedToNf { k_min: None },
        ),
        ("random-walk", SearchSpec::RandomWalk),
        ("mrw", SearchSpec::MultipleRandomWalk { walkers: 3 }),
    ] {
        let mut base = base.clone();
        base.search = Some(search);
        let local = remote_runner()
            .run(&snapshot_spec(&base, &path, Vec::new(), false))
            .unwrap();
        let (handles, addrs) = spawn_placed_workers(&path, 3, true);
        let report = remote_runner()
            .run(&snapshot_spec(&base, &path, addrs, true))
            .unwrap();
        assert_eq!(
            report.result, local.result,
            "{name} diverged under placement"
        );
        for handle in handles {
            handle.stop();
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A placed shard host that completes the handshake, then closes the connection on
/// the first frontier it is asked to serve — a worker dying mid-batch.
fn doomed_shard_host(
    identity: u64,
    node_count: u64,
    edge_count: u64,
    shard_index: u32,
    shard_count: u32,
) -> (String, Arc<AtomicBool>) {
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    let died_mid_batch = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&died_mid_batch);
    std::thread::spawn(move || {
        // Serve every connection the dispatcher opens (handshake, then one per
        // dispatch thread), dying on the first forwarded frontier.
        while let Ok(mut stream) = listener.accept() {
            let hello = Message::Hello(Hello {
                identity,
                node_count,
                edge_count,
                shard_count,
                engine_workers: 1,
                shard_index,
            });
            if send_message(&mut stream, &hello).is_err() {
                return;
            }
            match recv_message(&mut stream) {
                Ok(Message::ForwardFrontier { .. }) => {
                    // Drop the stream mid-request: the host is gone.
                    flag.store(true, Ordering::SeqCst);
                }
                Ok(_) => return,
                Err(_) => {}
            }
        }
    });
    (addr, died_mid_batch)
}

#[test]
fn a_worker_dying_mid_batch_is_a_typed_error_not_a_wrong_report() {
    let dir = scratch("death");
    let (path, base) = build_fixture(
        &dir,
        "death",
        TopologySpec::Pa {
            nodes: 300,
            m: 2,
            cutoff: Some(12),
        },
        55,
    );
    let file = SnapshotFile::load(&path).unwrap();
    let identity = sfoverlay::graph::snapshot::read_identity(&path).unwrap();

    // Shard 0 is a real pinned worker; shard 1 answers its handshake and then dies
    // on the first frontier routed to it. Every full flood crosses the boundary, so
    // the death is guaranteed to land mid-batch.
    let (handles, mut addrs) = spawn_placed_workers(&path, 2, true);
    let (doomed_addr, died_mid_batch) = doomed_shard_host(
        identity,
        file.csr.node_count() as u64,
        file.csr.edge_count() as u64,
        1,
        2,
    );
    addrs.truncate(1);
    addrs.push(doomed_addr);

    let err = remote_runner()
        .run(&snapshot_spec(&base, &path, addrs, true))
        .unwrap_err();
    assert!(
        died_mid_batch.load(Ordering::SeqCst),
        "the doomed host never saw a frontier: the test exercised the wrong path"
    );
    let message = err.to_string();
    assert!(
        !message.is_empty(),
        "a dead shard host must surface as a typed error"
    );
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn placed_dispatch_refuses_a_worker_holding_the_wrong_shard() {
    let dir = scratch("refusal");
    let (path, base) = build_fixture(
        &dir,
        "refusal",
        TopologySpec::Pa {
            nodes: 300,
            m: 2,
            cutoff: Some(12),
        },
        13,
    );
    // Two workers both pinned to shard 0 of 2: the second one is in the wrong slot.
    let spawn_pinned = |index: usize| {
        let server = WorkerServer::bind(&ServeConfig {
            snapshot_path: path.clone(),
            listen: "127.0.0.1:0".to_string(),
            engine_workers: 1,
            shard_count: 2,
            shard_index: Some(index),
            mmap: false,
            queue_bound: 0,
        })
        .unwrap();
        let addr = server.local_addr();
        (server.spawn(), addr)
    };
    let (handle_a, addr_a) = spawn_pinned(0);
    let (handle_b, addr_b) = spawn_pinned(0);
    let err = remote_runner()
        .run(&snapshot_spec(&base, &path, vec![addr_a, addr_b], true))
        .unwrap_err();
    assert!(
        err.to_string().contains("shard"),
        "unhelpful refusal: {err}"
    );
    handle_a.stop();
    handle_b.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn boundary_fraction_equals_the_forwarded_frontier_traffic_fraction() {
    // Property-style accounting identity, seeded: on full floods (TTL covering the
    // whole component), every directed adjacency entry of a reached node is scanned
    // exactly once, and the cross-shard ones are exactly the boundary entries — so
    // summed over any number of jobs, the workers' `sfo-obs` counters satisfy
    // `entries_cross / entries_scanned == boundary_fraction()` as exact integers.
    let dir = scratch("fraction");
    let (path, base) = build_fixture(
        &dir,
        "fraction",
        TopologySpec::Pa {
            nodes: 250,
            m: 2, // PA with m >= 2 from a seed clique is connected by construction
            cutoff: Some(12),
        },
        91,
    );
    let csr = SnapshotFile::load(&path).unwrap().csr;
    for shard_count in [2usize, 3, 5] {
        let sharded = ShardedCsr::from_csr(&csr, shard_count);
        let cross_edges = {
            // boundary_fraction() is cross-shard undirected edges over all edges.
            let fraction = sharded.boundary_fraction();
            let cross = (fraction * sharded.edge_count() as f64).round() as u64;
            assert!(fraction > 0.0, "a {shard_count}-shard split must cut edges");
            cross
        };

        let mut spec = base.clone();
        // One TTL far beyond the diameter: every flood reaches every node.
        spec.sweep.as_mut().unwrap().ttls = vec![64];
        spec.sweep.as_mut().unwrap().searches_per_point = 6;
        let (handles, addrs) = spawn_placed_workers(&path, shard_count, true);
        let report = remote_runner()
            .run(&snapshot_spec(&spec, &path, addrs.clone(), true))
            .unwrap();

        // Poll every worker's counters over the wire, as `sfo stats` would.
        let (mut scanned, mut cross, mut served, mut forwarded) = (0u64, 0u64, 0u64, 0u64);
        for addr in &addrs {
            let stats = WorkerClient::connect(addr).unwrap().stats().unwrap();
            scanned += stats
                .counter("placed.frontier_entries_scanned")
                .unwrap_or(0);
            cross += stats.counter("placed.frontier_entries_cross").unwrap_or(0);
            served += stats.counter("placed.frontiers_served").unwrap_or(0);
            forwarded += stats.counter("placed.frontiers_forwarded").unwrap_or(0);
        }
        let jobs = 6u64;
        assert_eq!(
            scanned,
            jobs * 2 * csr.edge_count() as u64,
            "{shard_count} shards: full floods scan every directed entry once"
        );
        assert_eq!(
            cross,
            jobs * 2 * cross_edges,
            "{shard_count} shards: cross entries are exactly the boundary entries"
        );
        // The integer identity the float is derived from: cross/scanned == B/E.
        assert_eq!(
            cross * csr.edge_count() as u64,
            scanned * cross_edges,
            "{shard_count} shards: traffic fraction != boundary_fraction()"
        );
        assert_eq!(
            cross as f64 / scanned as f64,
            sharded.boundary_fraction(),
            "{shard_count} shards: float fractions diverged"
        );
        // Every hop either finished or was forwarded onward, and forwarding really
        // happened: a cut topology cannot be flooded from one host.
        assert!(
            served >= jobs && forwarded > 0,
            "served {served}, forwarded {forwarded}"
        );
        // And the accounting never perturbed the result.
        let local = remote_runner()
            .run(&snapshot_spec(&spec, &path, Vec::new(), false))
            .unwrap();
        assert_eq!(report.result, local.result);
        for handle in handles {
            handle.stop();
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn placed_specs_validate_their_worker_list() {
    // `"placed": true` with no workers is a spec error, caught before any dialing.
    let dir = scratch("validate");
    let (path, base) = build_fixture(
        &dir,
        "validate",
        TopologySpec::Pa {
            nodes: 120,
            m: 2,
            cutoff: Some(10),
        },
        7,
    );
    let spec = snapshot_spec(&base, &path, Vec::new(), true);
    let err = spec.validate().unwrap_err();
    assert!(
        err.to_string().contains("workers"),
        "unhelpful validation: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn whole_snapshot_workers_on_odd_frames_stay_typed() {
    // A placed worker handed garbage between frontier hops keeps its framing: the
    // dispatcher's view of a shard host is only as good as the codec underneath.
    let dir = scratch("framing");
    let (path, _) = build_fixture(
        &dir,
        "framing",
        TopologySpec::Pa {
            nodes: 120,
            m: 2,
            cutoff: Some(10),
        },
        3,
    );
    let (handles, addrs) = spawn_placed_workers(&path, 2, true);
    let mut stream = sfoverlay::net::NetStream::connect(&addrs[0]).unwrap();
    let Message::Hello(hello) = recv_message(&mut stream).unwrap() else {
        panic!("expected a Hello");
    };
    assert_eq!(hello.shard_index, 0);
    assert_ne!(hello.shard_index, WHOLE_SNAPSHOT);
    // An unknown frame type is a full checksummed frame: survivable, answered.
    use std::io::Write as _;
    stream.write_all(&encode_frame(999, b"")).unwrap();
    stream.flush().unwrap();
    assert!(matches!(
        recv_message(&mut stream).unwrap(),
        Message::Error { .. }
    ));
    for handle in handles {
        handle.stop();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
