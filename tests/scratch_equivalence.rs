//! Contract tests of the hot-path scratch arenas and the zero-copy snapshot loads:
//! reusing a dirty [`SearchScratch`] must be byte-identical to allocating fresh for
//! every algorithm, every job order, every worker count, and every shard count — and a
//! memory-mapped snapshot must be indistinguishable from a read one all the way up to
//! the `ScenarioReport`.
//!
//! The arena is pure memory reuse: each algorithm resets the state it uses on entry,
//! so the visited marks and frontier values it observes — and therefore its RNG draws
//! — are the same whether the buffers are freshly zeroed or left dirty by an earlier
//! search of a different algorithm on a different graph. Any divergence here would
//! silently corrupt sweep results, because `sfo-engine` hands every pool worker one
//! arena reused across all its jobs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfoverlay::engine::{run_queries, run_queries_serial, AlgorithmTable, QueryBatch, ShardedCsr};
use sfoverlay::graph::CsrGraph;
use sfoverlay::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The seven search algorithms of the workspace, boxed for the backend `G`.
type NamedAlgorithms<G> = Vec<(&'static str, Box<dyn SearchAlgorithm<G> + Send + Sync>)>;

fn algorithms<G: GraphView + ?Sized>() -> NamedAlgorithms<G> {
    vec![
        ("FL", Box::new(Flooding::new())),
        ("NF", Box::new(NormalizedFlooding::new(2))),
        ("RW", Box::new(RandomWalk::new())),
        ("multi-RW", Box::new(MultipleRandomWalk::new(4))),
        ("HD-RW", Box::new(DegreeBiasedWalk::new())),
        ("pFL", Box::new(ProbabilisticFlooding::new(0.5))),
        ("ER", Box::new(ExpandingRing::new(1, 2))),
    ]
}

/// A capped-PA realization of `nodes` peers, frozen to CSR.
fn pa_csr(nodes: usize, seed: u64) -> CsrGraph {
    PreferentialAttachment::new(nodes, 2)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(15))
        .generate(&mut rng(seed))
        .unwrap()
        .freeze()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfo-scratch-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One arena, threaded dirty through every algorithm on graphs of different sizes:
/// every `search_with_scratch` outcome is byte-identical to the fresh-allocation
/// `search` at the same seed, no matter what the previous search left behind.
#[test]
fn dirty_arena_reuse_is_byte_identical_for_every_algorithm() {
    // Shrinking then growing node counts exercise both the lazily-cleared bitset
    // epochs and the buffer growth path.
    let graphs: Vec<CsrGraph> = [500usize, 120, 800]
        .iter()
        .enumerate()
        .map(|(i, &n)| pa_csr(n, 40 + i as u64))
        .collect();
    let algorithms = algorithms::<CsrGraph>();
    let mut arena = SearchScratch::new();
    let mut input = rng(0xD1FF);
    for round in 0..6 {
        for graph in &graphs {
            let source = NodeId::new(input.gen_range(0..graph.node_count()));
            let ttl: u32 = input.gen_range(1..8);
            let seed: u64 = input.gen_range(0..10_000);
            for (name, algorithm) in &algorithms {
                let fresh = algorithm.search(graph, source, ttl, &mut rng(seed));
                let reused =
                    algorithm.search_with_scratch(graph, source, ttl, &mut rng(seed), &mut arena);
                assert_eq!(
                    reused,
                    fresh,
                    "round {round}: {name} diverged on a dirty arena \
                     ({} nodes, source {source}, ttl {ttl})",
                    graph.node_count()
                );
            }
        }
    }
}

/// The default `search_with_scratch` (no override) must also hold the contract: an
/// external `SearchAlgorithm` impl that ignores the arena stays correct.
#[test]
fn default_search_with_scratch_matches_search() {
    struct FixedProbe;
    impl sfoverlay::search::SearchInfo for FixedProbe {
        fn name(&self) -> &'static str {
            "probe"
        }
    }
    impl SearchAlgorithm<CsrGraph> for FixedProbe {
        fn search(
            &self,
            graph: &CsrGraph,
            source: NodeId,
            ttl: u32,
            rng: &mut dyn rand::RngCore,
        ) -> SearchOutcome {
            let draws = rng.next_u64() as usize % (ttl as usize + 1);
            SearchOutcome::new(graph.degree(source), draws)
        }
    }
    let graph = pa_csr(200, 7);
    let mut arena = SearchScratch::new();
    let fresh = FixedProbe.search(&graph, NodeId::new(3), 5, &mut rng(11));
    let reused =
        FixedProbe.search_with_scratch(&graph, NodeId::new(3), 5, &mut rng(11), &mut arena);
    assert_eq!(reused, fresh);
}

/// Pooled execution — where every worker owns one arena reused across all its jobs and
/// batches — equals the serial reference for every worker count, shard count, and job
/// order, including repeated submissions that hit the pool with arenas left dirty by
/// earlier batches.
#[test]
fn pooled_arenas_are_invariant_across_job_orders_workers_and_shards() {
    let csr = pa_csr(600, 99);
    let seed = 4242u64;

    let plain_table: AlgorithmTable<CsrGraph> = algorithms::<CsrGraph>()
        .into_iter()
        .map(|(_, a)| a)
        .collect();
    let sharded_table: Arc<AlgorithmTable<ShardedCsr>> = Arc::new(
        algorithms::<ShardedCsr>()
            .into_iter()
            .map(|(_, a)| a)
            .collect(),
    );

    // Two batches over the same grid of jobs in different orders. Each job keys its
    // RNG stream by its index, so the *outcomes* differ between orders — but for any
    // fixed order, pooled execution must equal the serial oracle.
    let mut input = rng(0xBA7C);
    let jobs: Vec<(NodeId, usize, u32)> = (0..70)
        .map(|i| {
            (
                NodeId::new(input.gen_range(0..csr.node_count())),
                i % plain_table.len(),
                input.gen_range(1..6),
            )
        })
        .collect();
    let mut reversed = jobs.clone();
    reversed.reverse();

    for (order, job_list) in [("forward", &jobs), ("reversed", &reversed)] {
        let mut batch = QueryBatch::new();
        for &(source, algorithm, ttl) in job_list {
            batch.push(source, algorithm, ttl);
        }
        let reference = run_queries_serial(&csr, &plain_table, &batch, seed);
        for shards in [1usize, 3, 5] {
            let sharded = Arc::new(ShardedCsr::from_csr(&csr, shards));
            for workers in [1usize, 2, 4] {
                let pool = WorkerPool::new(EngineConfig::with_workers(workers));
                // Same pool, same batch, twice: the second run starts with every
                // worker's arena dirty from the first.
                for repeat in 0..2 {
                    let pooled = run_queries(&pool, &sharded, &sharded_table, &batch, seed);
                    assert_eq!(
                        pooled, reference,
                        "{order} order diverged at {shards} shards / {workers} workers \
                         (repeat {repeat})"
                    );
                }
            }
        }
    }
}

/// The inline scenario the mmap tests build their snapshot from.
fn inline_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::sweep(
        "scratch-mmap-it",
        TopologySpec::Pa {
            nodes: 600,
            m: 2,
            cutoff: Some(12),
        },
        SearchSpec::NormalizedFlooding { k_min: None },
        SweepSpec::single(vec![1, 2, 4], 12),
        555,
        1,
    );
    let sweep = spec.sweep.as_mut().unwrap();
    sweep.batch = true;
    sweep.shard_count = 3;
    spec
}

/// `inline_spec` with its topology swapped for the snapshot at `path`.
fn snapshot_spec(base: &ScenarioSpec, path: &Path) -> ScenarioSpec {
    let mut spec = base.clone();
    spec.topology = Some(TopologySpec::Snapshot {
        path: path.to_string_lossy().into_owned(),
    });
    spec
}

/// A memory-mapped snapshot is indistinguishable from a read one at every layer: the
/// graph, the sharded store, and the full `ScenarioReport` (sweep and degree runs).
#[test]
fn mmap_loads_are_byte_identical_to_read_loads_up_to_the_report() {
    let base = inline_spec();
    let path = temp_path("mmap-identity.sfos");
    build_snapshot(&base, 3).unwrap().save(&path).unwrap();

    // Graph and store layers: semantic equality between the two load paths.
    assert_eq!(
        CsrGraph::load_mmap(&path).unwrap(),
        CsrGraph::load(&path).unwrap()
    );
    assert_eq!(
        ShardedCsr::load_mmap(&path).unwrap(),
        ShardedCsr::load(&path).unwrap()
    );

    // Scenario layer: byte-identical reports, serialized form included.
    let spec = snapshot_spec(&base, &path);
    let read_report = ScenarioRunner::new().run(&spec).unwrap();
    let mapped_report = ScenarioRunner::new().with_mmap(true).run(&spec).unwrap();
    assert_eq!(mapped_report.result, read_report.result);
    assert_eq!(mapped_report.to_json_string(), read_report.to_json_string());

    // Degree-distribution runs read the same arrays through the mapping too.
    let mut degree_base = base.clone();
    degree_base.search = None;
    degree_base.sweep = None;
    degree_base.measure = MeasureSpec::DegreeDistribution { bins_per_decade: 8 };
    let degree_path = temp_path("mmap-degree.sfos");
    build_snapshot(&degree_base, 0)
        .unwrap()
        .save(&degree_path)
        .unwrap();
    let degree_spec = snapshot_spec(&degree_base, &degree_path);
    let read_degrees = ScenarioRunner::new().run(&degree_spec).unwrap();
    let mapped_degrees = ScenarioRunner::new()
        .with_mmap(true)
        .run(&degree_spec)
        .unwrap();
    assert_eq!(mapped_degrees.result, read_degrees.result);

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&degree_path).unwrap();
}
