//! End-to-end checks of the live membership protocol at scale (N = 10^3): the
//! emergent topology respects the hard cutoff *exactly*, its log-binned degree
//! distribution tracks the capped-PA generator the paper builds on, and one seed
//! replays the whole growth byte-for-byte — including the sweep reports measured on
//! the grown snapshot.

use rand::SeedableRng;
use sfoverlay::analysis::log_binned_distribution;
use sfoverlay::prelude::*;

/// A growth-focused live configuration at N = 10^3: everyone arrives two ticks
/// apart, sessions outlast the run (nobody leaves), and the overlay settles before
/// it is frozen.
fn thousand_peers(k_c: usize) -> LiveConfig {
    let mut config = LiveConfig::small();
    config.peers = 1_000;
    config.protocol.active_cap = k_c;
    config
}

#[test]
fn emergent_degrees_respect_the_hard_cutoff_exactly() {
    let config = thousand_peers(8);
    let outcome = grow(&config, 7).unwrap();
    assert_eq!(outcome.stats.arrivals, 1_000);
    assert_eq!(outcome.stats.final_peers, 1_000);

    let frozen = outcome.graph.freeze();
    let degrees = GraphView::degrees(&frozen);
    assert_eq!(degrees.len(), 1_000);
    let max = degrees.iter().copied().max().unwrap();
    assert!(max <= 8, "emergent degree {max} exceeds k_c = 8");
    assert_eq!(max, 8, "at N = 1000 the cutoff should be binding");
    assert_eq!(outcome.stats.max_degree, max);
}

#[test]
fn emergent_distribution_tracks_the_capped_pa_generator() {
    let k_c = 20;
    let outcome = grow(&thousand_peers(k_c), 11).unwrap();
    let live_degrees = GraphView::degrees(&outcome.graph.freeze());

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let generated = PreferentialAttachment::new(1_000, 2)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(k_c))
        .generate(&mut rng)
        .unwrap();
    let pa_degrees = GraphView::degrees(&generated);

    // Both distributions bind the cap and nothing escapes it.
    assert!(live_degrees.iter().all(|&k| k <= k_c));
    assert_eq!(live_degrees.iter().max(), Some(&k_c));
    assert_eq!(pa_degrees.iter().max(), Some(&k_c));

    // The first moment agrees closely (every join attaches ~m edges either way).
    let live_mean = live_degrees.iter().sum::<usize>() as f64 / live_degrees.len() as f64;
    let pa_mean = pa_degrees.iter().sum::<usize>() as f64 / pa_degrees.len() as f64;
    assert!(
        (live_mean - pa_mean).abs() / pa_mean < 0.10,
        "mean degree diverged: live {live_mean:.3} vs generated {pa_mean:.3}"
    );

    // Log-binned P(k) agrees bin for bin: every bin the generator populates exists in
    // the emergent distribution with a density within 2x, and the emergent bins the
    // generator lacks (degree-1 stragglers from freezing mutual links only) carry a
    // negligible share of the mass.
    let live_bins = log_binned_distribution(&live_degrees, 4);
    let pa_bins = log_binned_distribution(&pa_degrees, 4);
    for pa_bin in &pa_bins {
        let live_bin = live_bins
            .iter()
            .find(|b| (b.lower - pa_bin.lower).abs() < 1e-9)
            .unwrap_or_else(|| {
                panic!(
                    "no emergent bin at [{:.2}, {:.2})",
                    pa_bin.lower, pa_bin.upper
                )
            });
        let ratio = live_bin.density / pa_bin.density;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "bin [{:.2}, {:.2}): emergent density {:.5} vs generated {:.5}",
            pa_bin.lower,
            pa_bin.upper,
            live_bin.density,
            pa_bin.density
        );
    }
    let unmatched: usize = live_bins
        .iter()
        .filter(|b| !pa_bins.iter().any(|p| (p.lower - b.lower).abs() < 1e-9))
        .map(|b| b.count)
        .sum();
    assert!(
        (unmatched as f64) < 0.05 * live_degrees.len() as f64,
        "{unmatched} emergent samples fall in bins the generator never populates"
    );
}

#[test]
fn one_seed_replays_the_growth_and_its_measurements_byte_for_byte() {
    let config = thousand_peers(8);
    let first = grow(&config, 42).unwrap();
    let second = grow(&config, 42).unwrap();
    assert_eq!(first.stats, second.stats);
    assert_eq!(first.sweep_seed, second.sweep_seed);
    let frozen_first = first.graph.freeze();
    let frozen_second = second.graph.freeze();
    assert_eq!(
        GraphView::degrees(&frozen_first),
        GraphView::degrees(&frozen_second)
    );

    // Persisted, the two runs are the same bytes, and sweeps measured on the grown
    // snapshot reproduce byte-for-byte too.
    let dir = std::env::temp_dir().join(format!("sfo-live-overlay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grown.sfos");
    let spec = ScenarioSpec::live("replay", config, path.display().to_string(), 42);
    let report = ScenarioRunner::new().run(&spec).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let again = ScenarioRunner::new().run(&spec).unwrap();
    assert_eq!(again.to_json_string(), report.to_json_string());
    assert_eq!(std::fs::read(&path).unwrap(), bytes);

    let mut sweep = ScenarioSpec::sweep(
        "replay-sweep",
        TopologySpec::Snapshot {
            path: path.display().to_string(),
        },
        SearchSpec::NormalizedFlooding { k_min: None },
        SweepSpec::single(vec![1, 2, 4], 8),
        42,
        1,
    );
    sweep.sweep.as_mut().unwrap().batch = true;
    let swept = ScenarioRunner::new().run(&sweep).unwrap().to_json_string();
    let swept_again = ScenarioRunner::new().run(&sweep).unwrap().to_json_string();
    assert_eq!(swept, swept_again);
    std::fs::remove_dir_all(&dir).ok();
}
