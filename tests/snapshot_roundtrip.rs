//! Integration tests of the snapshot persistence layer: `SFOS` files round-trip
//! `CsrGraph` and `ShardedCsr` exactly (boundary tables included), corrupt files fail
//! with typed errors instead of panics, and — the load-bearing guarantee — a sweep
//! `ScenarioSpec` run against a `TopologySpec::Snapshot` file produces a byte-identical
//! `ScenarioReport` result to the same spec run against the inline generator.

use sfoverlay::prelude::*;
use std::path::{Path, PathBuf};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfos-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A paper-shaped overlay with hubs and a hard cutoff, realistic for the codec.
fn pa_topology(nodes: usize) -> TopologySpec {
    TopologySpec::Pa {
        nodes,
        m: 2,
        cutoff: Some(12),
    }
}

/// The inline scenario every snapshot in these tests is built from: single curve,
/// single realization, engine-batched — the shape snapshot sweeps require.
fn inline_spec(searches: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::sweep(
        "snapshot-it",
        pa_topology(600),
        SearchSpec::Flooding,
        SweepSpec::single(vec![1, 2, 4, 6], searches),
        2024,
        1,
    );
    let sweep = spec.sweep.as_mut().unwrap();
    sweep.batch = true;
    sweep.shard_count = 3;
    spec
}

/// `inline_spec` with its topology swapped for the snapshot at `path`.
fn snapshot_spec(base: &ScenarioSpec, path: &Path) -> ScenarioSpec {
    let mut spec = base.clone();
    spec.topology = Some(TopologySpec::Snapshot {
        path: path.to_string_lossy().into_owned(),
    });
    spec
}

#[test]
fn csr_graph_save_load_round_trips_exactly() {
    use rand::SeedableRng;
    let generator = pa_topology(500).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let frozen = generator.generate(&mut rng).unwrap().freeze();
    let path = temp_path("csr-roundtrip.sfos");
    frozen.save(&path).unwrap();
    assert_eq!(CsrGraph::load(&path).unwrap(), frozen);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sharded_csr_save_load_round_trips_exactly_including_boundary_tables() {
    use rand::SeedableRng;
    let generator = pa_topology(400).build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let graph = generator.generate(&mut rng).unwrap();
    for shards in [1usize, 2, 5, 8] {
        let store = ShardedCsr::from_graph(&graph, shards);
        let path = temp_path(&format!("sharded-roundtrip-{shards}.sfos"));
        store.save(&path).unwrap();
        let back = ShardedCsr::load(&path).unwrap();
        assert_eq!(back, store, "{shards} shards");
        assert_eq!(back.cross_shard_edges(), store.cross_shard_edges());
        for (a, b) in back.shards().iter().zip(store.shards()) {
            assert_eq!(a.node_range(), b.node_range());
            assert_eq!(a.boundary(), b.boundary(), "{shards} shards");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn snapshot_sweep_reports_are_byte_identical_to_the_inline_generator() {
    let base = inline_spec(15);
    let inline_report = ScenarioRunner::new().run(&base).unwrap();

    let path = temp_path("sweep-identity.sfos");
    build_snapshot(&base, 3).unwrap().save(&path).unwrap();
    let snap = snapshot_spec(&base, &path);
    let snapshot_report = ScenarioRunner::new().run(&snap).unwrap();

    // The embedded specs differ by construction (inline topology vs file path); the
    // measured result must not differ in a single byte. Compare both the values and
    // the serialized JSON (the writer is deterministic, so equal values mean equal
    // bytes — asserting on the serialized form makes the guarantee explicit).
    assert_eq!(snapshot_report.result, inline_report.result);
    let result_json = |report: &ScenarioReport| {
        let full = report.to_json_string();
        full[full.find("\"result\"").unwrap()..].to_string()
    };
    assert_eq!(result_json(&snapshot_report), result_json(&inline_report));

    // The snapshot run is also invariant in thread and shard count, like any batched run.
    for (threads, shards) in [(2usize, 1usize), (3, 7)] {
        let mut varied = snap.clone();
        let sweep = varied.sweep.as_mut().unwrap();
        sweep.threads = threads;
        sweep.shard_count = shards;
        let report = ScenarioRunner::new().run(&varied).unwrap();
        assert_eq!(
            report.result, inline_report.result,
            "threads={threads} shards={shards}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_degree_scenarios_match_the_inline_generator() {
    let mut build_from = inline_spec(5);
    build_from.search = None;
    build_from.sweep = None;
    build_from.measure = MeasureSpec::DegreeDistribution { bins_per_decade: 8 };
    let inline_report = ScenarioRunner::new().run(&build_from).unwrap();

    let path = temp_path("degree-identity.sfos");
    build_snapshot(&build_from, 0).unwrap().save(&path).unwrap();
    let snap = snapshot_spec(&build_from, &path);
    let snapshot_report = ScenarioRunner::new().run(&snap).unwrap();
    assert_eq!(snapshot_report.result, inline_report.result);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_topology_specs_round_trip_through_json() {
    let path = temp_path("json-roundtrip.sfos");
    build_snapshot(&inline_spec(5), 0)
        .unwrap()
        .save(&path)
        .unwrap();
    let spec = snapshot_spec(&inline_spec(5), &path);
    let text = spec.to_json_string();
    let back = ScenarioSpec::parse(&text).unwrap();
    assert_eq!(back, spec, "{text}");
    assert_eq!(back.to_json_string(), text);
    back.validate().unwrap();

    // The family tag is part of the stable JSON dialect.
    assert!(text.contains("\"family\": \"snapshot\""));
    assert!(matches!(back.topology, Some(TopologySpec::Snapshot { .. })));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_snapshot_files_yield_typed_errors_not_panics() {
    let base = inline_spec(5);
    let path = temp_path("corruption.sfos");
    build_snapshot(&base, 2).unwrap().save(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let write = |bytes: &[u8]| std::fs::write(&path, bytes).unwrap();
    let spec = snapshot_spec(&base, &path);

    // Wrong magic: not a snapshot at all.
    let mut bytes = pristine.clone();
    bytes[..4].copy_from_slice(b"GZIP");
    write(&bytes);
    assert!(matches!(
        CsrGraph::load(&path),
        Err(SnapshotError::BadMagic { found }) if found == *b"GZIP"
    ));
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::Snapshot(SnapshotError::BadMagic { .. }))
    ));

    // Wrong (future) version.
    let mut bytes = pristine.clone();
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    write(&bytes);
    assert!(matches!(
        SnapshotFile::load(&path),
        Err(SnapshotError::UnsupportedVersion { found: 7 })
    ));
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::Snapshot(
            SnapshotError::UnsupportedVersion { .. }
        ))
    ));

    // Truncation at several depths: inside the header, the arrays, the trailer.
    for keep in [3usize, 17, pristine.len() / 2, pristine.len() - 3] {
        write(&pristine[..keep]);
        let err = SnapshotFile::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
            ),
            "keep {keep}: {err:?}"
        );
        assert!(ScenarioRunner::new().run(&spec).is_err(), "keep {keep}");
    }

    // A flipped payload bit fails the checksum.
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    write(&bytes);
    assert!(matches!(
        SnapshotFile::load(&path),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // And the pristine bytes still load — the errors above were the file's fault.
    write(&pristine);
    SnapshotFile::load(&path).unwrap();
    ShardedCsr::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_scenario_validation_pins_the_run_shape() {
    let base = inline_spec(5);
    let path = temp_path("validation.sfos");
    build_snapshot(&base, 0).unwrap().save(&path).unwrap();
    let good = snapshot_spec(&base, &path);
    good.validate().unwrap();

    // The file holds one realization.
    let mut two = good.clone();
    two.realizations = 2;
    assert!(matches!(
        two.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // Snapshot search sweeps must run through the engine batch scheduler.
    let mut serial = good.clone();
    serial.sweep.as_mut().unwrap().batch = false;
    assert!(matches!(
        serial.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // A snapshot cannot be regenerated along sweep axes.
    let mut axes = good.clone();
    axes.sweep.as_mut().unwrap().stubs = vec![1, 2];
    assert!(matches!(
        axes.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // The spec's seed must be the seed the file was built with.
    let mut reseeded = good.clone();
    reseeded.seed = 1;
    assert!(matches!(
        reseeded.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    // A missing file is an IO error, not a panic.
    let mut missing = good.clone();
    missing.topology = Some(TopologySpec::Snapshot {
        path: "/nonexistent/nowhere.sfos".to_string(),
    });
    assert!(matches!(
        missing.validate(),
        Err(ScenarioError::Snapshot(SnapshotError::Io { .. }))
    ));

    // A provenance-less file (plain CsrGraph::save) is rejected up front.
    let plain_path = temp_path("plain-no-provenance.sfos");
    build_snapshot(&base, 0)
        .map(|mut file| {
            file.provenance = None;
            file.save(&plain_path).unwrap();
        })
        .unwrap();
    let mut plain = good.clone();
    plain.topology = Some(TopologySpec::Snapshot {
        path: plain_path.to_string_lossy().into_owned(),
    });
    assert!(matches!(
        plain.validate(),
        Err(ScenarioError::InvalidSpec { .. })
    ));

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&plain_path).unwrap();
}
