//! Cross-crate integration tests: the public API workflows a downstream user would run,
//! spanning topology generation, search, analysis, the churn simulator, and the experiment
//! registry.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfoverlay::analysis::histogram::log_binned_distribution;
use sfoverlay::analysis::{DataPoint, DataSeries, FigureData, Summary};
use sfoverlay::experiments::{run_experiment, Scale};
use sfoverlay::graph::{metrics, traversal};
use sfoverlay::prelude::*;
use sfoverlay::search::experiment::{average_over_sources_parallel, ttl_sweep};
use sfoverlay::sim::query::QueryMethod;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// All four generators behind one trait object, as the experiment harness uses them.
#[test]
fn every_generator_works_through_the_trait_object_interface() {
    let n = 800;
    let generators: Vec<Box<dyn TopologyGenerator>> = vec![
        Box::new(
            PreferentialAttachment::new(n, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(30)),
        ),
        Box::new(
            ConfigurationModel::new(n, 2.6, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(30)),
        ),
        Box::new(
            HopAndAttempt::new(n, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(30)),
        ),
        Box::new(
            DapaOverGrn::new(n, 2, 4)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(30)),
        ),
    ];
    let expected = [
        ("PA", Locality::Global),
        ("CM", Locality::Global),
        ("HAPA", Locality::Partial),
        ("DAPA", Locality::Local),
    ];
    for (generator, (name, locality)) in generators.iter().zip(expected) {
        assert_eq!(generator.name(), name);
        assert_eq!(generator.locality(), locality);
        assert_eq!(generator.target_nodes(), n);
        let graph = generator.generate(&mut rng(3)).unwrap();
        assert_eq!(graph.node_count(), n, "{name}");
        assert!(graph.max_degree().unwrap() <= 30, "{name}");
        graph.assert_consistent();
    }
}

/// Generate → search → aggregate into a figure, the full downstream pipeline.
#[test]
fn topology_search_analysis_pipeline_produces_a_figure() {
    let graph = PreferentialAttachment::new(1_200, 2)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(20))
        .generate(&mut rng(5))
        .unwrap();

    let ttls = [2u32, 4, 6];
    let mut figure = FigureData::new("demo", "NF hits on a capped PA overlay", "tau", "hits");
    let mut series = DataSeries::new("m=2, k_c=20");
    for point in ttl_sweep(&graph, &NormalizedFlooding::new(2), &ttls, 30, &mut rng(5)) {
        let summary: Summary = [point.mean_hits].into_iter().collect();
        series.push(DataPoint::from_summary(f64::from(point.ttl), &summary));
    }
    figure.push_series(series);

    assert_eq!(figure.series.len(), 1);
    assert_eq!(figure.series[0].points.len(), 3);
    let csv = figure.to_csv();
    assert!(csv.lines().count() == 4);
    assert!(figure.to_text().contains("k_c=20"));

    // Degree distribution of the same overlay, log-binned as in the paper's figures.
    let bins = log_binned_distribution(&graph.degrees(), 8);
    assert!(!bins.is_empty());
    assert!(bins.iter().all(|b| b.density > 0.0));
}

/// The parallel search runner gives the same kind of answer as the sequential one.
#[test]
fn parallel_and_sequential_search_averages_agree_roughly() {
    let graph = ConfigurationModel::new(1_500, 2.6, 3)
        .unwrap()
        .with_cutoff(DegreeCutoff::hard(40))
        .generate(&mut rng(7))
        .unwrap();
    let sequential = ttl_sweep(&graph, &Flooding::new(), &[4], 60, &mut rng(7))[0].mean_hits;
    let parallel = average_over_sources_parallel(&graph, &Flooding::new(), 4, 60, 4, 7).mean_hits;
    let ratio = parallel / sequential;
    assert!(
        (0.7..=1.4).contains(&ratio),
        "parallel ({parallel:.0}) and sequential ({sequential:.0}) means diverge, ratio {ratio:.2}"
    );
}

/// The live overlay's snapshot can be fed straight into the graph metrics and search
/// algorithms.
#[test]
fn live_overlay_snapshot_supports_static_analysis_and_search() {
    let config = OverlayConfig {
        stubs: 3,
        cutoff: DegreeCutoff::hard(15),
        join_strategy: JoinStrategy::DegreePreferential,
        repair_on_leave: true,
    };
    let mut overlay = OverlayNetwork::new(config).unwrap();
    let mut r = rng(9);
    for _ in 0..400 {
        overlay.join(&mut r);
    }
    for _ in 0..50 {
        let victim = overlay.random_peer(&mut r).unwrap();
        overlay.leave(victim, &mut r).unwrap();
    }
    let (graph, peers) = overlay.snapshot();
    assert_eq!(graph.node_count(), 350);
    assert_eq!(peers.len(), 350);
    assert!(graph.max_degree().unwrap() <= 15);
    assert!(traversal::giant_component_fraction(&graph) > 0.9);
    let hist = metrics::degree_histogram(&graph);
    assert_eq!(hist.node_count, 350);

    let outcome = NormalizedFlooding::new(3).search(&graph, NodeId::new(0), 5, &mut r);
    assert!(outcome.hits > 0);
    assert!(outcome.messages >= outcome.hits);
}

/// An end-to-end churn simulation driven through the umbrella crate's prelude.
#[test]
fn churn_simulation_end_to_end() {
    let mut config = SimulationConfig::small();
    config.query_method = QueryMethod::RandomWalk;
    config.query_ttl = 64;
    let report = Simulation::new(config).unwrap().run(&mut rng(11)).unwrap();
    assert!(report.queries_issued > 0);
    assert!(
        report.success_rate() > 0.0,
        "random-walk lookups should find popular items"
    );
    assert!(report.final_peers > 0);
    assert!(!report.samples.is_empty());
}

/// The experiment registry runs end to end at smoke scale for a cheap figure and both
/// tables.
#[test]
fn experiment_registry_smoke_runs() {
    let scale = Scale {
        degree_nodes: 600,
        search_nodes: 400,
        realizations: 1,
        searches_per_point: 10,
    };
    let fig1a = run_experiment("fig1a", &scale, 3).expect("fig1a registered");
    assert_eq!(fig1a.as_figure().unwrap().series.len(), 3);

    let table2 = run_experiment("table2", &scale, 3).expect("table2 registered");
    let rendered = table2.to_string();
    assert!(rendered.contains("DAPA"));
    assert!(rendered.contains("No"));

    let table1 = run_experiment("table1", &scale, 3).expect("table1 registered");
    assert!(table1.as_table().unwrap().row_count() == 4);
}
