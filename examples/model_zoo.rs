//! Model zoo: one-line structural summary of every topology generator in the workspace.
//!
//! Runs the `generator-zoo` and `hub-load` extension experiments at a reduced scale and
//! prints their tables: maximum/mean degree, fitted exponent, giant-component fraction, and
//! how a hard cutoff redistributes betweenness load away from the hubs.
//!
//! ```text
//! cargo run --release --example model_zoo
//! ```

use sfoverlay::experiments::{run_experiment, Scale};

fn main() {
    let scale = Scale {
        degree_nodes: 4_000,
        search_nodes: 2_000,
        realizations: 1,
        searches_per_point: 10,
    };
    let seed = 11;

    println!("=== Generator zoo (every mechanism, with and without k_c = 10) ===\n");
    let zoo = run_experiment("generator-zoo", &scale, seed).expect("generator-zoo is registered");
    println!("{zoo}");

    println!("\n=== Hub-load redistribution (PA and HAPA, with and without k_c = 10) ===\n");
    let load = run_experiment("hub-load", &scale, seed).expect("hub-load is registered");
    println!("{load}");

    println!(
        "\nWithout a cutoff the preferential mechanisms concentrate links and forwarding load\n\
         on a handful of hubs (large max degree, large peak betweenness, deep cores); the hard\n\
         cutoff flattens all three while keeping the overlay connected."
    );
}
