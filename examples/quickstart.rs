//! Quickstart: generate a scale-free overlay with a hard cutoff, inspect its degree
//! distribution, and compare flooding against normalized flooding on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use sfoverlay::analysis::powerlaw_fit::fit_exponent_from_counts;
use sfoverlay::graph::metrics;
use sfoverlay::prelude::*;
use sfoverlay::search::experiment::{average_over_sources, ttl_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);

    // 1. Build a 5000-peer overlay with preferential attachment, 2 links per joining peer,
    //    and a hard cutoff of 20 entries per neighbor table.
    let n = 5_000;
    let cutoff = DegreeCutoff::hard(20);
    let overlay = PreferentialAttachment::new(n, 2)?
        .with_cutoff(cutoff)
        .generate(&mut rng)?;
    println!(
        "overlay: {} peers, {} links, max degree {}",
        overlay.node_count(),
        overlay.edge_count(),
        overlay.max_degree().unwrap()
    );

    // 2. Look at its degree distribution and fitted power-law exponent.
    let histogram = metrics::degree_histogram(&overlay);
    if let Some(fit) = fit_exponent_from_counts(&histogram.counts, 2, 19) {
        println!(
            "degree distribution: gamma ~= {:.2} (R^2 = {:.3})",
            fit.gamma,
            fit.r_squared.unwrap_or(0.0)
        );
    }
    println!("peers pinned at the cutoff k=20: {}", histogram.count(20));

    // 3. Compare flooding and normalized flooding at a few TTLs.
    let ttls = [2u32, 4, 6, 8];
    let fl = ttl_sweep(&overlay, &Flooding::new(), &ttls, 50, &mut rng);
    let nf = ttl_sweep(&overlay, &NormalizedFlooding::new(2), &ttls, 50, &mut rng);
    println!("\n tau |      FL hits |   FL msgs |   NF hits |   NF msgs");
    for (f, n) in fl.iter().zip(&nf) {
        println!(
            "{:>4} | {:>12.1} | {:>9.1} | {:>9.1} | {:>9.1}",
            f.ttl, f.mean_hits, f.mean_messages, n.mean_hits, n.mean_messages
        );
    }

    // 4. A single random walk with the same message budget as the NF search at tau = 6.
    let nf_at_6 = nf
        .iter()
        .find(|o| o.ttl == 6)
        .expect("tau=6 is in the sweep");
    let rw = average_over_sources(
        &overlay,
        &RandomWalk::new(),
        nf_at_6.mean_messages as u32,
        50,
        &mut rng,
    );
    println!(
        "\nrandom walk with the NF tau=6 message budget ({:.0} messages): {:.1} hits on average",
        nf_at_6.mean_messages, rw.mean_hits
    );
    Ok(())
}
