//! Churn resilience: a live overlay with hard cutoffs under continuous join/leave/crash
//! events, serving a Zipf query workload (the paper's future-work scenario, built on
//! `sfo-sim`).
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use rand::SeedableRng;
use sfoverlay::prelude::*;
use sfoverlay::sim::query::QueryMethod;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, cutoff) in [
        ("k_c = 10", DegreeCutoff::hard(10)),
        ("unbounded", DegreeCutoff::Unbounded),
    ] {
        let config = SimulationConfig {
            initial_peers: 1_000,
            duration: 500,
            join_rate: 1.0,
            leave_rate: 0.8,
            crash_rate: 0.2,
            query_rate: 5.0,
            query_ttl: 6,
            query_method: QueryMethod::NormalizedFlooding { k_min: 3 },
            overlay: OverlayConfig {
                stubs: 3,
                cutoff,
                join_strategy: JoinStrategy::HopAndAttempt {
                    max_hops_per_link: 200,
                },
                repair_on_leave: true,
            },
            catalog_items: 200,
            catalog_skew: 1.0,
            base_replicas: 40,
            snapshot_interval: 50,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let report = Simulation::new(config)?.run(&mut rng)?;

        println!("== overlay with {label} ==");
        println!(
            "churn: {} joins, {} leaves, {} crashes; {:.1} control messages per churn event",
            report.joins,
            report.leaves,
            report.crashes,
            report.mean_churn_messages()
        );
        println!(
            "queries: {} issued, success rate {:.1}%, {:.1} messages per query, {:.2} hops to first replica",
            report.queries_issued,
            100.0 * report.success_rate(),
            report.mean_query_messages(),
            report.mean_hops_to_find()
        );
        println!("overlay health over time:");
        println!("   time | peers | mean degree | max degree | giant component");
        for sample in &report.samples {
            println!(
                "  {:>5} | {:>5} | {:>11.2} | {:>10} | {:>14.1}%",
                sample.time,
                sample.peers,
                sample.mean_degree,
                sample.max_degree,
                100.0 * sample.giant_component_fraction
            );
        }
        println!();
    }

    println!(
        "with m = 3 links per peer and leave-repair enabled, the hard cutoff barely hurts\n\
         query success while keeping every peer's neighbor table small - the guideline the\n\
         paper derives for unstructured P2P networks."
    );
    Ok(())
}
