//! Search-strategy shoot-out: every implemented search algorithm on the same overlay, with
//! and without a hard cutoff.
//!
//! The paper compares flooding (FL), normalized flooding (NF), and random walks (RW); its
//! related-work section also points to probabilistic flooding, expanding-ring search, and
//! the high-degree-seeking walk of Adamic et al. This example runs all six on a
//! preferential-attachment overlay and shows (i) how many peers each reaches per message and
//! (ii) how the picture changes once every peer caps its neighbor table at `k_c = 10`.
//!
//! ```text
//! cargo run --release --example search_strategies
//! ```

use rand::SeedableRng;
use sfoverlay::prelude::*;
use sfoverlay::search::coverage::success_probability;
use sfoverlay::search::experiment::ttl_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let n = 4_000;
    let ttl = 8u32;
    let replicas = 20usize; // how widely the item we pretend to look for is replicated

    for cutoff in [DegreeCutoff::Unbounded, DegreeCutoff::hard(10)] {
        let overlay = PreferentialAttachment::new(n, 2)?
            .with_cutoff(cutoff)
            .generate(&mut rng)?;
        println!(
            "\n=== PA overlay, m=2, {} peers, {} — max degree {} ===",
            overlay.node_count(),
            cutoff,
            overlay.max_degree().unwrap()
        );
        println!(
            "{:<12} | {:>9} | {:>10} | {:>10} | {:>12}",
            "algorithm", "hits", "messages", "hits/msg", "P(find item)"
        );

        let algorithms: Vec<(&str, Box<dyn SearchAlgorithm>)> = vec![
            ("FL", Box::new(Flooding::new())),
            ("NF k=2", Box::new(NormalizedFlooding::new(2))),
            ("pFL p=0.5", Box::new(ProbabilisticFlooding::new(0.5))),
            ("ring 1+2", Box::new(ExpandingRing::new(1, 2))),
            ("RW", Box::new(RandomWalk::new())),
            ("HD-RW", Box::new(DegreeBiasedWalk::new())),
        ];
        for (name, algorithm) in &algorithms {
            let outcome = &ttl_sweep(&overlay, algorithm.as_ref(), &[ttl], 60, &mut rng)[0];
            let p_find = success_probability(outcome.mean_hits as usize, replicas, n);
            println!(
                "{:<12} | {:>9.1} | {:>10.1} | {:>10.3} | {:>12.3}",
                name,
                outcome.mean_hits,
                outcome.mean_messages,
                if outcome.mean_messages > 0.0 {
                    outcome.mean_hits / outcome.mean_messages
                } else {
                    0.0
                },
                p_find,
            );
        }
    }

    println!(
        "\nReading the table: the hard cutoff shrinks FL's raw coverage but *raises* the\n\
         hits-per-message of the practical algorithms (NF and the walks) — the paper's central\n\
         observation — while the hub-seeking HD-RW loses the super-hubs it relies on."
    );
    Ok(())
}
