//! Gnutella-like overlay construction with purely local information (DAPA).
//!
//! Builds a geometric-random-network substrate (an abstraction of the underlying Internet
//! topology), grows a DAPA overlay on it for several local TTL values `τ_sub`, and shows
//! how locality changes the degree distribution and the normalized-flooding search
//! efficiency — the scenario motivating the paper's fully local join mechanism.
//!
//! ```text
//! cargo run --release --example gnutella_overlay
//! ```

use rand::SeedableRng;
use sfoverlay::graph::generators::GeometricRandomNetwork;
use sfoverlay::graph::{metrics, traversal};
use sfoverlay::prelude::*;
use sfoverlay::search::experiment::ttl_sweep;
use sfoverlay::topology::dapa::DiscoverAndAttempt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Substrate: N_S = 8000 nodes, average degree 10 (the paper uses 2e4 nodes).
    let (substrate, _positions) =
        GeometricRandomNetwork::with_average_degree(8_000, 10.0)?.generate(&mut rng)?;
    println!(
        "substrate: {} nodes, {} links, giant component {:.1}%",
        substrate.node_count(),
        substrate.edge_count(),
        100.0 * traversal::giant_component_fraction(&substrate)
    );

    // Overlay: N_O = 4000 peers, m = 2 stubs, hard cutoff 40, for three horizons.
    for tau_sub in [2u32, 6, 20] {
        let overlay = DiscoverAndAttempt::new(4_000, 2, tau_sub)?
            .with_cutoff(DegreeCutoff::hard(40))
            .generate_on(&substrate, &mut rng)?;
        let graph = &overlay.graph;
        let histogram = metrics::degree_histogram(graph);
        let nf = ttl_sweep(graph, &NormalizedFlooding::new(2), &[4, 8], 50, &mut rng);
        println!(
            "\ntau_sub = {tau_sub:>2}: max degree {:>3}, mean degree {:.2}, peers at cutoff {:>3}, failed discoveries {}",
            graph.max_degree().unwrap(),
            graph.average_degree(),
            histogram.count(40),
            overlay.failed_discoveries
        );
        for point in nf {
            println!(
                "    NF tau={:<2}  hits {:>8.1}  messages {:>8.1}",
                point.ttl, point.mean_hits, point.mean_messages
            );
        }
    }

    println!(
        "\nlarger tau_sub (more discovery effort at join time) recovers a heavier-tailed overlay\n\
         and better search coverage, matching Fig. 4 and Fig. 10 of the paper."
    );
    Ok(())
}
