//! Hard-cutoff sweep: how the cutoff value changes the degree exponent and the efficiency
//! of practical search algorithms.
//!
//! Reproduces the paper's central observation in miniature: normalized flooding and random
//! walks can do *better* on topologies with smaller hard cutoffs, as long as peers keep 2-3
//! links to the network.
//!
//! ```text
//! cargo run --release --example cutoff_sweep
//! ```

use rand::SeedableRng;
use sfoverlay::analysis::powerlaw_fit::fit_exponent_from_counts;
use sfoverlay::graph::metrics;
use sfoverlay::prelude::*;
use sfoverlay::search::experiment::{rw_normalized_to_nf, ttl_sweep};
use sfoverlay::topology::cutoff::pa_natural_cutoff;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4_000;
    let m = 2;
    let tau = 8u32;
    println!(
        "PA topologies with N = {n}, m = {m}; natural cutoff would be about {:.0}",
        pa_natural_cutoff(n, m)?
    );
    println!("\n  k_c | gamma fit | NF hits (tau={tau}) | RW hits (normalized) | max degree");

    for cutoff in [Some(10usize), Some(20), Some(40), Some(100), None] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let degree_cutoff = DegreeCutoff::from(cutoff);
        let overlay = PreferentialAttachment::new(n, m)?
            .with_cutoff(degree_cutoff)
            .generate(&mut rng)?;

        let histogram = metrics::degree_histogram(&overlay);
        let fit_max = cutoff
            .map(|k| k - 1)
            .unwrap_or(overlay.max_degree().unwrap());
        let gamma = fit_exponent_from_counts(&histogram.counts, m, fit_max)
            .map(|f| f.gamma)
            .unwrap_or(f64::NAN);

        let nf = ttl_sweep(&overlay, &NormalizedFlooding::new(m), &[tau], 80, &mut rng);
        let rw = rw_normalized_to_nf(&overlay, m, &[tau], 80, &mut rng);

        let label = cutoff
            .map(|k| k.to_string())
            .unwrap_or_else(|| "none".to_string());
        println!(
            "{:>5} | {:>9.2} | {:>17.1} | {:>20.1} | {:>10}",
            label,
            gamma,
            nf[0].mean_hits,
            rw[0].mean_hits,
            overlay.max_degree().unwrap()
        );
    }

    println!(
        "\nsmaller cutoffs lower the fitted exponent but *raise* NF/RW hit counts:\n\
         the links that would have piled onto a hub are spread over the network instead."
    );
    Ok(())
}
