//! Replication playbook: how replica allocation, hard cutoffs, and flash crowds interact on
//! a live overlay.
//!
//! The paper's related work cites the replication results of Cohen & Shenker (uniform /
//! proportional / square-root allocation) and the flash-crowd concern of small-world P2P
//! designs. This example builds a live cutoff-bounded overlay with `sfo-sim`, replicates a
//! Zipf catalog under each allocation rule, measures normalized-flooding lookup success,
//! and then replays the same lookups during a flash crowd on an unpopular item.
//!
//! ```text
//! cargo run --release --example replication_playbook
//! ```

use rand::SeedableRng;
use sfoverlay::prelude::*;
use sfoverlay::sim::catalog::{Catalog, ItemId};
use sfoverlay::sim::query::{run_query, QueryMethod};
use sfoverlay::sim::replication::{allocate, expected_search_size, place};
use sfoverlay::sim::workload::Workload;

const PEERS: usize = 1_500;
const ITEMS: usize = 80;
const BUDGET: usize = ITEMS * 6;
const QUERIES: usize = 600;
const TTL: u32 = 5;

fn build_overlay(rng: &mut impl rand::Rng) -> Result<OverlayNetwork, Box<dyn std::error::Error>> {
    let mut overlay = OverlayNetwork::new(OverlayConfig {
        stubs: 3,
        cutoff: DegreeCutoff::hard(12),
        join_strategy: JoinStrategy::HopAndAttempt {
            max_hops_per_link: 100,
        },
        repair_on_leave: true,
    })?;
    for _ in 0..PEERS {
        overlay.join(rng);
    }
    Ok(overlay)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let catalog = Catalog::new(ITEMS, 1.0)?;

    println!("=== Replica allocation under a fixed budget of {BUDGET} copies ===");
    println!(
        "{:<14} | {:>20} | {:>12} | {:>16}",
        "strategy", "expected search size", "success rate", "messages / query"
    );
    for strategy in [
        ReplicationStrategy::Uniform,
        ReplicationStrategy::Proportional,
        ReplicationStrategy::SquareRoot,
    ] {
        let mut overlay = build_overlay(&mut rng)?;
        let allocation = allocate(&catalog, strategy, BUDGET)?;
        place(&mut overlay, &allocation, &mut rng)?;

        let mut successes = 0usize;
        let mut messages = 0usize;
        for _ in 0..QUERIES {
            let source = overlay.random_peer(&mut rng)?;
            let item = catalog.sample_query(&mut rng);
            let outcome = run_query(
                &overlay,
                QueryMethod::NormalizedFlooding { k_min: 3 },
                source,
                item,
                TTL,
                &mut rng,
            )?;
            if outcome.found {
                successes += 1;
            }
            messages += outcome.messages;
        }
        println!(
            "{:<14} | {:>20.1} | {:>12.3} | {:>16.1}",
            format!("{strategy:?}"),
            expected_search_size(&catalog, &allocation, PEERS),
            successes as f64 / QUERIES as f64,
            messages as f64 / QUERIES as f64,
        );
    }

    println!("\n=== Flash crowd on an unpopular item (rank 60) ===");
    let hot = ItemId::new(60);
    let crowd = Workload::FlashCrowd {
        hot_item: hot,
        start: 0,
        end: 1_000,
        intensity: 0.8,
    };
    crowd.validate(&catalog)?;
    let mut overlay = build_overlay(&mut rng)?;
    let allocation = allocate(&catalog, ReplicationStrategy::SquareRoot, BUDGET)?;
    place(&mut overlay, &allocation, &mut rng)?;
    for (label, workload) in [("stationary", Workload::Stationary), ("flash crowd", crowd)] {
        let mut successes = 0usize;
        for tick in 0..QUERIES as u64 {
            let source = overlay.random_peer(&mut rng)?;
            let item = workload.sample_query(&catalog, tick, &mut rng);
            let outcome = run_query(
                &overlay,
                QueryMethod::NormalizedFlooding { k_min: 3 },
                source,
                item,
                TTL,
                &mut rng,
            )?;
            if outcome.found {
                successes += 1;
            }
        }
        println!(
            "{label:<12}: success rate {:.3}",
            successes as f64 / QUERIES as f64
        );
    }
    println!(
        "\nThe square-root allocation keeps the expected search size lowest; during the flash\n\
         crowd the success rate drops because the suddenly-hot item only carries the few\n\
         replicas its old popularity earned — the motivation for active re-replication."
    );
    Ok(())
}
