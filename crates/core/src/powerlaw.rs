//! Bounded discrete power-law distributions.
//!
//! The configuration model (paper, Alg. 2) needs a degree sequence `{k_i}` drawn from
//! `P(k) ∝ k^{-γ}` on the bounded support `m ≤ k ≤ k_c`, with the additional constraint
//! that the sequence sum is even so every stub can be paired. This module provides the
//! distribution, sequence sampling, and the theoretical moments used in tests.

use crate::{DegreeCutoff, Result, TopologyError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A discrete power law `P(k) ∝ k^{-γ}` truncated to the support `[k_min, k_max]`.
///
/// # Example
///
/// ```
/// use sfo_core::powerlaw::BoundedPowerLaw;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let law = BoundedPowerLaw::new(2.5, 1, 100)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let k = law.sample(&mut rng);
/// assert!((1..=100).contains(&k));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundedPowerLaw {
    gamma: f64,
    k_min: usize,
    k_max: usize,
    /// Cumulative distribution over the support, `cdf[i] = P(k <= k_min + i)`.
    cdf: Vec<f64>,
}

impl BoundedPowerLaw {
    /// Creates a bounded power law with exponent `gamma` on the support `[k_min, k_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `gamma` is not finite or not positive,
    /// if `k_min` is zero, or if `k_min > k_max`.
    pub fn new(gamma: f64, k_min: usize, k_max: usize) -> Result<Self> {
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(TopologyError::InvalidConfig {
                reason: "power-law exponent gamma must be finite and positive",
            });
        }
        if k_min == 0 {
            return Err(TopologyError::InvalidConfig {
                reason: "power-law support must start at k >= 1",
            });
        }
        if k_min > k_max {
            return Err(TopologyError::InvalidConfig {
                reason: "power-law support lower bound exceeds upper bound",
            });
        }
        let weights: Vec<f64> = (k_min..=k_max).map(|k| (k as f64).powf(-gamma)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point drift so the last bucket always catches.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(BoundedPowerLaw {
            gamma,
            k_min,
            k_max,
            cdf,
        })
    }

    /// Returns the exponent `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Returns the smallest degree in the support.
    pub fn k_min(&self) -> usize {
        self.k_min
    }

    /// Returns the largest degree in the support.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Returns the probability mass at `k`, or 0 outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k < self.k_min || k > self.k_max {
            return 0.0;
        }
        let idx = k - self.k_min;
        let prev = if idx == 0 { 0.0 } else { self.cdf[idx - 1] };
        self.cdf[idx] - prev
    }

    /// Returns the mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.k_min..=self.k_max)
            .map(|k| k as f64 * self.pmf(k))
            .sum()
    }

    /// Samples a degree from the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.k_min + idx.min(self.cdf.len() - 1)
    }

    /// Samples a degree sequence of length `n` whose sum is even, as required by the
    /// configuration model's stub-pairing step.
    ///
    /// If the raw sample has an odd sum, one entry that can be incremented without leaving
    /// the support is bumped by one (or decremented when every entry is already at `k_max`),
    /// matching the common implementation of the model.
    pub fn sample_even_sequence<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        let mut seq: Vec<usize> = (0..n).map(|_| self.sample(rng)).collect();
        let sum: usize = seq.iter().sum();
        if sum % 2 == 1 {
            if let Some(entry) = seq.iter_mut().find(|k| **k < self.k_max) {
                *entry += 1;
            } else if let Some(entry) = seq.iter_mut().find(|k| **k > self.k_min) {
                *entry -= 1;
            }
            // If neither adjustment is possible the support is a single odd point and the
            // sequence length is odd; the configuration model cannot pair such a sequence and
            // the caller's wiring step will surface the leftover stub.
        }
        seq
    }
}

/// Builds the power-law support for a configuration-model run: `[m, k_c]` where the upper
/// bound defaults to `n - 1` (the largest degree a simple graph on `n` nodes admits) when
/// the cutoff is unbounded, mirroring the paper's convention `k_c = N`.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidConfig`] if `m` is zero or the resulting support is
/// empty.
pub fn support_for(n: usize, m: usize, cutoff: DegreeCutoff) -> Result<(usize, usize)> {
    if m == 0 {
        return Err(TopologyError::InvalidConfig {
            reason: "stub count m must be at least 1",
        });
    }
    if n < 2 {
        return Err(TopologyError::InvalidConfig {
            reason: "network size must be at least 2",
        });
    }
    let k_max = cutoff.effective_max(n);
    if k_max < m {
        return Err(TopologyError::InvalidConfig {
            reason: "hard cutoff is smaller than the minimum degree m",
        });
    }
    Ok((m, k_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let law = BoundedPowerLaw::new(2.5, 1, 50).unwrap();
        let total: f64 = (1..=50).map(|k| law.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(law.pmf(0), 0.0);
        assert_eq!(law.pmf(51), 0.0);
    }

    #[test]
    fn pmf_is_decreasing_in_k() {
        let law = BoundedPowerLaw::new(3.0, 1, 100).unwrap();
        for k in 1..100 {
            assert!(law.pmf(k) > law.pmf(k + 1));
        }
    }

    #[test]
    fn pmf_ratio_matches_power_law() {
        let law = BoundedPowerLaw::new(2.2, 1, 1000).unwrap();
        let ratio = law.pmf(2) / law.pmf(4);
        assert!((ratio - 2f64.powf(2.2)).abs() < 1e-9);
        assert!((law.gamma() - 2.2).abs() < 1e-12);
        assert_eq!(law.k_min(), 1);
        assert_eq!(law.k_max(), 1000);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(BoundedPowerLaw::new(0.0, 1, 10).is_err());
        assert!(BoundedPowerLaw::new(f64::NAN, 1, 10).is_err());
        assert!(BoundedPowerLaw::new(2.5, 0, 10).is_err());
        assert!(BoundedPowerLaw::new(2.5, 11, 10).is_err());
    }

    #[test]
    fn samples_stay_in_support_and_match_mean() {
        let law = BoundedPowerLaw::new(2.5, 2, 40).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<usize> = (0..n).map(|_| law.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&k| (2..=40).contains(&k)));
        let empirical_mean = samples.iter().sum::<usize>() as f64 / n as f64;
        assert!(
            (empirical_mean - law.mean()).abs() < 0.05,
            "empirical mean {empirical_mean} vs theoretical {}",
            law.mean()
        );
    }

    #[test]
    fn single_point_support_always_returns_that_point() {
        let law = BoundedPowerLaw::new(2.0, 5, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(law.sample(&mut rng), 5);
        assert_eq!(law.mean(), 5.0);
    }

    #[test]
    fn even_sequence_has_even_sum() {
        let law = BoundedPowerLaw::new(3.0, 1, 30).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for len in [1usize, 2, 7, 100, 1001] {
            let seq = law.sample_even_sequence(len, &mut rng);
            assert_eq!(seq.len(), len);
            assert_eq!(seq.iter().sum::<usize>() % 2, 0, "length {len}");
        }
    }

    #[test]
    fn support_for_respects_cutoff() {
        assert_eq!(
            support_for(1000, 2, DegreeCutoff::Unbounded).unwrap(),
            (2, 999)
        );
        assert_eq!(
            support_for(1000, 2, DegreeCutoff::hard(40)).unwrap(),
            (2, 40)
        );
        assert!(support_for(1000, 0, DegreeCutoff::Unbounded).is_err());
        assert!(support_for(1, 1, DegreeCutoff::Unbounded).is_err());
        assert!(support_for(1000, 5, DegreeCutoff::hard(3)).is_err());
    }
}
