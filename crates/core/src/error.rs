//! Error type shared by all topology generators.

use sfo_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a topology generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The generator configuration is inconsistent (for example, `m = 0`, a hard cutoff
    /// smaller than the stub count, or a target size smaller than the seed network).
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// The generator could not place a required link within its attempt budget.
    ///
    /// This happens when hard cutoffs make every reachable candidate ineligible, for
    /// example when `k_c` is so small that a seed network saturates immediately.
    AttemptsExhausted {
        /// Index of the node that was being attached when the generator gave up.
        node_index: usize,
        /// Attempt budget that was exhausted.
        attempts: usize,
    },
    /// An underlying graph mutation failed; this indicates a bug in the generator itself.
    Graph(GraphError),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            TopologyError::AttemptsExhausted { node_index, attempts } => write!(
                f,
                "could not attach node {node_index} within {attempts} attempts (cutoff too restrictive)"
            ),
            TopologyError::Graph(e) => write!(f, "graph operation failed: {e}"),
        }
    }
}

impl Error for TopologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopologyError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for TopologyError {
    fn from(value: GraphError) -> Self {
        TopologyError::Graph(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_graph::NodeId;

    #[test]
    fn display_messages() {
        assert_eq!(
            TopologyError::InvalidConfig {
                reason: "m must be positive"
            }
            .to_string(),
            "invalid configuration: m must be positive"
        );
        assert_eq!(
            TopologyError::AttemptsExhausted {
                node_index: 12,
                attempts: 100
            }
            .to_string(),
            "could not attach node 12 within 100 attempts (cutoff too restrictive)"
        );
        let wrapped = TopologyError::from(GraphError::SelfLoop {
            node: NodeId::new(3),
        });
        assert!(wrapped.to_string().contains("self-loop"));
    }

    #[test]
    fn source_is_exposed_for_graph_errors() {
        use std::error::Error as _;
        let err = TopologyError::from(GraphError::MissingEdge {
            a: NodeId::new(0),
            b: NodeId::new(1),
        });
        assert!(err.source().is_some());
        assert!(TopologyError::InvalidConfig { reason: "x" }
            .source()
            .is_none());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TopologyError>();
    }
}
