//! Discover-and-Attempt Preferential Attachment (DAPA) (paper, Alg. 4 and §IV-B).
//!
//! DAPA imitates how peers discover each other in Gnutella-like networks. It maintains two
//! networks: a pre-existing *substrate* `G_S` (the paper uses a geometric random network
//! with `N_S = 2·10⁴` nodes and average degree 10) and the *overlay* `G_O` built on top of
//! it. A joining node floods a discovery query `τ_sub` hops into the substrate (its local
//! time-to-live), collects the overlay peers visible in that horizon whose degree is still
//! below the hard cutoff, and then attaches to `m` of them preferentially by degree. If the
//! horizon contains at most `m` eligible peers it simply links to all of them, which is why
//! DAPA cannot guarantee a minimum degree of `m`.
//!
//! Small `τ_sub` values make nodes short-sighted and the degree distribution exponential;
//! large values recover a power law (paper, Fig. 4). DAPA is the only mechanism in the
//! paper that needs no global information at join time (Table II).

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::generators::GeometricRandomNetwork;
use sfo_graph::{traversal, Graph, NodeId};

/// Default number of preferential-attachment draws per stub before falling back to a
/// uniform eligible peer from the horizon.
pub const DEFAULT_MAX_ATTEMPTS_PER_STUB: usize = 50_000;

/// Default number of seed peers bootstrapping the overlay (the paper uses 2).
pub const DEFAULT_SEEDS: usize = 2;

/// Result of building a DAPA overlay on a substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct DapaOverlay {
    /// The overlay graph; node `i` of this graph corresponds to substrate node
    /// `substrate_nodes[i]`.
    pub graph: Graph,
    /// Mapping from overlay node index to the substrate node it was built on.
    pub substrate_nodes: Vec<NodeId>,
    /// Number of join attempts that failed because the candidate saw no eligible peer in
    /// its `τ_sub` horizon (the candidate stays outside the overlay and may retry later).
    pub failed_discoveries: usize,
    /// `true` when overlay growth stopped before reaching the target size because no
    /// remaining substrate node could discover a peer (possible on fragmented substrates).
    pub stalled: bool,
}

impl DapaOverlay {
    /// Returns the number of peers in the overlay.
    pub fn peer_count(&self) -> usize {
        self.graph.node_count()
    }
}

/// Builder/configuration for the DAPA overlay construction on a caller-supplied substrate.
///
/// # Example
///
/// ```
/// use sfo_core::dapa::DiscoverAndAttempt;
/// use sfo_core::DegreeCutoff;
/// use sfo_graph::generators::GeometricRandomNetwork;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let (substrate, _) = GeometricRandomNetwork::with_average_degree(2_000, 10.0)?.generate(&mut rng)?;
/// let overlay = DiscoverAndAttempt::new(1_000, 2, 4)?
///     .with_cutoff(DegreeCutoff::hard(40))
///     .generate_on(&substrate, &mut rng)?;
/// assert_eq!(overlay.peer_count(), 1_000);
/// assert!(overlay.graph.max_degree().unwrap() <= 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoverAndAttempt {
    overlay_nodes: usize,
    stubs: StubCount,
    cutoff: DegreeCutoff,
    tau_sub: u32,
    seeds: usize,
    max_attempts_per_stub: usize,
}

impl DiscoverAndAttempt {
    /// Creates a DAPA configuration targeting `overlay_nodes` peers, `m` stubs per joining
    /// peer, and a local time-to-live of `tau_sub` substrate hops.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero, `overlay_nodes < 3`, or
    /// `tau_sub` is zero.
    pub fn new(overlay_nodes: usize, m: usize, tau_sub: u32) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if overlay_nodes < 3 {
            return Err(TopologyError::InvalidConfig {
                reason: "dapa needs at least three overlay nodes",
            });
        }
        if tau_sub == 0 {
            return Err(TopologyError::InvalidConfig {
                reason: "tau_sub must be at least 1",
            });
        }
        Ok(DiscoverAndAttempt {
            overlay_nodes,
            stubs,
            cutoff: DegreeCutoff::Unbounded,
            tau_sub,
            seeds: DEFAULT_SEEDS,
            max_attempts_per_stub: DEFAULT_MAX_ATTEMPTS_PER_STUB,
        })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the number of seed peers that bootstrap the overlay (default 2). Seeds are
    /// chosen uniformly from the substrate and fully connected to each other.
    pub fn with_seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds.max(2);
        self
    }

    /// Sets the number of preferential-attachment draws per stub tolerated before falling
    /// back to a uniform eligible peer.
    pub fn with_max_attempts_per_stub(mut self, attempts: usize) -> Self {
        self.max_attempts_per_stub = attempts.max(1);
        self
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured local time-to-live `τ_sub`.
    pub fn tau_sub(&self) -> u32 {
        self.tau_sub
    }

    /// Returns the configured number of stubs `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    /// Returns the target overlay size `N_O`.
    pub fn overlay_nodes(&self) -> usize {
        self.overlay_nodes
    }

    fn validate(&self, substrate: &Graph) -> Result<()> {
        if substrate.node_count() < self.overlay_nodes {
            return Err(TopologyError::InvalidConfig {
                reason: "substrate must contain at least as many nodes as the target overlay",
            });
        }
        if self.seeds > self.overlay_nodes {
            return Err(TopologyError::InvalidConfig {
                reason: "seed count exceeds the target overlay size",
            });
        }
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the stub count m",
                });
            }
            if k_c < self.seeds - 1 {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the seed clique degree",
                });
            }
        }
        Ok(())
    }

    /// Builds the DAPA overlay on top of `substrate`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if the substrate is smaller than the target
    /// overlay or the cutoff is inconsistent with `m` or the seed count.
    pub fn generate_on<R: Rng + ?Sized>(
        &self,
        substrate: &Graph,
        rng: &mut R,
    ) -> Result<DapaOverlay> {
        self.validate(substrate)?;
        let m = self.stubs.get();
        let n_s = substrate.node_count();

        let mut overlay = Graph::new();
        let mut substrate_nodes: Vec<NodeId> = Vec::with_capacity(self.overlay_nodes);
        // substrate node index -> overlay node id (if a member).
        let mut membership: Vec<Option<NodeId>> = vec![None; n_s];

        // Candidate pool of substrate nodes not yet in the overlay; uniform draws from this
        // pool are equivalent to the paper's "pick a random substrate node, skip members".
        let mut candidates: Vec<NodeId> = substrate.nodes().collect();

        // Bootstrap: `seeds` random substrate nodes, fully connected to each other.
        let mut seed_overlay_ids = Vec::with_capacity(self.seeds);
        for _ in 0..self.seeds {
            let idx = rng.gen_range(0..candidates.len());
            let substrate_node = candidates.swap_remove(idx);
            let overlay_id = overlay.add_node();
            membership[substrate_node.index()] = Some(overlay_id);
            substrate_nodes.push(substrate_node);
            seed_overlay_ids.push(overlay_id);
        }
        for (i, &a) in seed_overlay_ids.iter().enumerate() {
            for &b in &seed_overlay_ids[i + 1..] {
                overlay.add_edge(a, b)?;
            }
        }

        let mut failed_discoveries = 0usize;
        let mut consecutive_failures = 0usize;
        let mut stalled = false;

        while overlay.node_count() < self.overlay_nodes {
            if candidates.is_empty() {
                stalled = true;
                break;
            }
            // Give up when no remaining candidate appears able to discover a peer; this can
            // only happen on substrates whose giant component is smaller than the target
            // overlay.
            if consecutive_failures > 20 * candidates.len() + 100 {
                stalled = true;
                break;
            }

            let pick = rng.gen_range(0..candidates.len());
            let candidate = candidates[pick];

            // Discovery flood: overlay peers within tau_sub substrate hops whose degree is
            // still below the cutoff (Alg. 4, lines 4-10).
            let horizon = traversal::horizon(substrate, candidate, self.tau_sub);
            let peers_in_horizon: Vec<NodeId> = horizon
                .iter()
                .filter_map(|&(substrate_peer, _)| membership[substrate_peer.index()])
                .filter(|&overlay_peer| self.cutoff.admits(overlay.degree(overlay_peer)))
                .collect();

            if peers_in_horizon.is_empty() {
                failed_discoveries += 1;
                consecutive_failures += 1;
                continue;
            }
            consecutive_failures = 0;
            candidates.swap_remove(pick);

            let overlay_id = overlay.add_node();
            membership[candidate.index()] = Some(overlay_id);
            substrate_nodes.push(candidate);

            if peers_in_horizon.len() <= m {
                // Short horizon: link to every visible peer (Alg. 4, lines 11-15).
                for &peer in &peers_in_horizon {
                    overlay.add_edge(overlay_id, peer)?;
                }
            } else {
                // Preferential attachment restricted to the horizon (Alg. 4, lines 17-29).
                let mut filled = 0usize;
                while filled < m {
                    match self.pick_peer(&overlay, &peers_in_horizon, overlay_id, rng) {
                        Some(peer) => {
                            overlay.add_edge(overlay_id, peer)?;
                            filled += 1;
                        }
                        None => break, // every horizon peer already linked or saturated
                    }
                }
            }
        }

        Ok(DapaOverlay {
            graph: overlay,
            substrate_nodes,
            failed_discoveries,
            stalled,
        })
    }

    /// Degree-preferential draw over the horizon peers, with the paper's rejection rule
    /// `rnd < k_peer / k_total`, falling back to a uniform eligible peer when the attempt
    /// budget is exhausted.
    fn pick_peer<R: Rng + ?Sized>(
        &self,
        overlay: &Graph,
        horizon_peers: &[NodeId],
        joining: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let k_total = overlay.total_degree().max(1);
        for _ in 0..self.max_attempts_per_stub {
            let peer = horizon_peers[rng.gen_range(0..horizon_peers.len())];
            if overlay.contains_edge(joining, peer) {
                continue;
            }
            let k = overlay.degree(peer);
            if !self.cutoff.admits(k) {
                continue;
            }
            if rng.gen::<f64>() < k as f64 / k_total as f64 {
                return Some(peer);
            }
        }
        // Budget exhausted (tiny horizon degrees versus a large overlay): fall back to a
        // uniform draw over the still-eligible horizon peers so the join terminates.
        let eligible: Vec<NodeId> = horizon_peers
            .iter()
            .copied()
            .filter(|&p| {
                !overlay.contains_edge(joining, p) && self.cutoff.admits(overlay.degree(p))
            })
            .collect();
        if eligible.is_empty() {
            None
        } else {
            Some(eligible[rng.gen_range(0..eligible.len())])
        }
    }
}

/// A [`TopologyGenerator`] that builds a geometric-random-network substrate internally and
/// runs DAPA on it, matching the paper's experimental setup (`N_S = 2 N_O`, `k̄ = 10`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DapaOverGrn {
    dapa: DiscoverAndAttempt,
    substrate_nodes: usize,
    substrate_average_degree: f64,
}

impl DapaOverGrn {
    /// Creates a DAPA-over-GRN configuration with the paper's defaults: a substrate of
    /// `2 × overlay_nodes` nodes and average degree 10.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`DiscoverAndAttempt::new`].
    pub fn new(overlay_nodes: usize, m: usize, tau_sub: u32) -> Result<Self> {
        Ok(DapaOverGrn {
            dapa: DiscoverAndAttempt::new(overlay_nodes, m, tau_sub)?,
            substrate_nodes: overlay_nodes * 2,
            substrate_average_degree: 10.0,
        })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.dapa = self.dapa.with_cutoff(cutoff);
        self
    }

    /// Overrides the substrate size (default `2 × overlay_nodes`).
    pub fn with_substrate_nodes(mut self, nodes: usize) -> Self {
        self.substrate_nodes = nodes;
        self
    }

    /// Overrides the substrate average degree (default 10).
    pub fn with_substrate_average_degree(mut self, k_bar: f64) -> Self {
        self.substrate_average_degree = k_bar;
        self
    }

    /// Returns the inner DAPA configuration.
    pub fn dapa(&self) -> &DiscoverAndAttempt {
        &self.dapa
    }
}

/// A [`TopologyGenerator`] that builds a two-dimensional torus mesh substrate internally
/// and runs DAPA on it — the paper's alternative substrate ("a two-dimensional regular
/// network (mesh with nodes connected to four neighbors in four different directions)",
/// §IV-B).
///
/// The mesh is the extreme-locality substrate: every node sees exactly four neighbors, so
/// the horizon within `τ_sub` hops grows only quadratically (versus exponentially on the
/// GRN), which makes the exponential-to-power-law transition of Fig. 4 happen at larger
/// `τ_sub` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DapaOverMesh {
    dapa: DiscoverAndAttempt,
    side: usize,
}

impl DapaOverMesh {
    /// Creates a DAPA-over-mesh configuration whose torus substrate holds at least
    /// `2 × overlay_nodes` nodes (the paper's substrate-to-overlay ratio).
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`DiscoverAndAttempt::new`].
    pub fn new(overlay_nodes: usize, m: usize, tau_sub: u32) -> Result<Self> {
        let dapa = DiscoverAndAttempt::new(overlay_nodes, m, tau_sub)?;
        let side = ((2 * overlay_nodes) as f64).sqrt().ceil().max(3.0) as usize;
        Ok(DapaOverMesh { dapa, side })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.dapa = self.dapa.with_cutoff(cutoff);
        self
    }

    /// Overrides the side length of the square torus substrate (default
    /// `ceil(sqrt(2 × overlay_nodes))`, minimum 3).
    pub fn with_side(mut self, side: usize) -> Self {
        self.side = side.max(3);
        self
    }

    /// Returns the side length of the torus substrate.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Returns the inner DAPA configuration.
    pub fn dapa(&self) -> &DiscoverAndAttempt {
        &self.dapa
    }
}

impl TopologyGenerator for DapaOverMesh {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        let substrate = sfo_graph::generators::mesh_2d(sfo_graph::generators::MeshConfig::torus(
            self.side, self.side,
        ))?;
        let overlay = self.dapa.generate_on(&substrate, rng)?;
        Ok(overlay.graph)
    }

    fn locality(&self) -> Locality {
        Locality::Local
    }

    fn name(&self) -> &'static str {
        "DAPA-mesh"
    }

    fn target_nodes(&self) -> usize {
        self.dapa.overlay_nodes
    }
}

impl TopologyGenerator for DapaOverGrn {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        let grn = GeometricRandomNetwork::with_average_degree(
            self.substrate_nodes,
            self.substrate_average_degree,
        )?;
        let (substrate, _) = grn.generate(rng)?;
        let overlay = self.dapa.generate_on(&substrate, rng)?;
        Ok(overlay.graph)
    }

    fn locality(&self) -> Locality {
        Locality::Local
    }

    fn name(&self) -> &'static str {
        "DAPA"
    }

    fn target_nodes(&self) -> usize {
        self.dapa.overlay_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{mesh_2d, MeshConfig};
    use sfo_graph::metrics;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn grn_substrate(nodes: usize, seed: u64) -> Graph {
        let mut r = rng(seed);
        GeometricRandomNetwork::with_average_degree(nodes, 10.0)
            .unwrap()
            .generate(&mut r)
            .unwrap()
            .0
    }

    #[test]
    fn configuration_validation() {
        assert!(DiscoverAndAttempt::new(2, 1, 2).is_err());
        assert!(DiscoverAndAttempt::new(100, 0, 2).is_err());
        assert!(DiscoverAndAttempt::new(100, 1, 0).is_err());
        let substrate = grn_substrate(200, 1);
        let too_small_substrate = DiscoverAndAttempt::new(500, 1, 2)
            .unwrap()
            .generate_on(&substrate, &mut rng(1));
        assert!(too_small_substrate.is_err());
        let bad_cutoff = DiscoverAndAttempt::new(100, 3, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate_on(&substrate, &mut rng(1));
        assert!(bad_cutoff.is_err());
        let bad_seed_cutoff = DiscoverAndAttempt::new(100, 1, 2)
            .unwrap()
            .with_seeds(6)
            .with_cutoff(DegreeCutoff::hard(3))
            .generate_on(&substrate, &mut rng(1));
        assert!(bad_seed_cutoff.is_err());
    }

    #[test]
    fn builds_overlay_of_requested_size_on_grn() {
        let substrate = grn_substrate(2_000, 2);
        let overlay = DiscoverAndAttempt::new(1_000, 2, 4)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(40))
            .generate_on(&substrate, &mut rng(3))
            .unwrap();
        assert_eq!(overlay.peer_count(), 1_000);
        assert!(!overlay.stalled);
        assert_eq!(overlay.substrate_nodes.len(), 1_000);
        assert!(overlay.graph.max_degree().unwrap() <= 40);
        overlay.graph.assert_consistent();
        // Every overlay peer maps to a distinct substrate node.
        let mut mapped: Vec<NodeId> = overlay.substrate_nodes.clone();
        mapped.sort_unstable();
        mapped.dedup();
        assert_eq!(mapped.len(), 1_000);
    }

    #[test]
    fn works_on_a_mesh_substrate() {
        let substrate = mesh_2d(MeshConfig::torus(40, 40)).unwrap();
        let overlay = DiscoverAndAttempt::new(600, 1, 6)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(20))
            .generate_on(&substrate, &mut rng(5))
            .unwrap();
        assert_eq!(overlay.peer_count(), 600);
        assert!(overlay.graph.max_degree().unwrap() <= 20);
    }

    #[test]
    fn minimum_degree_can_fall_below_m() {
        // Paper, Fig. 4(d-f): short horizons leave some peers with fewer than m links.
        let substrate = grn_substrate(2_000, 7);
        let overlay = DiscoverAndAttempt::new(1_000, 3, 2)
            .unwrap()
            .generate_on(&substrate, &mut rng(7))
            .unwrap();
        assert!(
            overlay.graph.min_degree().unwrap() >= 1,
            "every member found at least one peer"
        );
        let below_m = overlay.graph.degrees().iter().filter(|&&k| k < 3).count();
        assert!(
            below_m > 0,
            "with tau_sub=2 and m=3 some peers should be short of stubs"
        );
    }

    #[test]
    fn larger_tau_sub_produces_heavier_tails() {
        // Paper, Fig. 4: small tau_sub gives an exponential-like distribution, larger
        // tau_sub recovers a power law, i.e. larger hubs for the same overlay size.
        let substrate = grn_substrate(2_000, 11);
        let short = DiscoverAndAttempt::new(1_000, 1, 2)
            .unwrap()
            .generate_on(&substrate, &mut rng(11))
            .unwrap();
        let long = DiscoverAndAttempt::new(1_000, 1, 20)
            .unwrap()
            .generate_on(&substrate, &mut rng(11))
            .unwrap();
        assert!(
            long.graph.max_degree().unwrap() > short.graph.max_degree().unwrap(),
            "tau_sub=20 max degree {} should exceed tau_sub=2 max degree {}",
            long.graph.max_degree().unwrap(),
            short.graph.max_degree().unwrap()
        );
    }

    #[test]
    fn hard_cutoff_is_respected_even_with_long_horizons() {
        let substrate = grn_substrate(1_500, 13);
        let overlay = DiscoverAndAttempt::new(700, 2, 10)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(10))
            .generate_on(&substrate, &mut rng(13))
            .unwrap();
        assert!(overlay.graph.max_degree().unwrap() <= 10);
        let hist = metrics::degree_histogram(&overlay.graph);
        assert!(hist.count(10) > 0, "the cutoff bin should accumulate nodes");
    }

    #[test]
    fn stalls_gracefully_on_a_fragmented_substrate() {
        // A substrate of isolated nodes: only the seed clique can ever exist, so the build
        // stalls instead of looping forever.
        let substrate = Graph::with_nodes(50);
        let overlay = DiscoverAndAttempt::new(20, 1, 3)
            .unwrap()
            .generate_on(&substrate, &mut rng(17))
            .unwrap();
        assert!(overlay.stalled);
        assert!(overlay.peer_count() < 20);
        assert!(overlay.failed_discoveries > 0);
    }

    #[test]
    fn trait_object_usage_over_grn() {
        let gen: Box<dyn TopologyGenerator> = Box::new(
            DapaOverGrn::new(400, 2, 4)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(40)),
        );
        assert_eq!(gen.name(), "DAPA");
        assert_eq!(gen.locality(), Locality::Local);
        assert_eq!(gen.target_nodes(), 400);
        let g = gen.generate(&mut rng(19)).unwrap();
        assert_eq!(g.node_count(), 400);
        assert!(g.max_degree().unwrap() <= 40);
    }

    #[test]
    fn trait_object_usage_over_mesh() {
        let gen: Box<dyn TopologyGenerator> = Box::new(
            DapaOverMesh::new(300, 1, 6)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(15)),
        );
        assert_eq!(gen.name(), "DAPA-mesh");
        assert_eq!(gen.locality(), Locality::Local);
        assert_eq!(gen.target_nodes(), 300);
        let g = gen.generate(&mut rng(37)).unwrap();
        assert_eq!(g.node_count(), 300);
        assert!(g.max_degree().unwrap() <= 15);
        g.assert_consistent();
    }

    #[test]
    fn mesh_wrapper_sizes_its_substrate_and_accepts_overrides() {
        let gen = DapaOverMesh::new(200, 1, 4).unwrap();
        // ceil(sqrt(400)) = 20
        assert_eq!(gen.side(), 20);
        assert_eq!(gen.dapa().overlay_nodes(), 200);
        let widened = gen.with_side(25);
        assert_eq!(widened.side(), 25);
        let tiny = DapaOverMesh::new(3, 1, 2).unwrap();
        assert!(tiny.side() >= 3, "torus substrate needs side >= 3");
    }

    #[test]
    fn mesh_substrate_horizons_grow_slower_than_grn_horizons() {
        // The same tau_sub sees far fewer peers on a 4-regular mesh than on a k̄=10 GRN, so
        // the mesh overlay's largest hub is no larger than the GRN overlay's.
        let grn = DapaOverGrn::new(500, 1, 4).unwrap();
        let mesh = DapaOverMesh::new(500, 1, 4).unwrap();
        let g_grn = TopologyGenerator::generate(&grn, &mut rng(41)).unwrap();
        let g_mesh = TopologyGenerator::generate(&mesh, &mut rng(41)).unwrap();
        assert!(
            g_mesh.max_degree().unwrap() <= g_grn.max_degree().unwrap(),
            "mesh hub {} should not exceed GRN hub {}",
            g_mesh.max_degree().unwrap(),
            g_grn.max_degree().unwrap()
        );
    }

    #[test]
    fn grn_wrapper_accessors_and_overrides() {
        let gen = DapaOverGrn::new(300, 1, 6)
            .unwrap()
            .with_substrate_nodes(900)
            .with_substrate_average_degree(8.0);
        assert_eq!(gen.dapa().overlay_nodes(), 300);
        assert_eq!(gen.dapa().tau_sub(), 6);
        assert_eq!(gen.dapa().stubs(), 1);
        let g = TopologyGenerator::generate(&gen, &mut rng(23)).unwrap();
        assert_eq!(g.node_count(), 300);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let substrate = grn_substrate(1_000, 29);
        let gen = DiscoverAndAttempt::new(500, 2, 4)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(30));
        let a = gen.generate_on(&substrate, &mut rng(31)).unwrap();
        let b = gen.generate_on(&substrate, &mut rng(31)).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.substrate_nodes, b.substrate_nodes);
    }
}
