//! # sfo-core
//!
//! Scale-free overlay topology generators with hard degree cutoffs, implementing the four
//! construction mechanisms studied in *"Scale-Free Overlay Topologies with Hard Cutoffs for
//! Unstructured Peer-to-Peer Networks"* (Guclu & Yuksel, ICDCS 2007):
//!
//! | Mechanism | Module | Information used | Paper reference |
//! |---|---|---|---|
//! | Preferential Attachment (PA) | [`pa`] | global | Alg. 1, §III-B |
//! | Configuration Model (CM) | [`cm`] | global | Alg. 2, §III-C |
//! | Hop-and-Attempt PA (HAPA) | [`hapa`] | partial | Alg. 3, §IV-A |
//! | Discover-and-Attempt PA (DAPA) | [`dapa`] | local | Alg. 4, §IV-B |
//!
//! All four enforce an optional *hard cutoff* `k_c` on node degree: a peer never accepts
//! more than `k_c` links, modelling peers that refuse to store large neighbor tables. The
//! [`cutoff`] module provides the natural-cutoff theory the paper compares against, and
//! [`powerlaw`] samples the bounded power-law degree sequences the configuration model
//! needs.
//!
//! The modified preferential-attachment mechanisms the paper cites in §III-C as alternative
//! routes to tunable exponents are implemented alongside the four core mechanisms:
//!
//! | Mechanism | Module | Paper reference |
//! |---|---|---|
//! | Nonlinear PA (`Π ∝ k^α`) | [`nonlinear`] | refs. \[52, 53\] |
//! | Fitness model (`Π ∝ η k`) | [`fitness`] | refs. \[54, 55\] |
//! | Local events (add/rewire/grow) | [`local_events`] | ref. \[7\] |
//! | Initial attractiveness (`Π ∝ k + a`, `γ = 3 + a/m`) | [`attractiveness`] | §III-C exponent tuning |
//! | Uncorrelated CM (structural cutoff) | [`ucm`] | ref. \[59\] |
//!
//! # Example
//!
//! ```
//! use sfo_core::{pa::PreferentialAttachment, DegreeCutoff, TopologyGenerator};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), sfo_core::TopologyError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let generator = PreferentialAttachment::new(1_000, 2)?.with_cutoff(DegreeCutoff::hard(20));
//! let graph = generator.generate(&mut rng)?;
//! assert_eq!(graph.node_count(), 1_000);
//! assert!(graph.max_degree().unwrap() <= 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod generator;

pub mod attractiveness;
pub mod cm;
pub mod cutoff;
pub mod dapa;
pub mod fitness;
pub mod hapa;
pub mod local_events;
pub mod nonlinear;
pub mod pa;
pub mod powerlaw;
pub mod ucm;

pub use config::{DegreeCutoff, StubCount};
pub use error::TopologyError;
pub use generator::{DynTopologyGenerator, Locality, TopologyGenerator};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = TopologyError> = std::result::Result<T, E>;
