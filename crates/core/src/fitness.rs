//! Fitness-based preferential attachment (paper §III-C, refs. \[54, 55\]).
//!
//! The paper lists "fitness models \[54\], \[55\]" among the modified preferential-attachment
//! mechanisms that yield power-law networks with exponents other than `γ = 3`. In the
//! Bianconi-Barabási formulation every node `i` carries an intrinsic *fitness* `η_i` drawn
//! from a fixed distribution when it joins, and a new node attaches to `i` with probability
//! proportional to `η_i · k_i`. Fitter nodes acquire links faster than their age alone
//! would allow ("fit get richer"), which models heterogeneous peers — well-provisioned,
//! long-lived peers versus casual ones — in an unstructured P2P overlay.
//!
//! With a uniform fitness distribution the degree distribution remains a power law with a
//! logarithmic correction; with a single-valued (degenerate) distribution the model reduces
//! exactly to linear preferential attachment. As with every other generator in this crate,
//! an optional hard cutoff `k_c` caps the degree any peer will accept.

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{generators::complete_graph, Graph, NodeId};

/// Default number of candidate draws per stub before the generator falls back to a direct
/// weighted scan over all eligible nodes.
pub const DEFAULT_MAX_ATTEMPTS: usize = 10_000;

/// Distribution the per-node fitness values are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FitnessDistribution {
    /// Every node has the same fitness; the model reduces to linear preferential
    /// attachment.
    Uniform,
    /// Fitness drawn uniformly at random from `[min, max]`.
    UniformRange {
        /// Lower bound of the fitness interval (must be positive).
        min: f64,
        /// Upper bound of the fitness interval.
        max: f64,
    },
    /// Fitness drawn from an exponential distribution with the given rate; produces a
    /// small population of much-fitter-than-average peers.
    Exponential {
        /// Rate parameter `λ` of the exponential distribution (must be positive).
        rate: f64,
    },
}

impl FitnessDistribution {
    fn validate(&self) -> Result<()> {
        match *self {
            FitnessDistribution::Uniform => Ok(()),
            FitnessDistribution::UniformRange { min, max } => {
                if !(min.is_finite() && max.is_finite()) || min <= 0.0 || max < min {
                    Err(TopologyError::InvalidConfig {
                        reason: "fitness range must satisfy 0 < min <= max and be finite",
                    })
                } else {
                    Ok(())
                }
            }
            FitnessDistribution::Exponential { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    Err(TopologyError::InvalidConfig {
                        reason: "fitness exponential rate must be positive and finite",
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            FitnessDistribution::Uniform => 1.0,
            FitnessDistribution::UniformRange { min, max } => {
                if max == min {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
            FitnessDistribution::Exponential { rate } => {
                // Inverse-CDF sampling, shifted away from exactly zero so every node keeps a
                // nonzero chance of attracting links.
                let u: f64 = gen_open_unit(rng);
                -u.ln() / rate
            }
        }
    }
}

/// Draws a uniform sample from the open interval (0, 1], so the exponential sampler never
/// takes the logarithm of zero.
fn gen_open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// Builder/configuration for the fitness-model generator.
///
/// # Example
///
/// ```
/// use sfo_core::{fitness::{FitnessDistribution, FitnessModel}, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let graph = FitnessModel::new(500, 2)?
///     .with_distribution(FitnessDistribution::UniformRange { min: 0.1, max: 1.0 })
///     .with_cutoff(DegreeCutoff::hard(30))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 500);
/// assert!(graph.max_degree().unwrap() <= 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessModel {
    nodes: usize,
    stubs: StubCount,
    distribution: FitnessDistribution,
    cutoff: DegreeCutoff,
    max_attempts: usize,
}

impl FitnessModel {
    /// Creates a fitness-model configuration for `nodes` nodes and `m` stubs per joining
    /// node, with uniform (degenerate) fitness and no hard cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero or `nodes < m + 2`.
    pub fn new(nodes: usize, m: usize) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < m + 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "fitness model needs at least m + 2 nodes",
            });
        }
        Ok(FitnessModel {
            nodes,
            stubs,
            distribution: FitnessDistribution::Uniform,
            cutoff: DegreeCutoff::Unbounded,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Sets the fitness distribution.
    pub fn with_distribution(mut self, distribution: FitnessDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the rejection-sampling attempt budget per stub.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Returns the configured fitness distribution.
    pub fn distribution(&self) -> FitnessDistribution {
        self.distribution
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured number of stubs `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    fn validate(&self) -> Result<()> {
        self.distribution.validate()?;
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the stub count m",
                });
            }
        }
        Ok(())
    }

    /// Generates one topology and returns it together with the fitness assigned to every
    /// node (indexed by node id).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations.
    pub fn generate_with_fitness<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<(Graph, Vec<f64>)> {
        self.validate()?;
        let m = self.stubs.get();
        let seed_size = m + 1;
        let mut graph = complete_graph(seed_size)?;
        graph.add_nodes(self.nodes - seed_size);

        let mut fitness: Vec<f64> = (0..self.nodes)
            .map(|_| self.distribution.sample(rng))
            .collect();
        // Guard against pathological zero fitness (possible only through float underflow).
        for f in &mut fitness {
            if *f <= 0.0 {
                *f = f64::MIN_POSITIVE;
            }
        }

        for i in seed_size..self.nodes {
            let new_node = NodeId::new(i);
            for _ in 0..m {
                let target = self
                    .pick_rejection(&graph, &fitness, new_node, i, rng)
                    .or_else(|| self.fallback_weighted_scan(&graph, &fitness, new_node, i, rng));
                let target = match target {
                    Some(t) => t,
                    None => break,
                };
                graph.add_edge(new_node, target)?;
            }
        }
        Ok((graph, fitness))
    }

    /// Generates one topology, discarding the fitness values.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        self.generate_with_fitness(rng).map(|(graph, _)| graph)
    }

    fn pick_rejection<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        fitness: &[f64],
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let max_weight = (0..existing)
            .map(NodeId::new)
            .filter(|&n| n != new_node)
            .map(|n| fitness[n.index()] * graph.degree(n) as f64)
            .fold(0.0f64, f64::max);
        if max_weight <= 0.0 {
            return None;
        }
        for _ in 0..self.max_attempts {
            let candidate = NodeId::new(rng.gen_range(0..existing));
            if candidate == new_node {
                continue;
            }
            let k = graph.degree(candidate);
            if !self.cutoff.admits(k) || graph.contains_edge(new_node, candidate) {
                continue;
            }
            let weight = fitness[candidate.index()] * k as f64;
            let accept: f64 = rng.gen();
            if accept < weight / max_weight {
                return Some(candidate);
            }
        }
        None
    }

    fn fallback_weighted_scan<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        fitness: &[f64],
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let eligible: Vec<(NodeId, f64)> = (0..existing)
            .map(NodeId::new)
            .filter(|&n| {
                n != new_node
                    && self.cutoff.admits(graph.degree(n))
                    && !graph.contains_edge(new_node, n)
            })
            .map(|n| (n, fitness[n.index()] * graph.degree(n).max(1) as f64))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let total: f64 = eligible.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen::<f64>() * total;
        for (node, weight) in &eligible {
            if pick < *weight {
                return Some(*node);
            }
            pick -= weight;
        }
        Some(eligible.last().expect("eligible list is non-empty").0)
    }
}

impl TopologyGenerator for FitnessModel {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        FitnessModel::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "Fitness"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::traversal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(FitnessModel::new(100, 0).is_err());
        assert!(FitnessModel::new(3, 2).is_err());
        let bad_range = FitnessModel::new(100, 2)
            .unwrap()
            .with_distribution(FitnessDistribution::UniformRange { min: 0.0, max: 1.0 })
            .generate(&mut rng(0));
        assert!(bad_range.is_err());
        let inverted_range = FitnessModel::new(100, 2)
            .unwrap()
            .with_distribution(FitnessDistribution::UniformRange { min: 2.0, max: 1.0 })
            .generate(&mut rng(0));
        assert!(inverted_range.is_err());
        let bad_rate = FitnessModel::new(100, 2)
            .unwrap()
            .with_distribution(FitnessDistribution::Exponential { rate: 0.0 })
            .generate(&mut rng(0));
        assert!(bad_rate.is_err());
        let bad_cutoff = FitnessModel::new(100, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate(&mut rng(0));
        assert!(matches!(
            bad_cutoff,
            Err(TopologyError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn generates_requested_size_and_stays_connected() {
        for dist in [
            FitnessDistribution::Uniform,
            FitnessDistribution::UniformRange { min: 0.1, max: 1.0 },
            FitnessDistribution::Exponential { rate: 1.0 },
        ] {
            let g = FitnessModel::new(400, 2)
                .unwrap()
                .with_distribution(dist)
                .generate(&mut rng(1))
                .unwrap();
            assert_eq!(g.node_count(), 400, "{dist:?}");
            assert!(g.min_degree().unwrap() >= 2, "{dist:?}");
            assert!(traversal::is_connected(&g), "{dist:?}");
            g.assert_consistent();
        }
    }

    #[test]
    fn hard_cutoff_is_never_exceeded() {
        let g = FitnessModel::new(800, 2)
            .unwrap()
            .with_distribution(FitnessDistribution::Exponential { rate: 0.5 })
            .with_cutoff(DegreeCutoff::hard(15))
            .generate(&mut rng(3))
            .unwrap();
        assert!(g.max_degree().unwrap() <= 15);
    }

    #[test]
    fn fitness_vector_has_one_entry_per_node() {
        let (g, fitness) = FitnessModel::new(300, 1)
            .unwrap()
            .with_distribution(FitnessDistribution::UniformRange { min: 0.2, max: 0.9 })
            .generate_with_fitness(&mut rng(5))
            .unwrap();
        assert_eq!(fitness.len(), g.node_count());
        assert!(fitness.iter().all(|&f| (0.2..=0.9).contains(&f)));
    }

    #[test]
    fn fitter_nodes_attract_more_links_on_average() {
        // Split the nodes into a high-fitness and a low-fitness half (excluding the seed)
        // and check that the high-fitness half holds more degree in total.
        let (g, fitness) = FitnessModel::new(2_000, 1)
            .unwrap()
            .with_distribution(FitnessDistribution::UniformRange {
                min: 0.05,
                max: 1.0,
            })
            .generate_with_fitness(&mut rng(7))
            .unwrap();
        let mut high = 0usize;
        let mut low = 0usize;
        for (i, &f) in fitness.iter().enumerate() {
            if i < 2 {
                continue; // skip the seed nodes, whose age advantage dominates
            }
            let degree = g.degree(NodeId::new(i));
            if f > 0.525 {
                high += degree;
            } else {
                low += degree;
            }
        }
        assert!(
            high > low,
            "high-fitness half should hold more total degree ({high} vs {low})"
        );
    }

    #[test]
    fn degenerate_fitness_is_heavy_tailed_like_pa() {
        let g = FitnessModel::new(2_000, 1)
            .unwrap()
            .generate(&mut rng(11))
            .unwrap();
        assert!(g.max_degree().unwrap() as f64 > 5.0 * g.average_degree());
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> = Box::new(FitnessModel::new(60, 1).unwrap());
        assert_eq!(gen.name(), "Fitness");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 60);
        let g = gen.generate(&mut rng(13)).unwrap();
        assert_eq!(g.node_count(), 60);
    }

    #[test]
    fn accessors_report_configuration() {
        let gen = FitnessModel::new(100, 3)
            .unwrap()
            .with_distribution(FitnessDistribution::Exponential { rate: 2.0 })
            .with_cutoff(DegreeCutoff::hard(9))
            .with_max_attempts(0);
        assert_eq!(gen.stubs(), 3);
        assert_eq!(gen.cutoff(), DegreeCutoff::hard(9));
        assert_eq!(
            gen.distribution(),
            FitnessDistribution::Exponential { rate: 2.0 }
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = FitnessModel::new(300, 2)
            .unwrap()
            .with_distribution(FitnessDistribution::UniformRange { min: 0.1, max: 1.0 })
            .with_cutoff(DegreeCutoff::hard(25));
        let a = gen.generate(&mut rng(41)).unwrap();
        let b = gen.generate(&mut rng(41)).unwrap();
        assert_eq!(a, b);
    }
}
