//! Natural-cutoff theory for finite scale-free networks (paper, §III-A).
//!
//! A finite scale-free network cannot contain arbitrarily large hubs. Two standard
//! estimates of the largest expected degree (the *natural cutoff* `k_nc`) are implemented:
//!
//! * Aiello, Chung & Lu: the degree above which the expected number of nodes is one,
//!   `N · P(k_nc) ~ 1`, giving `k_nc ~ N^{1/γ}` (paper, eqs. 1-2).
//! * Dorogovtsev & Mendes: the degree above which one expects at most one node in the
//!   tail, `N · ∫_{k_nc}^∞ P(k) dk ~ 1`, giving `k_nc ~ m · N^{1/(γ-1)}` (paper, eqs. 3-4).
//!
//! For the Barabási-Albert preferential-attachment model (`γ = 3`) the latter reduces to
//! `k_nc ~ m · √N` (paper, eq. 5). Hard cutoffs studied in the paper are *smaller* than
//! these natural values, which is what reshapes the degree distribution.

use crate::{Result, TopologyError};

fn validate_gamma(gamma: f64) -> Result<()> {
    if !gamma.is_finite() || gamma <= 1.0 {
        return Err(TopologyError::InvalidConfig {
            reason: "power-law exponent gamma must be finite and greater than 1",
        });
    }
    Ok(())
}

fn validate_nodes(nodes: usize) -> Result<()> {
    if nodes == 0 {
        return Err(TopologyError::InvalidConfig {
            reason: "network size must be positive",
        });
    }
    Ok(())
}

/// Natural cutoff according to Aiello, Chung & Lu: `k_nc = N^{1/γ}` (paper, eq. 2).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidConfig`] if `nodes` is zero or `gamma <= 1`.
pub fn natural_cutoff_aiello(nodes: usize, gamma: f64) -> Result<f64> {
    validate_nodes(nodes)?;
    validate_gamma(gamma)?;
    Ok((nodes as f64).powf(1.0 / gamma))
}

/// Natural cutoff according to Dorogovtsev & Mendes: `k_nc = m · N^{1/(γ-1)}`
/// (paper, eq. 4).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidConfig`] if `nodes` is zero, `m` is zero, or
/// `gamma <= 1`.
pub fn natural_cutoff_dorogovtsev(nodes: usize, m: usize, gamma: f64) -> Result<f64> {
    validate_nodes(nodes)?;
    validate_gamma(gamma)?;
    if m == 0 {
        return Err(TopologyError::InvalidConfig {
            reason: "stub count m must be at least 1",
        });
    }
    Ok(m as f64 * (nodes as f64).powf(1.0 / (gamma - 1.0)))
}

/// Natural cutoff of the Barabási-Albert preferential-attachment model (`γ = 3`):
/// `k_nc = m · √N` (paper, eq. 5).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidConfig`] if `nodes` or `m` is zero.
pub fn pa_natural_cutoff(nodes: usize, m: usize) -> Result<f64> {
    natural_cutoff_dorogovtsev(nodes, m, 3.0)
}

/// Returns `true` if a hard cutoff `k_c` is actually binding for a network of `nodes`
/// nodes built with `m` stubs and exponent `gamma`, i.e. whether `k_c` lies below the
/// Dorogovtsev natural cutoff.
///
/// # Errors
///
/// Propagates the validation errors of [`natural_cutoff_dorogovtsev`].
pub fn cutoff_is_binding(k_c: usize, nodes: usize, m: usize, gamma: f64) -> Result<bool> {
    Ok((k_c as f64) < natural_cutoff_dorogovtsev(nodes, m, gamma)?)
}

/// Expected diameter scaling class of a scale-free network (paper, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiameterClass {
    /// `d ~ ln ln N` (ultra-small world), for `2 < γ < 3`.
    UltraSmall,
    /// `d ~ ln N / ln ln N`, for `γ = 3` and `m ≥ 2`.
    LogOverLogLog,
    /// `d ~ ln N`, for `γ = 3, m = 1` (scale-free tree) or `γ > 3`.
    Logarithmic,
}

/// Classifies the expected diameter scaling of a scale-free network with exponent `gamma`
/// and `m` stubs per node, following the paper's Table I.
///
/// Values of `gamma` within `1e-6` of 3 are treated as exactly 3.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidConfig`] if `gamma <= 2` (Table I does not cover that
/// regime) or `m` is zero.
pub fn diameter_class(gamma: f64, m: usize) -> Result<DiameterClass> {
    if m == 0 {
        return Err(TopologyError::InvalidConfig {
            reason: "stub count m must be at least 1",
        });
    }
    if !gamma.is_finite() || gamma <= 2.0 {
        return Err(TopologyError::InvalidConfig {
            reason: "diameter classification requires gamma greater than 2",
        });
    }
    let is_three = (gamma - 3.0).abs() < 1e-6;
    Ok(if is_three {
        if m >= 2 {
            DiameterClass::LogOverLogLog
        } else {
            DiameterClass::Logarithmic
        }
    } else if gamma < 3.0 {
        DiameterClass::UltraSmall
    } else {
        DiameterClass::Logarithmic
    })
}

/// Predicted diameter (up to a multiplicative constant) for a network of `nodes` nodes in
/// the given [`DiameterClass`]; used to compare measured growth rates against Table I.
pub fn predicted_diameter(class: DiameterClass, nodes: usize) -> f64 {
    let n = (nodes.max(3)) as f64;
    match class {
        DiameterClass::UltraSmall => n.ln().ln(),
        DiameterClass::LogOverLogLog => n.ln() / n.ln().ln(),
        DiameterClass::Logarithmic => n.ln(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aiello_cutoff_matches_formula() {
        let k = natural_cutoff_aiello(100_000, 2.5).unwrap();
        assert!((k - 100_000f64.powf(0.4)).abs() < 1e-9);
    }

    #[test]
    fn dorogovtsev_cutoff_matches_formula() {
        let k = natural_cutoff_dorogovtsev(10_000, 2, 3.0).unwrap();
        assert!(
            (k - 200.0).abs() < 1e-9,
            "m sqrt(N) = 2 * 100 = 200, got {k}"
        );
        let pa = pa_natural_cutoff(10_000, 2).unwrap();
        assert!((pa - k).abs() < 1e-12);
    }

    #[test]
    fn aiello_is_smaller_than_dorogovtsev_for_gamma_below_infinity() {
        // For gamma in (2,3), 1/gamma < 1/(gamma-1), so the Aiello estimate grows slower.
        let a = natural_cutoff_aiello(1_000_000, 2.5).unwrap();
        let d = natural_cutoff_dorogovtsev(1_000_000, 1, 2.5).unwrap();
        assert!(a < d);
    }

    #[test]
    fn binding_cutoffs_are_detected() {
        // Natural cutoff for N=1e4, m=1, gamma=3 is 100; 10 is binding, 500 is not.
        assert!(cutoff_is_binding(10, 10_000, 1, 3.0).unwrap());
        assert!(!cutoff_is_binding(500, 10_000, 1, 3.0).unwrap());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(natural_cutoff_aiello(0, 2.5).is_err());
        assert!(natural_cutoff_aiello(10, 1.0).is_err());
        assert!(natural_cutoff_aiello(10, f64::NAN).is_err());
        assert!(natural_cutoff_dorogovtsev(10, 0, 2.5).is_err());
        assert!(diameter_class(2.5, 0).is_err());
        assert!(diameter_class(1.9, 1).is_err());
    }

    #[test]
    fn diameter_classes_follow_table_one() {
        assert_eq!(diameter_class(2.2, 1).unwrap(), DiameterClass::UltraSmall);
        assert_eq!(diameter_class(2.6, 3).unwrap(), DiameterClass::UltraSmall);
        assert_eq!(
            diameter_class(3.0, 2).unwrap(),
            DiameterClass::LogOverLogLog
        );
        assert_eq!(diameter_class(3.0, 1).unwrap(), DiameterClass::Logarithmic);
        assert_eq!(diameter_class(3.5, 2).unwrap(), DiameterClass::Logarithmic);
    }

    #[test]
    fn predicted_diameters_are_ordered() {
        let n = 100_000;
        let ultra = predicted_diameter(DiameterClass::UltraSmall, n);
        let middle = predicted_diameter(DiameterClass::LogOverLogLog, n);
        let log = predicted_diameter(DiameterClass::Logarithmic, n);
        assert!(
            ultra < middle && middle < log,
            "{ultra} < {middle} < {log} expected"
        );
    }
}
