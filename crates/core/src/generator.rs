//! The [`TopologyGenerator`] trait and the locality classification of Table II.

use crate::Result;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::Graph;
use std::fmt;

/// How much information about the current overlay a construction mechanism needs when a
/// new peer joins (the paper's Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// The joining peer needs global knowledge of the topology (all degrees, or the full
    /// degree sequence). PA and CM fall in this class.
    Global,
    /// The joining peer needs partial global knowledge (for example, the total degree of
    /// the network) but discovers candidate neighbors by local hopping. HAPA falls in this
    /// class.
    Partial,
    /// The joining peer uses only information reachable within a bounded local horizon of
    /// the substrate network. DAPA falls in this class.
    Local,
}

impl fmt::Display for Locality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locality::Global => write!(f, "global"),
            Locality::Partial => write!(f, "partial"),
            Locality::Local => write!(f, "local"),
        }
    }
}

/// A mechanism that constructs an overlay topology.
///
/// Implementations are deterministic given the random-number generator, so experiments can
/// be reproduced by seeding. The trait is object safe: the experiment harness stores
/// `Box<dyn TopologyGenerator>` values to sweep over mechanisms uniformly.
///
/// # Example
///
/// ```
/// use sfo_core::{pa::PreferentialAttachment, Locality, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let generator = PreferentialAttachment::new(200, 2)?;
/// assert_eq!(generator.locality(), Locality::Global);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let graph = generator.generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 200);
/// # Ok(())
/// # }
/// ```
pub trait TopologyGenerator {
    /// Generates one realization of the overlay topology.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TopologyError`] if the configuration is invalid or if hard cutoffs
    /// make it impossible to attach a node within the generator's attempt budget.
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph>;

    /// Returns how much global information the mechanism requires (Table II).
    fn locality(&self) -> Locality;

    /// Returns a short human-readable name, used in experiment output ("PA", "CM", ...).
    fn name(&self) -> &'static str;

    /// Returns the number of nodes a generated overlay will contain.
    fn target_nodes(&self) -> usize;
}

/// A boxed, thread-safe [`TopologyGenerator`] trait object.
///
/// This is the currency of spec-driven layers (`sfo-scenario` and the experiment
/// harness): a declarative topology description is compiled into a
/// `DynTopologyGenerator` once, and everything downstream — realization loops, thread
/// fan-out, sweeps — works against the trait object instead of matching on concrete
/// generator types. All generators in this crate are plain-data configurations, so they
/// satisfy the `Send + Sync` bounds automatically.
pub type DynTopologyGenerator = Box<dyn TopologyGenerator + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_generator_is_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DynTopologyGenerator>();
    }

    #[test]
    fn locality_display() {
        assert_eq!(Locality::Global.to_string(), "global");
        assert_eq!(Locality::Partial.to_string(), "partial");
        assert_eq!(Locality::Local.to_string(), "local");
    }

    #[test]
    fn trait_is_object_safe() {
        fn assert_object_safe(_: Option<&dyn TopologyGenerator>) {}
        assert_object_safe(None);
    }
}
