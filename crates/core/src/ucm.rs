//! Uncorrelated Configuration Model (UCM) with the structural cutoff (paper ref. \[59\]).
//!
//! The paper's configuration-model discussion cites Catanzaro, Boguñá & Pastor-Satorras
//! \[59\] for the observation that wiring a heavy-tailed degree sequence whose maximum degree
//! exceeds the *structural cutoff* `k_s ∼ √(⟨k⟩ N)` necessarily creates degree correlations
//! or multi-edges. The UCM avoids both by (i) truncating the degree-sequence support at
//! `√N` and (ii) wiring stubs by *rejection*: a candidate pair is discarded (and redrawn)
//! whenever it would create a self-loop or a parallel edge, instead of being deleted
//! afterwards. The result is a genuinely uncorrelated simple power-law network whose degree
//! sequence is realized exactly (no stub loss), the cleanest "optimal" baseline against
//! which the cutoff-carrying generators can be compared.
//!
//! A hard cutoff below the structural cutoff simply narrows the support further, which is
//! the regime the paper operates in ("we work with hard cutoff values typically less than
//! the natural cutoff").

use crate::powerlaw::BoundedPowerLaw;
use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{Graph, NodeId};

/// Default number of times the wiring phase restarts from a fresh shuffle before giving up
/// on placing the remaining stubs and dropping them.
pub const DEFAULT_MAX_RESTARTS: usize = 50;

/// Outcome of a UCM run.
#[derive(Debug, Clone, PartialEq)]
pub struct UcmOutcome {
    /// The generated simple graph.
    pub graph: Graph,
    /// The degree sequence that was targeted before wiring.
    pub target_degrees: Vec<usize>,
    /// Stubs that could not be wired without creating a self-loop or parallel edge after
    /// the restart budget was exhausted (dropped in pairs; usually zero).
    pub unplaced_stubs: usize,
    /// Number of wiring restarts that were needed.
    pub restarts: usize,
}

/// Builder/configuration for the uncorrelated configuration model.
///
/// # Example
///
/// ```
/// use sfo_core::{ucm::UncorrelatedConfigurationModel, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let graph = UncorrelatedConfigurationModel::new(1_000, 2.6, 2)?
///     .with_cutoff(DegreeCutoff::hard(20))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 1_000);
/// assert!(graph.max_degree().unwrap() <= 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncorrelatedConfigurationModel {
    nodes: usize,
    gamma: f64,
    stubs: StubCount,
    cutoff: DegreeCutoff,
    max_restarts: usize,
}

impl UncorrelatedConfigurationModel {
    /// Creates a UCM configuration for `nodes` nodes, target exponent `gamma`, and minimum
    /// degree `m`. Without a hard cutoff the degree support is capped at the structural
    /// cutoff `⌊√N⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `nodes < 4`, `m` is zero, or `gamma` is
    /// not finite and positive.
    pub fn new(nodes: usize, gamma: f64, m: usize) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < 4 {
            return Err(TopologyError::InvalidConfig {
                reason: "ucm needs at least four nodes",
            });
        }
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(TopologyError::InvalidConfig {
                reason: "power-law exponent gamma must be finite and positive",
            });
        }
        Ok(UncorrelatedConfigurationModel {
            nodes,
            gamma,
            stubs,
            cutoff: DegreeCutoff::Unbounded,
            max_restarts: DEFAULT_MAX_RESTARTS,
        })
    }

    /// Sets the hard cutoff `k_c`. The effective support becomes `[m, min(k_c, √N)]`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the number of wiring restarts tolerated before remaining stubs are dropped.
    pub fn with_max_restarts(mut self, max_restarts: usize) -> Self {
        self.max_restarts = max_restarts.max(1);
        self
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the target power-law exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Returns the minimum degree `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    /// Returns the structural cutoff `⌊√N⌋` for the configured size.
    pub fn structural_cutoff(&self) -> usize {
        (self.nodes as f64).sqrt().floor() as usize
    }

    /// Returns the effective degree-support bounds `[k_min, k_max]` after combining the
    /// minimum degree, the structural cutoff, and any hard cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if the support is empty (`k_max < m`).
    pub fn support(&self) -> Result<(usize, usize)> {
        let structural = self.structural_cutoff().max(1);
        let k_max = match self.cutoff.value() {
            Some(k_c) => k_c.min(structural),
            None => structural,
        };
        let k_min = self.stubs.get();
        if k_max < k_min {
            return Err(TopologyError::InvalidConfig {
                reason: "degree support is empty: cutoff (or structural cutoff) is below m",
            });
        }
        Ok((k_min, k_max))
    }

    /// Generates one UCM topology, returning only the graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] when the support is empty.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        Ok(self.generate_with_report(rng)?.graph)
    }

    /// Generates one UCM topology together with its wiring report.
    ///
    /// The wiring phase shuffles the stub list and pairs stubs greedily, skipping any pair
    /// that would create a self-loop or parallel edge; skipped stubs are re-shuffled and
    /// retried up to the restart budget. In the uncorrelated regime (support below the
    /// structural cutoff) the expected number of skipped stubs is `O(1)`, so virtually every
    /// run realizes the target degree sequence exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] when the support is empty.
    pub fn generate_with_report<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<UcmOutcome> {
        let (k_min, k_max) = self.support()?;
        let law = BoundedPowerLaw::new(self.gamma, k_min, k_max)?;
        let target_degrees = law.sample_even_sequence(self.nodes, rng);

        let mut graph = Graph::with_nodes(self.nodes);
        let mut pending: Vec<NodeId> = Vec::with_capacity(target_degrees.iter().sum());
        for (i, &k) in target_degrees.iter().enumerate() {
            pending.extend(std::iter::repeat_n(NodeId::new(i), k));
        }

        let mut restarts = 0usize;
        while !pending.is_empty() && restarts < self.max_restarts {
            pending.shuffle(rng);
            let mut leftover: Vec<NodeId> = Vec::new();
            let mut iter = pending.chunks_exact(2);
            for pair in &mut iter {
                let (a, b) = (pair[0], pair[1]);
                if a == b || graph.contains_edge(a, b) {
                    leftover.push(a);
                    leftover.push(b);
                } else {
                    graph.add_edge(a, b)?;
                }
            }
            leftover.extend_from_slice(iter.remainder());
            // No progress in a full pass means the leftover stubs are mutually unplaceable
            // (for example, two stubs of the same node); stop early rather than looping.
            if leftover.len() == pending.len() {
                pending = leftover;
                break;
            }
            pending = leftover;
            restarts += 1;
        }

        // Repair pass: the few stubs that cannot be paired directly (both belonging to the
        // same node, or to an already-linked pair) are resolved by degree-preserving edge
        // swaps — remove an existing edge (u, v) and add (a, u), (b, v) — which is the
        // standard way to realize a degree sequence exactly without biasing the wiring.
        if !pending.is_empty() {
            pending = Self::repair_by_edge_swaps(&mut graph, pending, rng)?;
        }

        Ok(UcmOutcome {
            graph,
            target_degrees,
            unplaced_stubs: pending.len(),
            restarts,
        })
    }
    /// Places the remaining `pending` stubs via degree-preserving edge swaps, returning any
    /// stubs that still could not be placed.
    fn repair_by_edge_swaps<R: Rng + ?Sized>(
        graph: &mut Graph,
        mut pending: Vec<NodeId>,
        rng: &mut R,
    ) -> Result<Vec<NodeId>> {
        let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        let mut unplaced = Vec::new();
        while pending.len() >= 2 {
            let b = pending.pop().expect("length checked");
            let a = pending.pop().expect("length checked");
            let mut placed = false;
            if a != b && !graph.contains_edge(a, b) {
                graph.add_edge(a, b)?;
                edges.push((a, b));
                placed = true;
            } else {
                // Bounded number of swap attempts; each draws a random existing edge.
                for _ in 0..200 {
                    if edges.is_empty() {
                        break;
                    }
                    let idx = rng.gen_range(0..edges.len());
                    let (u, v) = edges[idx];
                    if u == a || u == b || v == a || v == b {
                        continue;
                    }
                    if graph.contains_edge(a, u) || graph.contains_edge(b, v) {
                        continue;
                    }
                    graph.remove_edge(u, v)?;
                    graph.add_edge(a, u)?;
                    graph.add_edge(b, v)?;
                    edges.swap_remove(idx);
                    edges.push((a, u));
                    edges.push((b, v));
                    placed = true;
                    break;
                }
            }
            if !placed {
                unplaced.push(a);
                unplaced.push(b);
            }
        }
        unplaced.extend(pending);
        Ok(unplaced)
    }
}

impl TopologyGenerator for UncorrelatedConfigurationModel {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        UncorrelatedConfigurationModel::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "UCM"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::{metrics, traversal};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(UncorrelatedConfigurationModel::new(3, 2.5, 1).is_err());
        assert!(UncorrelatedConfigurationModel::new(100, 0.0, 1).is_err());
        assert!(UncorrelatedConfigurationModel::new(100, f64::NAN, 1).is_err());
        assert!(UncorrelatedConfigurationModel::new(100, 2.5, 0).is_err());
        // m larger than the structural cutoff sqrt(100) = 10 leaves an empty support.
        let too_tight = UncorrelatedConfigurationModel::new(100, 2.5, 20)
            .unwrap()
            .generate(&mut rng(0));
        assert!(too_tight.is_err());
        let cutoff_below_m = UncorrelatedConfigurationModel::new(400, 2.5, 5)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(3))
            .generate(&mut rng(0));
        assert!(cutoff_below_m.is_err());
    }

    #[test]
    fn support_respects_structural_and_hard_cutoffs() {
        let ucm = UncorrelatedConfigurationModel::new(2_500, 2.6, 2).unwrap();
        assert_eq!(ucm.structural_cutoff(), 50);
        assert_eq!(ucm.support().unwrap(), (2, 50));
        let capped = ucm.with_cutoff(DegreeCutoff::hard(10));
        assert_eq!(capped.support().unwrap(), (2, 10));
        let looser_than_structural = UncorrelatedConfigurationModel::new(2_500, 2.6, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(500));
        assert_eq!(looser_than_structural.support().unwrap(), (2, 50));
    }

    #[test]
    fn generates_requested_node_count_without_stub_loss() {
        let outcome = UncorrelatedConfigurationModel::new(2_000, 2.6, 2)
            .unwrap()
            .generate_with_report(&mut rng(1))
            .unwrap();
        assert_eq!(outcome.graph.node_count(), 2_000);
        assert_eq!(
            outcome.unplaced_stubs, 0,
            "uncorrelated regime should place every stub"
        );
        let target_sum: usize = outcome.target_degrees.iter().sum();
        assert_eq!(outcome.graph.total_degree(), target_sum);
        outcome.graph.assert_consistent();
    }

    #[test]
    fn realized_degrees_match_targets_exactly_when_no_stub_is_dropped() {
        let outcome = UncorrelatedConfigurationModel::new(1_500, 2.2, 1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(20))
            .generate_with_report(&mut rng(3))
            .unwrap();
        if outcome.unplaced_stubs == 0 {
            assert_eq!(outcome.graph.degrees(), outcome.target_degrees);
        } else {
            // Even with drops the realized degree can never exceed the target.
            for (realized, target) in outcome.graph.degrees().iter().zip(&outcome.target_degrees) {
                assert!(realized <= target);
            }
        }
    }

    #[test]
    fn hard_cutoff_bounds_every_degree() {
        let g = UncorrelatedConfigurationModel::new(2_000, 2.2, 1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(15))
            .generate(&mut rng(5))
            .unwrap();
        assert!(g.max_degree().unwrap() <= 15);
    }

    #[test]
    fn structural_cutoff_bounds_degrees_without_hard_cutoff() {
        let g = UncorrelatedConfigurationModel::new(2_500, 2.2, 1)
            .unwrap()
            .generate(&mut rng(7))
            .unwrap();
        assert!(
            g.max_degree().unwrap() <= 50,
            "structural cutoff sqrt(2500) = 50"
        );
    }

    #[test]
    fn m1_disconnected_m3_giant_component() {
        let g1 = UncorrelatedConfigurationModel::new(2_000, 2.6, 1)
            .unwrap()
            .generate(&mut rng(9))
            .unwrap();
        let g3 = UncorrelatedConfigurationModel::new(2_000, 2.6, 3)
            .unwrap()
            .generate(&mut rng(9))
            .unwrap();
        assert!(!traversal::is_connected(&g1));
        assert!(traversal::giant_component_fraction(&g3) > 0.95);
    }

    #[test]
    fn degree_correlations_are_weak() {
        // The whole point of the structural cutoff: assortativity should be close to zero.
        let g = UncorrelatedConfigurationModel::new(3_000, 2.5, 2)
            .unwrap()
            .generate(&mut rng(11))
            .unwrap();
        let r = metrics::degree_assortativity(&g).unwrap();
        assert!(r.abs() < 0.1, "expected near-zero assortativity, got {r}");
    }

    #[test]
    fn heavier_tails_for_smaller_gamma() {
        let g_22 = UncorrelatedConfigurationModel::new(2_500, 2.2, 1)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        let g_30 = UncorrelatedConfigurationModel::new(2_500, 3.0, 1)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        assert!(g_22.max_degree().unwrap() >= g_30.max_degree().unwrap());
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> = Box::new(
            UncorrelatedConfigurationModel::new(300, 2.6, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(15)),
        );
        assert_eq!(gen.name(), "UCM");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 300);
        let g = gen.generate(&mut rng(15)).unwrap();
        assert_eq!(g.node_count(), 300);
    }

    #[test]
    fn accessors_report_configuration() {
        let ucm = UncorrelatedConfigurationModel::new(900, 2.4, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(25))
            .with_max_restarts(0);
        assert_eq!(ucm.gamma(), 2.4);
        assert_eq!(ucm.stubs(), 3);
        assert_eq!(ucm.cutoff(), DegreeCutoff::hard(25));
        assert_eq!(ucm.structural_cutoff(), 30);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = UncorrelatedConfigurationModel::new(800, 2.6, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(25));
        let a = gen.generate(&mut rng(42)).unwrap();
        let b = gen.generate(&mut rng(42)).unwrap();
        assert_eq!(a, b);
    }
}
