//! Local-events growing network with edge addition and rewiring (paper §III-C, ref. \[7\]).
//!
//! The paper cites "dynamic edge-rewiring \[7\]" — the Albert-Barabási *local events* model —
//! as one of the modified preferential-attachment mechanisms that produce power-law degree
//! distributions with tunable exponents. The model evolves an initially sparse network by
//! repeating one of three local events at every time step:
//!
//! * with probability `p`, add `m` new links between existing nodes (one endpoint uniform,
//!   the other degree-preferential);
//! * with probability `q`, rewire `m` existing links (detach a uniformly chosen endpoint's
//!   link and re-attach it degree-preferentially);
//! * with probability `1 - p - q`, add a new node with `m` degree-preferential links.
//!
//! Depending on `(p, q, m)` the stationary degree distribution interpolates between an
//! exponential and a power law whose exponent ranges over `(2, ∞)`, which is exactly the
//! degree-exponent tuning knob the paper's Configuration Model experiments sweep. This
//! implementation adds the workspace's hard-cutoff semantics: no event ever pushes a node
//! past `k_c`.
//!
//! In preferential choices the model uses the shifted kernel `Π(k) ∝ k + 1` of the original
//! paper, so isolated nodes (possible after rewiring) can still attract links.

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{generators::complete_graph, Graph, NodeId};

/// Default number of candidate draws per preferential choice before the event is skipped.
pub const DEFAULT_MAX_ATTEMPTS: usize = 2_000;

/// Builder/configuration for the local-events (add / rewire / grow) generator.
///
/// # Example
///
/// ```
/// use sfo_core::{local_events::LocalEventsModel, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let graph = LocalEventsModel::new(400, 2, 0.2, 0.2)?
///     .with_cutoff(DegreeCutoff::hard(25))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 400);
/// assert!(graph.max_degree().unwrap() <= 25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalEventsModel {
    nodes: usize,
    stubs: StubCount,
    p_add_links: f64,
    q_rewire: f64,
    cutoff: DegreeCutoff,
    max_attempts: usize,
}

impl LocalEventsModel {
    /// Creates a local-events configuration targeting `nodes` nodes, with `m` links per
    /// event, link-addition probability `p_add_links`, and rewiring probability `q_rewire`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero, `nodes < m + 2`, either
    /// probability is outside `[0, 1)`, or their sum is not strictly below 1 (node-addition
    /// events must remain possible, otherwise the target size is unreachable).
    pub fn new(nodes: usize, m: usize, p_add_links: f64, q_rewire: f64) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < m + 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "local-events model needs at least m + 2 nodes",
            });
        }
        let in_unit = |x: f64| x.is_finite() && (0.0..1.0).contains(&x);
        if !in_unit(p_add_links) || !in_unit(q_rewire) || p_add_links + q_rewire >= 1.0 {
            return Err(TopologyError::InvalidConfig {
                reason: "local-events probabilities must lie in [0, 1) with p + q < 1",
            });
        }
        Ok(LocalEventsModel {
            nodes,
            stubs,
            p_add_links,
            q_rewire,
            cutoff: DegreeCutoff::Unbounded,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the rejection-sampling attempt budget per preferential choice.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Returns the probability of a link-addition event.
    pub fn p_add_links(&self) -> f64 {
        self.p_add_links
    }

    /// Returns the probability of a rewiring event.
    pub fn q_rewire(&self) -> f64 {
        self.q_rewire
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured number of links per event `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    fn validate(&self) -> Result<()> {
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the link count m",
                });
            }
        }
        Ok(())
    }

    /// Generates one topology by running local events until the network reaches the target
    /// node count.
    ///
    /// Link-addition and rewiring events do not change the node count, so the run length is
    /// random; the number of events is bounded in expectation by
    /// `nodes / (1 - p - q)`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        self.validate()?;
        let m = self.stubs.get();
        let seed_size = m + 1;
        let mut graph = complete_graph(seed_size)?;

        while graph.node_count() < self.nodes {
            let roll: f64 = rng.gen();
            if roll < self.p_add_links {
                self.add_links_event(&mut graph, rng);
            } else if roll < self.p_add_links + self.q_rewire {
                self.rewire_event(&mut graph, rng);
            } else {
                self.add_node_event(&mut graph, rng)?;
            }
        }
        Ok(graph)
    }

    /// Event: add `m` links, each from a uniformly chosen node to a preferentially chosen
    /// node.
    fn add_links_event<R: Rng + ?Sized>(&self, graph: &mut Graph, rng: &mut R) {
        let m = self.stubs.get();
        for _ in 0..m {
            let n = graph.node_count();
            let from = NodeId::new(rng.gen_range(0..n));
            if !self.cutoff.admits(graph.degree(from)) {
                continue;
            }
            if let Some(to) = self.preferential_target(graph, from, rng) {
                let _ = graph.add_edge_if_absent(from, to);
            }
        }
    }

    /// Event: rewire `m` links. A uniformly chosen node detaches one of its links and
    /// re-attaches it to a preferentially chosen node.
    fn rewire_event<R: Rng + ?Sized>(&self, graph: &mut Graph, rng: &mut R) {
        let m = self.stubs.get();
        for _ in 0..m {
            let n = graph.node_count();
            let pivot = NodeId::new(rng.gen_range(0..n));
            if graph.degree(pivot) == 0 {
                continue;
            }
            let old_neighbor = graph.neighbors(pivot)[rng.gen_range(0..graph.degree(pivot))];
            if let Some(new_neighbor) = self.preferential_target(graph, pivot, rng) {
                if new_neighbor == old_neighbor {
                    continue;
                }
                // Detach first so the preferential target can be a node the pivot is not yet
                // linked to; `preferential_target` already excludes existing neighbors.
                graph
                    .remove_edge(pivot, old_neighbor)
                    .expect("old neighbor was drawn from the adjacency list");
                graph
                    .add_edge(pivot, new_neighbor)
                    .expect("target was verified unlinked and under the cutoff");
            }
        }
    }

    /// Event: add a new node with `m` preferential links.
    fn add_node_event<R: Rng + ?Sized>(&self, graph: &mut Graph, rng: &mut R) -> Result<()> {
        let m = self.stubs.get();
        let new_node = graph.add_node();
        for _ in 0..m {
            match self.preferential_target(graph, new_node, rng) {
                Some(target) => graph.add_edge(new_node, target)?,
                None => break,
            }
        }
        Ok(())
    }

    /// Draws a node with probability proportional to `degree + 1`, excluding `exclude`, its
    /// current neighbors, and nodes at the hard cutoff. Returns `None` if the attempt
    /// budget runs out or no node is eligible.
    fn preferential_target<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        exclude: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let n = graph.node_count();
        let max_weight = (graph.max_degree().unwrap_or(0) + 1) as f64;
        for _ in 0..self.max_attempts {
            let candidate = NodeId::new(rng.gen_range(0..n));
            if candidate == exclude {
                continue;
            }
            let k = graph.degree(candidate);
            if !self.cutoff.admits(k) || graph.contains_edge(exclude, candidate) {
                continue;
            }
            let accept: f64 = rng.gen();
            if accept < (k + 1) as f64 / max_weight {
                return Some(candidate);
            }
        }
        // Deterministic fallback: weighted scan over eligible nodes.
        let eligible: Vec<(NodeId, usize)> = (0..n)
            .map(NodeId::new)
            .filter(|&c| {
                c != exclude
                    && self.cutoff.admits(graph.degree(c))
                    && !graph.contains_edge(exclude, c)
            })
            .map(|c| (c, graph.degree(c) + 1))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let total: usize = eligible.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for (node, weight) in eligible {
            if pick < weight {
                return Some(node);
            }
            pick -= weight;
        }
        unreachable!("weighted pick is bounded by the total weight")
    }
}

impl TopologyGenerator for LocalEventsModel {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        LocalEventsModel::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "LocalEvents"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::traversal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(LocalEventsModel::new(100, 0, 0.1, 0.1).is_err());
        assert!(LocalEventsModel::new(3, 2, 0.1, 0.1).is_err());
        assert!(LocalEventsModel::new(100, 2, -0.1, 0.1).is_err());
        assert!(LocalEventsModel::new(100, 2, 0.6, 0.5).is_err());
        assert!(LocalEventsModel::new(100, 2, 0.5, 0.5).is_err());
        assert!(LocalEventsModel::new(100, 2, 1.0, 0.0).is_err());
        assert!(LocalEventsModel::new(100, 2, 0.3, 0.3).is_ok());
        let bad_cutoff = LocalEventsModel::new(100, 3, 0.1, 0.1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate(&mut rng(0));
        assert!(matches!(
            bad_cutoff,
            Err(TopologyError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reaches_the_target_node_count() {
        for (p, q) in [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3), (0.25, 0.25)] {
            let g = LocalEventsModel::new(500, 2, p, q)
                .unwrap()
                .generate(&mut rng(1))
                .unwrap();
            assert_eq!(g.node_count(), 500, "p={p}, q={q}");
            g.assert_consistent();
        }
    }

    #[test]
    fn pure_growth_is_connected_and_heavy_tailed() {
        // With p = q = 0 the model reduces to preferential attachment on the shifted kernel.
        let g = LocalEventsModel::new(1_500, 1, 0.0, 0.0)
            .unwrap()
            .generate(&mut rng(3))
            .unwrap();
        assert!(traversal::is_connected(&g));
        assert!(g.max_degree().unwrap() as f64 > 5.0 * g.average_degree());
    }

    #[test]
    fn hard_cutoff_is_never_exceeded() {
        for (p, q) in [(0.3, 0.0), (0.0, 0.3), (0.2, 0.2)] {
            let g = LocalEventsModel::new(800, 2, p, q)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(10))
                .generate(&mut rng(5))
                .unwrap();
            assert!(g.max_degree().unwrap() <= 10, "p={p}, q={q}");
        }
    }

    #[test]
    fn link_addition_raises_average_degree() {
        let grow_only = LocalEventsModel::new(600, 1, 0.0, 0.0)
            .unwrap()
            .generate(&mut rng(7))
            .unwrap();
        let with_links = LocalEventsModel::new(600, 1, 0.4, 0.0)
            .unwrap()
            .generate(&mut rng(7))
            .unwrap();
        assert!(
            with_links.average_degree() > grow_only.average_degree(),
            "link-addition events should densify the network ({} vs {})",
            with_links.average_degree(),
            grow_only.average_degree()
        );
    }

    #[test]
    fn rewiring_preserves_edge_count_per_event() {
        // Rewiring never changes the number of edges, so p=0, q>0 yields exactly the same
        // edge count as pure growth with the same node count would: rewire events move
        // links, node events add m each.
        let g = LocalEventsModel::new(400, 2, 0.0, 0.4)
            .unwrap()
            .generate(&mut rng(9))
            .unwrap();
        let m = 2;
        let expected_edges = m * (m + 1) / 2 + (g.node_count() - (m + 1)) * m;
        // Some node events may fail to place all m links under pathological rewiring, so
        // allow a small deficit but never a surplus.
        assert!(g.edge_count() <= expected_edges);
        assert!(g.edge_count() >= expected_edges - g.node_count() / 20);
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> =
            Box::new(LocalEventsModel::new(60, 1, 0.1, 0.1).unwrap());
        assert_eq!(gen.name(), "LocalEvents");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 60);
        let g = gen.generate(&mut rng(11)).unwrap();
        assert_eq!(g.node_count(), 60);
    }

    #[test]
    fn accessors_report_configuration() {
        let gen = LocalEventsModel::new(100, 3, 0.2, 0.1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(12))
            .with_max_attempts(0);
        assert_eq!(gen.stubs(), 3);
        assert_eq!(gen.cutoff(), DegreeCutoff::hard(12));
        assert!((gen.p_add_links() - 0.2).abs() < 1e-12);
        assert!((gen.q_rewire() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = LocalEventsModel::new(300, 2, 0.2, 0.2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(20));
        let a = gen.generate(&mut rng(41)).unwrap();
        let b = gen.generate(&mut rng(41)).unwrap();
        assert_eq!(a, b);
    }
}
