//! Hop-and-Attempt Preferential Attachment (HAPA) (paper, Alg. 3 and §IV-A).
//!
//! HAPA is the paper's first practical mechanism: a joining node picks one random existing
//! node and *attempts* to connect using the preferential-attachment acceptance rule
//! (`rnd < k_node / k_total`, degree below the cutoff, not already linked), then keeps
//! *hopping* across existing links — moving to a random neighbor of the current node and
//! attempting again — until all `m` stubs are filled.
//!
//! Hopping finds hubs far more often than uniform sampling does (a random link is
//! degree-biased), so without a hard cutoff the topology collapses into a star-like
//! structure around a few super-hubs whose degree is on the order of the system size
//! (paper, Fig. 3(a)). A hard cutoff destroys the star and yields a distribution close to a
//! power law with exponent near 3 (Figs. 3(b,c)).
//!
//! HAPA still needs one piece of global information — the total degree `k_total` used in
//! the acceptance probability — which is why the paper classifies it as *partially* local
//! (Table II).

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{generators::complete_graph, Graph, NodeId};

/// Default hop budget per stub before the generator falls back to a uniform eligible
/// target. The expected number of hops per accepted link is on the order of
/// `k_total / k_hub`, so the default is generous for the network sizes used in the paper.
pub const DEFAULT_MAX_HOPS_PER_STUB: usize = 100_000;

/// Builder/configuration for the HAPA generator.
///
/// # Example
///
/// ```
/// use sfo_core::{hapa::HopAndAttempt, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let graph = HopAndAttempt::new(500, 2)?
///     .with_cutoff(DegreeCutoff::hard(30))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 500);
/// assert!(graph.max_degree().unwrap() <= 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopAndAttempt {
    nodes: usize,
    stubs: StubCount,
    cutoff: DegreeCutoff,
    max_hops_per_stub: usize,
}

impl HopAndAttempt {
    /// Creates a HAPA configuration for `nodes` nodes with `m` stubs per joining node and
    /// no hard cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero or `nodes < m + 2`.
    pub fn new(nodes: usize, m: usize) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < m + 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "hapa needs at least m + 2 nodes (seed of m + 1 plus one joining node)",
            });
        }
        Ok(HopAndAttempt {
            nodes,
            stubs,
            cutoff: DegreeCutoff::Unbounded,
            max_hops_per_stub: DEFAULT_MAX_HOPS_PER_STUB,
        })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the hop budget per stub before falling back to a uniform eligible target.
    pub fn with_max_hops_per_stub(mut self, hops: usize) -> Self {
        self.max_hops_per_stub = hops.max(1);
        self
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured number of stubs `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    fn validate(&self) -> Result<()> {
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the stub count m",
                });
            }
        }
        Ok(())
    }

    /// Generates one HAPA topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        self.validate()?;
        let m = self.stubs.get();
        let seed_size = m + 1;
        let mut graph = complete_graph(seed_size)?;
        graph.add_nodes(self.nodes - seed_size);
        let mut k_total = seed_size * m; // total degree of the seed clique

        for i in seed_size..self.nodes {
            let new_node = NodeId::new(i);
            let mut filled = 0usize;

            // Initial attempt from a uniformly random existing node (Alg. 3, lines 3-7).
            let first = NodeId::new(rng.gen_range(0..i));
            if self.attempt(&graph, new_node, first, k_total, rng) {
                graph.add_edge(new_node, first)?;
                k_total += 2;
                filled += 1;
            }

            // Hop along existing links until the stubs are filled (Alg. 3, lines 8-15).
            // The paper restarts the walk at the new node itself; when the current node has
            // no usable links (the new node before its first success) we re-seed the walk
            // with a uniformly random existing node instead, which the pseudo-code leaves
            // implicit.
            let mut current = if filled > 0 { new_node } else { first };
            let mut hops_left = self.max_hops_per_stub.saturating_mul(m);
            while filled < m {
                if hops_left == 0 {
                    match self.fallback_eligible_target(&graph, new_node, i, rng) {
                        Some(target) => {
                            graph.add_edge(new_node, target)?;
                            k_total += 2;
                            filled += 1;
                            continue;
                        }
                        None => break, // every existing node saturated or already linked
                    }
                }
                hops_left -= 1;
                current = if graph.degree(current) == 0 {
                    NodeId::new(rng.gen_range(0..i))
                } else {
                    let neighbors = graph.neighbors(current);
                    neighbors[rng.gen_range(0..neighbors.len())]
                };
                if current != new_node && self.attempt(&graph, new_node, current, k_total, rng) {
                    graph.add_edge(new_node, current)?;
                    k_total += 2;
                    filled += 1;
                }
            }
        }
        Ok(graph)
    }

    /// The attempt condition of Alg. 3 lines 4 and 11: not already linked, under the
    /// cutoff, and accepted with probability `k_node / k_total`.
    fn attempt<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        candidate: NodeId,
        k_total: usize,
        rng: &mut R,
    ) -> bool {
        if candidate == new_node || graph.contains_edge(new_node, candidate) {
            return false;
        }
        let k = graph.degree(candidate);
        if !self.cutoff.admits(k) {
            return false;
        }
        rng.gen::<f64>() < k as f64 / k_total as f64
    }

    fn fallback_eligible_target<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let eligible: Vec<NodeId> = (0..existing)
            .map(NodeId::new)
            .filter(|&n| {
                n != new_node
                    && self.cutoff.admits(graph.degree(n))
                    && !graph.contains_edge(new_node, n)
            })
            .collect();
        if eligible.is_empty() {
            None
        } else {
            Some(eligible[rng.gen_range(0..eligible.len())])
        }
    }
}

impl TopologyGenerator for HopAndAttempt {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        HopAndAttempt::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Partial
    }

    fn name(&self) -> &'static str {
        "HAPA"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::traversal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(HopAndAttempt::new(100, 0).is_err());
        assert!(HopAndAttempt::new(3, 2).is_err());
        let bad = HopAndAttempt::new(100, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate(&mut rng(0));
        assert!(bad.is_err());
    }

    #[test]
    fn generates_requested_size_and_min_degree() {
        for m in [1usize, 2, 3] {
            let g = HopAndAttempt::new(400, m)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(50))
                .generate(&mut rng(1))
                .unwrap();
            assert_eq!(g.node_count(), 400);
            assert!(g.min_degree().unwrap() >= m, "m={m}");
            assert!(traversal::is_connected(&g), "m={m}");
            g.assert_consistent();
        }
    }

    #[test]
    fn hard_cutoff_is_never_exceeded() {
        for k_c in [10usize, 40] {
            let g = HopAndAttempt::new(800, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(k_c))
                .generate(&mut rng(3))
                .unwrap();
            assert!(g.max_degree().unwrap() <= k_c);
        }
    }

    #[test]
    fn without_cutoff_super_hubs_emerge() {
        // Paper, Fig. 3(a): hopping concentrates links on a few super-hubs whose degree is
        // on the order of the system size, producing a star-like topology.
        let n = 1_500;
        let g = HopAndAttempt::new(n, 1)
            .unwrap()
            .generate(&mut rng(7))
            .unwrap();
        let max = g.max_degree().unwrap();
        assert!(
            max > n / 4,
            "expected a super-hub with degree on the order of the system size, got {max} of {n}"
        );
    }

    #[test]
    fn cutoff_destroys_the_star_topology() {
        let n = 1_500;
        let star = HopAndAttempt::new(n, 1)
            .unwrap()
            .generate(&mut rng(11))
            .unwrap();
        let capped = HopAndAttempt::new(n, 1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(10))
            .generate(&mut rng(11))
            .unwrap();
        assert!(capped.max_degree().unwrap() <= 10);
        assert!(star.max_degree().unwrap() > capped.max_degree().unwrap() * 10);
        // Destroying the star spreads links: the average shortest path grows.
        let star_stats = sfo_graph::metrics::path_statistics_sampled(&star, 30, &mut rng(1));
        let capped_stats = sfo_graph::metrics::path_statistics_sampled(&capped, 30, &mut rng(1));
        assert!(capped_stats.average_shortest_path > star_stats.average_shortest_path);
    }

    #[test]
    fn hapa_without_cutoff_has_smaller_diameter_than_pa() {
        // Paper, §IV-A: the star-like HAPA topology has a very small average shortest path
        // compared to PA.
        let n = 1_000;
        let hapa = HopAndAttempt::new(n, 1)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        let pa = crate::pa::PreferentialAttachment::new(n, 1)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        let hapa_stats = sfo_graph::metrics::path_statistics_sampled(&hapa, 30, &mut rng(2));
        let pa_stats = sfo_graph::metrics::path_statistics_sampled(&pa, 30, &mut rng(2));
        assert!(
            hapa_stats.average_shortest_path < pa_stats.average_shortest_path,
            "hapa {} should beat pa {}",
            hapa_stats.average_shortest_path,
            pa_stats.average_shortest_path
        );
    }

    #[test]
    fn tiny_hop_budget_still_fills_stubs_via_fallback() {
        let g = HopAndAttempt::new(200, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(20))
            .with_max_hops_per_stub(0)
            .generate(&mut rng(17))
            .unwrap();
        assert_eq!(g.node_count(), 200);
        assert!(g.min_degree().unwrap() >= 3);
        assert!(g.max_degree().unwrap() <= 20);
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> = Box::new(HopAndAttempt::new(60, 1).unwrap());
        assert_eq!(gen.name(), "HAPA");
        assert_eq!(gen.locality(), Locality::Partial);
        assert_eq!(gen.target_nodes(), 60);
        let g = gen.generate(&mut rng(19)).unwrap();
        assert_eq!(g.node_count(), 60);
    }

    #[test]
    fn accessors_report_configuration() {
        let hapa = HopAndAttempt::new(100, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(15));
        assert_eq!(hapa.cutoff(), DegreeCutoff::hard(15));
        assert_eq!(hapa.stubs(), 2);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = HopAndAttempt::new(300, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(30));
        assert_eq!(
            gen.generate(&mut rng(23)).unwrap(),
            gen.generate(&mut rng(23)).unwrap()
        );
    }
}
