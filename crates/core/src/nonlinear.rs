//! Nonlinear preferential attachment (paper §III-C, refs. \[52, 53\]).
//!
//! The paper motivates the Configuration Model by noting that "modified PA models such as
//! nonlinear preferential attachment \[52\], \[53\] ... have been proposed" to obtain power-law
//! networks whose exponent differs from the Barabási-Albert value `γ = 3`. This module
//! implements that family: a growing network in which a new node attaches to an existing
//! node `i` with probability proportional to `k_i^α`.
//!
//! * `α = 1` recovers linear preferential attachment (the PA model of [`crate::pa`]).
//! * `α < 1` (*sublinear* kernel) produces a stretched-exponential degree distribution:
//!   hubs are suppressed even without a hard cutoff.
//! * `α > 1` (*superlinear* kernel) produces gelation: a single node acquires a finite
//!   fraction of all links, an extreme version of the super-hub problem hard cutoffs are
//!   designed to prevent.
//!
//! The generator supports the same hard-cutoff semantics as the other mechanisms in this
//! crate, which is exactly the combination the paper's discussion motivates: a superlinear
//! kernel with a hard cutoff spreads the would-be super-hub's links over many peers.

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{generators::complete_graph, Graph, NodeId};

/// Default number of candidate draws per stub before the generator falls back to a direct
/// weighted scan over all eligible nodes.
pub const DEFAULT_MAX_ATTEMPTS: usize = 10_000;

/// Builder/configuration for the nonlinear preferential-attachment generator.
///
/// The attachment kernel is `Π(k) ∝ k^α`; see the module documentation for how the
/// exponent `α` shapes the resulting topology.
///
/// # Example
///
/// ```
/// use sfo_core::{nonlinear::NonlinearPreferentialAttachment, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let graph = NonlinearPreferentialAttachment::new(400, 2, 0.5)?
///     .with_cutoff(DegreeCutoff::hard(20))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 400);
/// assert!(graph.max_degree().unwrap() <= 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonlinearPreferentialAttachment {
    nodes: usize,
    stubs: StubCount,
    alpha: f64,
    cutoff: DegreeCutoff,
    max_attempts: usize,
}

impl NonlinearPreferentialAttachment {
    /// Creates a nonlinear-PA configuration for `nodes` nodes, `m` stubs per joining node,
    /// and kernel exponent `alpha`, with no hard cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero, `nodes < m + 2`, or `alpha`
    /// is negative or not finite.
    pub fn new(nodes: usize, m: usize, alpha: f64) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < m + 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "nonlinear pa needs at least m + 2 nodes",
            });
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(TopologyError::InvalidConfig {
                reason: "nonlinear pa kernel exponent alpha must be finite and non-negative",
            });
        }
        Ok(NonlinearPreferentialAttachment {
            nodes,
            stubs,
            alpha,
            cutoff: DegreeCutoff::Unbounded,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the number of rejected draws per stub tolerated before the generator scans all
    /// eligible nodes directly.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Returns the configured kernel exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured number of stubs `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    fn validate(&self) -> Result<()> {
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the stub count m",
                });
            }
        }
        Ok(())
    }

    /// Generates one topology with the `k^α` attachment kernel.
    ///
    /// The implementation uses rejection sampling against the current maximum kernel
    /// weight: draw a uniform candidate, accept it with probability
    /// `(k_candidate / k_max)^α`. This is exact for any `α ≥ 0` and never needs the global
    /// normalization constant, so its cost per accepted edge stays modest even for strongly
    /// superlinear kernels.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        self.validate()?;
        let m = self.stubs.get();
        let seed_size = m + 1;
        let mut graph = complete_graph(seed_size)?;
        graph.add_nodes(self.nodes - seed_size);

        for i in seed_size..self.nodes {
            let new_node = NodeId::new(i);
            for _ in 0..m {
                let target = self
                    .pick_rejection(&graph, new_node, i, rng)
                    .or_else(|| self.fallback_weighted_scan(&graph, new_node, i, rng));
                let target = match target {
                    Some(t) => t,
                    None => break, // every existing node is saturated or already linked
                };
                graph.add_edge(new_node, target)?;
            }
        }
        Ok(graph)
    }

    fn kernel(&self, degree: usize) -> f64 {
        (degree as f64).powf(self.alpha)
    }

    fn pick_rejection<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        // The maximum eligible degree bounds the kernel, so acceptance probabilities stay
        // in [0, 1]. Recomputing it per stub is O(existing), which is dominated by the
        // rejection loop for the sizes this workspace targets.
        let max_degree = (0..existing)
            .map(NodeId::new)
            .filter(|&n| n != new_node)
            .map(|n| graph.degree(n))
            .max()?;
        if max_degree == 0 {
            return None;
        }
        let max_kernel = self.kernel(max_degree);
        for _ in 0..self.max_attempts {
            let candidate = NodeId::new(rng.gen_range(0..existing));
            if candidate == new_node {
                continue;
            }
            let k = graph.degree(candidate);
            if !self.cutoff.admits(k) || graph.contains_edge(new_node, candidate) {
                continue;
            }
            let accept: f64 = rng.gen();
            if accept < self.kernel(k) / max_kernel {
                return Some(candidate);
            }
        }
        None
    }

    fn fallback_weighted_scan<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let eligible: Vec<(NodeId, f64)> = (0..existing)
            .map(NodeId::new)
            .filter(|&n| {
                n != new_node
                    && self.cutoff.admits(graph.degree(n))
                    && !graph.contains_edge(new_node, n)
            })
            .map(|n| (n, self.kernel(graph.degree(n).max(1))))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let total: f64 = eligible.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen::<f64>() * total;
        for (node, weight) in &eligible {
            if pick < *weight {
                return Some(*node);
            }
            pick -= weight;
        }
        Some(eligible.last().expect("eligible list is non-empty").0)
    }
}

impl TopologyGenerator for NonlinearPreferentialAttachment {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        NonlinearPreferentialAttachment::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "NLPA"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::traversal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(NonlinearPreferentialAttachment::new(100, 0, 1.0).is_err());
        assert!(NonlinearPreferentialAttachment::new(3, 2, 1.0).is_err());
        assert!(NonlinearPreferentialAttachment::new(100, 2, -0.5).is_err());
        assert!(NonlinearPreferentialAttachment::new(100, 2, f64::NAN).is_err());
        assert!(NonlinearPreferentialAttachment::new(100, 2, 0.0).is_ok());
        let bad_cutoff = NonlinearPreferentialAttachment::new(100, 3, 1.0)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate(&mut rng(0));
        assert!(matches!(
            bad_cutoff,
            Err(TopologyError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn generates_requested_size_and_stays_connected() {
        for alpha in [0.0, 0.5, 1.0, 1.5] {
            let g = NonlinearPreferentialAttachment::new(400, 2, alpha)
                .unwrap()
                .generate(&mut rng(1))
                .unwrap();
            assert_eq!(g.node_count(), 400, "alpha={alpha}");
            assert!(g.min_degree().unwrap() >= 2, "alpha={alpha}");
            assert!(traversal::is_connected(&g), "alpha={alpha}");
            g.assert_consistent();
        }
    }

    #[test]
    fn hard_cutoff_is_never_exceeded() {
        for alpha in [0.5, 1.0, 2.0] {
            let g = NonlinearPreferentialAttachment::new(800, 2, alpha)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(12))
                .generate(&mut rng(3))
                .unwrap();
            assert!(g.max_degree().unwrap() <= 12, "alpha={alpha}");
        }
    }

    #[test]
    fn sublinear_kernel_suppresses_hubs() {
        // A sublinear kernel yields a stretched-exponential tail: the largest hub should be
        // much smaller than under the superlinear kernel on the same number of nodes.
        let sub = NonlinearPreferentialAttachment::new(2_000, 1, 0.3)
            .unwrap()
            .generate(&mut rng(5))
            .unwrap();
        let supr = NonlinearPreferentialAttachment::new(2_000, 1, 1.8)
            .unwrap()
            .generate(&mut rng(5))
            .unwrap();
        assert!(
            supr.max_degree().unwrap() > 3 * sub.max_degree().unwrap(),
            "superlinear hub {} should dwarf sublinear hub {}",
            supr.max_degree().unwrap(),
            sub.max_degree().unwrap()
        );
    }

    #[test]
    fn superlinear_kernel_gelates_toward_a_super_hub() {
        // With a strongly superlinear kernel a single node should capture a finite fraction
        // of all links (the gelation phenomenon).
        let g = NonlinearPreferentialAttachment::new(1_500, 1, 2.5)
            .unwrap()
            .generate(&mut rng(7))
            .unwrap();
        let max = g.max_degree().unwrap();
        assert!(
            max as f64 > 0.3 * g.node_count() as f64,
            "expected a super-hub, got max degree {max} on {} nodes",
            g.node_count()
        );
    }

    #[test]
    fn alpha_one_behaves_like_linear_pa() {
        // Not a distributional test, just a sanity check that the kernel at alpha = 1 still
        // produces a heavy-tailed, connected network of the right size.
        let g = NonlinearPreferentialAttachment::new(2_000, 1, 1.0)
            .unwrap()
            .generate(&mut rng(11))
            .unwrap();
        assert!(g.max_degree().unwrap() as f64 > 5.0 * g.average_degree());
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn uniform_kernel_alpha_zero_has_light_tail() {
        // alpha = 0 is uniform random attachment; its maximum degree grows only
        // logarithmically, so it should stay well below the linear-PA hub size.
        let uniform = NonlinearPreferentialAttachment::new(2_000, 1, 0.0)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        let linear = NonlinearPreferentialAttachment::new(2_000, 1, 1.0)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        assert!(uniform.max_degree().unwrap() < linear.max_degree().unwrap());
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> =
            Box::new(NonlinearPreferentialAttachment::new(60, 1, 1.2).unwrap());
        assert_eq!(gen.name(), "NLPA");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 60);
        let g = gen.generate(&mut rng(17)).unwrap();
        assert_eq!(g.node_count(), 60);
    }

    #[test]
    fn accessors_report_configuration() {
        let gen = NonlinearPreferentialAttachment::new(100, 3, 0.8)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(15))
            .with_max_attempts(0);
        assert_eq!(gen.stubs(), 3);
        assert_eq!(gen.cutoff(), DegreeCutoff::hard(15));
        assert!((gen.alpha() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = NonlinearPreferentialAttachment::new(300, 2, 1.3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(25));
        let a = gen.generate(&mut rng(41)).unwrap();
        let b = gen.generate(&mut rng(41)).unwrap();
        assert_eq!(a, b);
    }
}
