//! Growing network with initial attractiveness (Dorogovtsev-Mendes-Samukhin model).
//!
//! The paper's Configuration Model experiments sweep the degree exponent `γ` over
//! `{2.2, 2.6, 3.0}` by *prescribing* a degree sequence, which requires global information.
//! The initial-attractiveness model provides a *growing* alternative with a tunable
//! exponent: a new node attaches to node `i` with probability proportional to `k_i + a`,
//! where `a > -m` is the initial attractiveness. The stationary degree distribution is a
//! power law with exponent
//!
//! ```text
//! γ = 3 + a / m
//! ```
//!
//! so `a = 0` recovers Barabási-Albert (`γ = 3`), negative `a` yields the `2 < γ < 3`
//! ultra-small regime the paper's Table I highlights, and positive `a` yields `γ > 3`.
//! Combined with the hard-cutoff semantics of this crate it gives a second, growth-based
//! route to the exponent/cutoff trade-off studied in Figs. 1(c) and 4(g).

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{generators::complete_graph, Graph, NodeId};

/// Default number of candidate draws per stub before the generator falls back to a direct
/// weighted scan over all eligible nodes.
pub const DEFAULT_MAX_ATTEMPTS: usize = 10_000;

/// Builder/configuration for the initial-attractiveness growing-network generator.
///
/// # Example
///
/// ```
/// use sfo_core::{attractiveness::InitialAttractiveness, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// // a = -1 with m = 2 targets gamma = 2.5, inside the ultra-small regime.
/// let generator = InitialAttractiveness::new(500, 2, -1.0)?;
/// assert!((generator.predicted_gamma() - 2.5).abs() < 1e-12);
/// let graph = generator.with_cutoff(DegreeCutoff::hard(40)).generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InitialAttractiveness {
    nodes: usize,
    stubs: StubCount,
    attractiveness: f64,
    cutoff: DegreeCutoff,
    max_attempts: usize,
}

impl InitialAttractiveness {
    /// Creates a configuration for `nodes` nodes, `m` stubs per joining node, and initial
    /// attractiveness `a`, with no hard cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero, `nodes < m + 2`, or
    /// `a <= -m` (the attachment kernel must stay positive for every attainable degree).
    pub fn new(nodes: usize, m: usize, a: f64) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < m + 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "initial-attractiveness model needs at least m + 2 nodes",
            });
        }
        if !a.is_finite() || a <= -(m as f64) {
            return Err(TopologyError::InvalidConfig {
                reason: "initial attractiveness must be finite and greater than -m",
            });
        }
        Ok(InitialAttractiveness {
            nodes,
            stubs,
            attractiveness: a,
            cutoff: DegreeCutoff::Unbounded,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Creates a configuration that targets the asymptotic degree exponent `gamma` using
    /// the relation `a = (gamma - 3) · m`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if the implied attractiveness is not
    /// admissible (`gamma <= 2`) or the size/stub constraints are violated.
    pub fn with_target_gamma(nodes: usize, m: usize, gamma: f64) -> Result<Self> {
        if !gamma.is_finite() || gamma <= 2.0 {
            return Err(TopologyError::InvalidConfig {
                reason: "target gamma must be finite and greater than 2",
            });
        }
        let a = (gamma - 3.0) * m as f64;
        InitialAttractiveness::new(nodes, m, a)
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Sets the rejection-sampling attempt budget per stub.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Returns the initial attractiveness `a`.
    pub fn attractiveness(&self) -> f64 {
        self.attractiveness
    }

    /// Returns the asymptotic degree exponent `γ = 3 + a / m` the configuration targets.
    pub fn predicted_gamma(&self) -> f64 {
        3.0 + self.attractiveness / self.stubs.get() as f64
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured number of stubs `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    fn validate(&self) -> Result<()> {
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the stub count m",
                });
            }
        }
        Ok(())
    }

    fn kernel(&self, degree: usize) -> f64 {
        degree as f64 + self.attractiveness
    }

    /// Generates one topology with the `k + a` attachment kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        self.validate()?;
        let m = self.stubs.get();
        let seed_size = m + 1;
        let mut graph = complete_graph(seed_size)?;
        graph.add_nodes(self.nodes - seed_size);

        for i in seed_size..self.nodes {
            let new_node = NodeId::new(i);
            for _ in 0..m {
                let target = self
                    .pick_rejection(&graph, new_node, i, rng)
                    .or_else(|| self.fallback_weighted_scan(&graph, new_node, i, rng));
                let target = match target {
                    Some(t) => t,
                    None => break,
                };
                graph.add_edge(new_node, target)?;
            }
        }
        Ok(graph)
    }

    fn pick_rejection<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let max_degree = (0..existing)
            .map(NodeId::new)
            .filter(|&n| n != new_node)
            .map(|n| graph.degree(n))
            .max()?;
        let max_kernel = self.kernel(max_degree);
        if max_kernel <= 0.0 {
            return None;
        }
        for _ in 0..self.max_attempts {
            let candidate = NodeId::new(rng.gen_range(0..existing));
            if candidate == new_node {
                continue;
            }
            let k = graph.degree(candidate);
            if !self.cutoff.admits(k) || graph.contains_edge(new_node, candidate) {
                continue;
            }
            let weight = self.kernel(k);
            if weight <= 0.0 {
                continue;
            }
            let accept: f64 = rng.gen();
            if accept < weight / max_kernel {
                return Some(candidate);
            }
        }
        None
    }

    fn fallback_weighted_scan<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let eligible: Vec<(NodeId, f64)> = (0..existing)
            .map(NodeId::new)
            .filter(|&n| {
                n != new_node
                    && self.cutoff.admits(graph.degree(n))
                    && !graph.contains_edge(new_node, n)
            })
            .map(|n| (n, self.kernel(graph.degree(n)).max(f64::MIN_POSITIVE)))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let total: f64 = eligible.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen::<f64>() * total;
        for (node, weight) in &eligible {
            if pick < *weight {
                return Some(*node);
            }
            pick -= weight;
        }
        Some(eligible.last().expect("eligible list is non-empty").0)
    }
}

impl TopologyGenerator for InitialAttractiveness {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        InitialAttractiveness::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "DMS"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::traversal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(InitialAttractiveness::new(100, 0, 0.0).is_err());
        assert!(InitialAttractiveness::new(3, 2, 0.0).is_err());
        assert!(InitialAttractiveness::new(100, 2, -2.0).is_err());
        assert!(InitialAttractiveness::new(100, 2, -2.5).is_err());
        assert!(InitialAttractiveness::new(100, 2, f64::INFINITY).is_err());
        assert!(InitialAttractiveness::new(100, 2, -1.5).is_ok());
        assert!(InitialAttractiveness::with_target_gamma(100, 2, 2.0).is_err());
        assert!(InitialAttractiveness::with_target_gamma(100, 2, 2.5).is_ok());
        let bad_cutoff = InitialAttractiveness::new(100, 3, 0.0)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate(&mut rng(0));
        assert!(matches!(
            bad_cutoff,
            Err(TopologyError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn gamma_mapping_round_trips() {
        for gamma in [2.2, 2.6, 3.0, 3.5] {
            let gen = InitialAttractiveness::with_target_gamma(200, 2, gamma).unwrap();
            assert!(
                (gen.predicted_gamma() - gamma).abs() < 1e-12,
                "gamma {gamma} round-trips through a = (gamma - 3) m"
            );
        }
        assert!(
            (InitialAttractiveness::new(200, 2, 0.0)
                .unwrap()
                .predicted_gamma()
                - 3.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn generates_requested_size_and_stays_connected() {
        for a in [-1.0, 0.0, 2.0] {
            let g = InitialAttractiveness::new(400, 2, a)
                .unwrap()
                .generate(&mut rng(1))
                .unwrap();
            assert_eq!(g.node_count(), 400, "a={a}");
            assert!(g.min_degree().unwrap() >= 2, "a={a}");
            assert!(traversal::is_connected(&g), "a={a}");
            g.assert_consistent();
        }
    }

    #[test]
    fn hard_cutoff_is_never_exceeded() {
        let g = InitialAttractiveness::new(800, 2, -1.0)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(12))
            .generate(&mut rng(3))
            .unwrap();
        assert!(g.max_degree().unwrap() <= 12);
    }

    #[test]
    fn negative_attractiveness_grows_larger_hubs() {
        // Smaller gamma (negative a) means heavier tails: the largest hub should exceed the
        // one grown with strongly positive a on the same node count and seed.
        let heavy = InitialAttractiveness::new(2_000, 2, -1.5)
            .unwrap()
            .generate(&mut rng(5))
            .unwrap();
        let light = InitialAttractiveness::new(2_000, 2, 6.0)
            .unwrap()
            .generate(&mut rng(5))
            .unwrap();
        assert!(
            heavy.max_degree().unwrap() > light.max_degree().unwrap(),
            "gamma=2.25 hub {} should exceed gamma=6 hub {}",
            heavy.max_degree().unwrap(),
            light.max_degree().unwrap()
        );
    }

    #[test]
    fn zero_attractiveness_is_heavy_tailed_like_pa() {
        let g = InitialAttractiveness::new(2_000, 1, 0.0)
            .unwrap()
            .generate(&mut rng(7))
            .unwrap();
        assert!(g.max_degree().unwrap() as f64 > 5.0 * g.average_degree());
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> =
            Box::new(InitialAttractiveness::new(60, 1, 0.5).unwrap());
        assert_eq!(gen.name(), "DMS");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 60);
        let g = gen.generate(&mut rng(9)).unwrap();
        assert_eq!(g.node_count(), 60);
    }

    #[test]
    fn accessors_report_configuration() {
        let gen = InitialAttractiveness::new(100, 3, 1.5)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(14))
            .with_max_attempts(0);
        assert_eq!(gen.stubs(), 3);
        assert_eq!(gen.cutoff(), DegreeCutoff::hard(14));
        assert!((gen.attractiveness() - 1.5).abs() < 1e-12);
        assert!((gen.predicted_gamma() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = InitialAttractiveness::new(300, 2, -0.5)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(30));
        let a = gen.generate(&mut rng(41)).unwrap();
        let b = gen.generate(&mut rng(41)).unwrap();
        assert_eq!(a, b);
    }
}
