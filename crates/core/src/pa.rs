//! Preferential Attachment (PA) with hard cutoffs (paper, Alg. 1 and §III-B).
//!
//! The network grows one node at a time from a fully connected seed of `m + 1` nodes. Each
//! new node fills `m` stubs by attaching to existing nodes with probability proportional to
//! their current degree, *rejecting* any candidate that is already a neighbor or whose
//! degree has reached the hard cutoff `k_c`. Without a cutoff this is the Barabási-Albert
//! model with degree exponent `γ = 3`; with a binding cutoff the distribution keeps a
//! power-law body, accumulates a spike at `k = k_c`, and its fitted exponent decreases as
//! the cutoff shrinks (paper, Fig. 1).

use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{generators::complete_graph, Graph, NodeId};

/// Default number of candidate draws per stub before the generator falls back to scanning
/// for an eligible node directly.
pub const DEFAULT_MAX_ATTEMPTS: usize = 10_000;

/// Which sampling procedure the generator uses to realize preferential attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PaVariant {
    /// Draw candidates from a stub list in which every node appears once per unit of
    /// degree, so a uniform draw is already degree-proportional. This is the standard
    /// efficient realization of preferential attachment and the default.
    #[default]
    StubList,
    /// The literal procedure of the paper's Alg. 1: draw a uniformly random existing node
    /// and accept it with probability `k_node / k_total`. Statistically equivalent to
    /// [`PaVariant::StubList`] but needs `O(N)` draws per edge; retained for the
    /// cutoff-enforcement ablation and for small-scale validation.
    LiteralRejection,
}

/// Builder/configuration for the preferential-attachment generator.
///
/// # Example
///
/// ```
/// use sfo_core::{pa::PreferentialAttachment, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let graph = PreferentialAttachment::new(500, 3)?
///     .with_cutoff(DegreeCutoff::hard(40))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 500);
/// assert!(graph.max_degree().unwrap() <= 40);
/// assert!(graph.min_degree().unwrap() >= 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreferentialAttachment {
    nodes: usize,
    stubs: StubCount,
    cutoff: DegreeCutoff,
    variant: PaVariant,
    max_attempts: usize,
}

impl PreferentialAttachment {
    /// Creates a PA configuration for `nodes` nodes with `m` stubs per joining node and no
    /// hard cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `m` is zero or `nodes < m + 2` (the
    /// seed network of `m + 1` fully connected nodes plus at least one joining node).
    pub fn new(nodes: usize, m: usize) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < m + 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "pa needs at least m + 2 nodes (seed of m + 1 plus one joining node)",
            });
        }
        Ok(PreferentialAttachment {
            nodes,
            stubs,
            cutoff: DegreeCutoff::Unbounded,
            variant: PaVariant::default(),
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Sets the hard cutoff `k_c`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Selects the sampling variant (stub list by default).
    pub fn with_variant(mut self, variant: PaVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the number of rejected draws per stub tolerated before falling back to a direct
    /// scan for an eligible target.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the configured number of stubs `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    fn validate(&self) -> Result<()> {
        if let Some(k_c) = self.cutoff.value() {
            if k_c < self.stubs.get() {
                return Err(TopologyError::InvalidConfig {
                    reason: "hard cutoff is smaller than the stub count m",
                });
            }
        }
        Ok(())
    }

    /// Generates one PA topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] for inconsistent configurations (for
    /// example a cutoff below `m`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        self.validate()?;
        let m = self.stubs.get();
        let seed_size = m + 1;
        let mut graph = complete_graph(seed_size)?;
        graph.add_nodes(self.nodes - seed_size);

        // Stub list: node id repeated once per unit of degree. Kept in sync with the graph
        // so that a uniform draw is degree-proportional (used by the StubList variant and by
        // the literal variant's k_total bookkeeping).
        let mut stub_list: Vec<NodeId> = Vec::with_capacity(2 * m * self.nodes);
        for node in 0..seed_size {
            for _ in 0..m {
                stub_list.push(NodeId::new(node));
            }
        }

        for i in seed_size..self.nodes {
            let new_node = NodeId::new(i);
            for _ in 0..m {
                let target = match self.variant {
                    PaVariant::StubList => {
                        self.pick_via_stub_list(&graph, &stub_list, new_node, i, rng)
                    }
                    PaVariant::LiteralRejection => {
                        self.pick_via_literal_rejection(&graph, stub_list.len(), new_node, i, rng)
                    }
                };
                let target = match target {
                    Some(t) => t,
                    None => match self.fallback_eligible_target(&graph, new_node, i, rng) {
                        Some(t) => t,
                        None => break, // every existing node is saturated or already linked
                    },
                };
                graph.add_edge(new_node, target)?;
                stub_list.push(new_node);
                stub_list.push(target);
            }
        }
        Ok(graph)
    }

    /// Degree-proportional draw from the stub list, rejecting ineligible candidates.
    fn pick_via_stub_list<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        stub_list: &[NodeId],
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        debug_assert!(existing > 0 && !stub_list.is_empty());
        for _ in 0..self.max_attempts {
            let candidate = stub_list[rng.gen_range(0..stub_list.len())];
            if candidate == new_node {
                continue;
            }
            if !self.cutoff.admits(graph.degree(candidate)) {
                continue;
            }
            if graph.contains_edge(new_node, candidate) {
                continue;
            }
            return Some(candidate);
        }
        None
    }

    /// The paper's literal rejection sampling: uniform node, accept with probability
    /// `k_node / k_total`.
    fn pick_via_literal_rejection<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        k_total: usize,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        for _ in 0..self.max_attempts {
            let candidate = NodeId::new(rng.gen_range(0..existing));
            let k = graph.degree(candidate);
            let accept: f64 = rng.gen();
            if graph.contains_edge(new_node, candidate) {
                continue;
            }
            if !self.cutoff.admits(k) {
                continue;
            }
            if accept < k as f64 / k_total as f64 {
                return Some(candidate);
            }
        }
        None
    }

    /// Degree-weighted draw over the nodes that are still eligible, used when rejection
    /// sampling exceeded its attempt budget (possible only for very restrictive cutoffs).
    fn fallback_eligible_target<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        new_node: NodeId,
        existing: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let eligible: Vec<(NodeId, usize)> = (0..existing)
            .map(NodeId::new)
            .filter(|&n| {
                n != new_node
                    && self.cutoff.admits(graph.degree(n))
                    && !graph.contains_edge(new_node, n)
            })
            .map(|n| (n, graph.degree(n).max(1)))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let total: usize = eligible.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for (node, weight) in eligible {
            if pick < weight {
                return Some(node);
            }
            pick -= weight;
        }
        unreachable!("weighted pick is bounded by the total weight")
    }
}

impl TopologyGenerator for PreferentialAttachment {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        PreferentialAttachment::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "PA"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::{metrics, traversal};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(PreferentialAttachment::new(100, 0).is_err());
        assert!(PreferentialAttachment::new(3, 2).is_err());
        assert!(PreferentialAttachment::new(4, 2).is_ok());
        let bad_cutoff = PreferentialAttachment::new(100, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(2))
            .generate(&mut rng(0));
        assert!(matches!(
            bad_cutoff,
            Err(TopologyError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn generates_requested_size_and_edge_count() {
        let m = 2;
        let n = 500;
        let g = PreferentialAttachment::new(n, m)
            .unwrap()
            .generate(&mut rng(1))
            .unwrap();
        assert_eq!(g.node_count(), n);
        // Seed contributes m(m+1)/2 edges, every other node contributes m.
        let expected_edges = m * (m + 1) / 2 + (n - (m + 1)) * m;
        assert_eq!(g.edge_count(), expected_edges);
        g.assert_consistent();
    }

    #[test]
    fn minimum_degree_equals_m() {
        for m in [1usize, 2, 3] {
            let g = PreferentialAttachment::new(400, m)
                .unwrap()
                .generate(&mut rng(7))
                .unwrap();
            assert!(
                g.min_degree().unwrap() >= m,
                "m={m}: min degree {} below m",
                g.min_degree().unwrap()
            );
        }
    }

    #[test]
    fn generated_network_is_connected_for_m_at_least_one() {
        let g = PreferentialAttachment::new(600, 1)
            .unwrap()
            .generate(&mut rng(3))
            .unwrap();
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn m_equals_one_without_cutoff_is_a_tree() {
        let g = PreferentialAttachment::new(300, 1)
            .unwrap()
            .generate(&mut rng(11))
            .unwrap();
        assert_eq!(
            g.edge_count(),
            g.node_count() - 1,
            "BA with m=1 is a scale-free tree"
        );
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn hard_cutoff_is_never_exceeded() {
        for k_c in [5usize, 10, 40] {
            let g = PreferentialAttachment::new(1_000, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(k_c))
                .generate(&mut rng(13))
                .unwrap();
            assert!(g.max_degree().unwrap() <= k_c, "cutoff {k_c} violated");
        }
    }

    #[test]
    fn without_cutoff_hubs_exceed_hard_cutoff_levels() {
        let g = PreferentialAttachment::new(2_000, 2)
            .unwrap()
            .generate(&mut rng(17))
            .unwrap();
        assert!(
            g.max_degree().unwrap() > 40,
            "an unbounded PA run of this size should grow hubs beyond 40, got {}",
            g.max_degree().unwrap()
        );
    }

    #[test]
    fn cutoff_accumulates_nodes_at_the_cutoff_value() {
        // Paper, Fig. 1(b): the histogram has a spike at k = k_c.
        let k_c = 10;
        let g = PreferentialAttachment::new(3_000, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(k_c))
            .generate(&mut rng(19))
            .unwrap();
        let hist = metrics::degree_histogram(&g);
        assert!(
            hist.count(k_c) > hist.count(k_c - 1),
            "expected accumulation at the cutoff: count({k_c})={} vs count({})={}",
            hist.count(k_c),
            k_c - 1,
            hist.count(k_c - 1)
        );
    }

    #[test]
    fn literal_rejection_variant_matches_size_invariants() {
        let g = PreferentialAttachment::new(200, 2)
            .unwrap()
            .with_variant(PaVariant::LiteralRejection)
            .with_cutoff(DegreeCutoff::hard(20))
            .generate(&mut rng(23))
            .unwrap();
        assert_eq!(g.node_count(), 200);
        assert!(g.max_degree().unwrap() <= 20);
        assert!(g.min_degree().unwrap() >= 1);
        g.assert_consistent();
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        // The fraction of degree-m nodes should dominate, and the maximum degree should be
        // far above the mean - a crude but robust scale-freeness check.
        let g = PreferentialAttachment::new(5_000, 1)
            .unwrap()
            .generate(&mut rng(29))
            .unwrap();
        let hist = metrics::degree_histogram(&g);
        assert!(hist.fraction(1) > 0.5);
        assert!(g.max_degree().unwrap() as f64 > 5.0 * g.average_degree());
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> = Box::new(PreferentialAttachment::new(50, 1).unwrap());
        assert_eq!(gen.name(), "PA");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 50);
        let mut r = rng(31);
        let g = gen.generate(&mut r).unwrap();
        assert_eq!(g.node_count(), 50);
    }

    #[test]
    fn accessors_report_configuration() {
        let pa = PreferentialAttachment::new(100, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(12))
            .with_max_attempts(0);
        assert_eq!(pa.cutoff(), DegreeCutoff::hard(12));
        assert_eq!(pa.stubs(), 3);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = PreferentialAttachment::new(300, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(30));
        let a = gen.generate(&mut rng(99)).unwrap();
        let b = gen.generate(&mut rng(99)).unwrap();
        assert_eq!(a, b);
    }
}
