//! Shared configuration types: hard degree cutoffs and stub counts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper bound a peer imposes on its own degree (the paper's hard cutoff `k_c`).
///
/// A peer with a hard cutoff refuses any new link once its degree reaches `k_c`, because it
/// is unwilling to store more overlay-routing entries. `Unbounded` reproduces the original
/// generators where only the natural (finite-size) cutoff limits hub degrees.
///
/// # Example
///
/// ```
/// use sfo_core::DegreeCutoff;
///
/// let kc = DegreeCutoff::hard(10);
/// assert!(kc.admits(9));
/// assert!(!kc.admits(10));
/// assert!(DegreeCutoff::Unbounded.admits(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DegreeCutoff {
    /// No artificial limit; only finite-size effects cap hub degrees.
    #[default]
    Unbounded,
    /// A hard limit: nodes never exceed this degree.
    Hard(usize),
}

impl DegreeCutoff {
    /// Creates a hard cutoff at `k_c`.
    pub fn hard(k_c: usize) -> Self {
        DegreeCutoff::Hard(k_c)
    }

    /// Returns `true` if a node currently at `degree` may accept one more link.
    #[inline]
    pub fn admits(&self, degree: usize) -> bool {
        match self {
            DegreeCutoff::Unbounded => true,
            DegreeCutoff::Hard(k_c) => degree < *k_c,
        }
    }

    /// Returns the cutoff value, or `None` when unbounded.
    pub fn value(&self) -> Option<usize> {
        match self {
            DegreeCutoff::Unbounded => None,
            DegreeCutoff::Hard(k_c) => Some(*k_c),
        }
    }

    /// Returns the effective maximum degree given a graph of `node_count` nodes: the hard
    /// cutoff if one is set, otherwise `node_count - 1` (a simple graph cannot exceed it).
    pub fn effective_max(&self, node_count: usize) -> usize {
        match self {
            DegreeCutoff::Unbounded => node_count.saturating_sub(1),
            DegreeCutoff::Hard(k_c) => (*k_c).min(node_count.saturating_sub(1)),
        }
    }
}

impl fmt::Display for DegreeCutoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegreeCutoff::Unbounded => write!(f, "no k_c"),
            DegreeCutoff::Hard(k_c) => write!(f, "k_c={k_c}"),
        }
    }
}

impl From<Option<usize>> for DegreeCutoff {
    fn from(value: Option<usize>) -> Self {
        match value {
            Some(k_c) => DegreeCutoff::Hard(k_c),
            None => DegreeCutoff::Unbounded,
        }
    }
}

/// Number of stubs `m` a joining peer tries to fill: its target minimum connectedness.
///
/// The paper's central guideline is that requiring every peer to maintain `m = 2` or
/// `m = 3` links (rather than a single link) removes most of the search-efficiency penalty
/// that hard cutoffs would otherwise cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StubCount(usize);

impl StubCount {
    /// Creates a stub count. Returns `None` if `m` is zero (a joining peer must attempt at
    /// least one link).
    pub fn new(m: usize) -> Option<Self> {
        if m == 0 {
            None
        } else {
            Some(StubCount(m))
        }
    }

    /// Returns the number of stubs as a plain integer.
    #[inline]
    pub fn get(&self) -> usize {
        self.0
    }
}

impl Default for StubCount {
    fn default() -> Self {
        StubCount(1)
    }
}

impl fmt::Display for StubCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m={}", self.0)
    }
}

impl TryFrom<usize> for StubCount {
    type Error = crate::TopologyError;

    fn try_from(value: usize) -> Result<Self, Self::Error> {
        StubCount::new(value).ok_or(crate::TopologyError::InvalidConfig {
            reason: "stub count m must be at least 1",
        })
    }
}

impl From<StubCount> for usize {
    fn from(value: StubCount) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_cutoff_admits_everything() {
        let kc = DegreeCutoff::Unbounded;
        assert!(kc.admits(0));
        assert!(kc.admits(usize::MAX - 1));
        assert_eq!(kc.value(), None);
        assert_eq!(kc.effective_max(100), 99);
        assert_eq!(kc.to_string(), "no k_c");
    }

    #[test]
    fn hard_cutoff_blocks_at_limit() {
        let kc = DegreeCutoff::hard(10);
        assert!(kc.admits(0));
        assert!(kc.admits(9));
        assert!(!kc.admits(10));
        assert!(!kc.admits(11));
        assert_eq!(kc.value(), Some(10));
        assert_eq!(kc.to_string(), "k_c=10");
    }

    #[test]
    fn effective_max_is_bounded_by_graph_size() {
        assert_eq!(DegreeCutoff::hard(10).effective_max(5), 4);
        assert_eq!(DegreeCutoff::hard(10).effective_max(1_000), 10);
        assert_eq!(DegreeCutoff::Unbounded.effective_max(0), 0);
    }

    #[test]
    fn cutoff_from_option() {
        assert_eq!(DegreeCutoff::from(Some(7)), DegreeCutoff::hard(7));
        assert_eq!(DegreeCutoff::from(None), DegreeCutoff::Unbounded);
    }

    #[test]
    fn default_cutoff_is_unbounded() {
        assert_eq!(DegreeCutoff::default(), DegreeCutoff::Unbounded);
    }

    #[test]
    fn stub_count_rejects_zero() {
        assert!(StubCount::new(0).is_none());
        assert!(StubCount::try_from(0usize).is_err());
        assert_eq!(StubCount::new(3).unwrap().get(), 3);
        assert_eq!(usize::from(StubCount::new(2).unwrap()), 2);
        assert_eq!(StubCount::default().get(), 1);
        assert_eq!(StubCount::new(4).unwrap().to_string(), "m=4");
    }

    #[test]
    fn stub_counts_are_ordered() {
        assert!(StubCount::new(1).unwrap() < StubCount::new(3).unwrap());
    }
}
