//! Configuration Model (CM) with a bounded power-law degree sequence (paper, Alg. 2 and
//! §III-C).
//!
//! The CM generates an uncorrelated random network with a *prescribed* degree distribution:
//! each node is assigned a target degree drawn from `P(k) ∝ k^{-γ}` on `[m, k_c]`, all stubs
//! are paired uniformly at random, and finally self-loops and parallel edges are deleted.
//! Because the degree sequence is fixed in advance, the fitted exponent does not drift with
//! the cutoff (unlike PA, DAPA); the only distortion is the marginal one caused by deleting
//! the discrepancies, which also pushes a negligible number of nodes below the minimum
//! degree `m` (paper, Fig. 2). For `m = 1` the resulting network is almost surely
//! disconnected, the cause of the flooding ceiling observed in Fig. 7.

use crate::powerlaw::{support_for, BoundedPowerLaw};
use crate::{DegreeCutoff, Locality, Result, StubCount, TopologyError, TopologyGenerator};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{Graph, MultiGraph, NodeId, SimplifyReport};

/// Outcome of a configuration-model run, including what the simplification step removed.
#[derive(Debug, Clone, PartialEq)]
pub struct CmOutcome {
    /// The simple graph after deleting self-loops and parallel edges.
    pub graph: Graph,
    /// The degree sequence that was targeted before wiring.
    pub target_degrees: Vec<usize>,
    /// What the simplification step discarded.
    pub simplify: SimplifyReport,
}

/// Builder/configuration for the configuration model.
///
/// # Example
///
/// ```
/// use sfo_core::{cm::ConfigurationModel, DegreeCutoff, TopologyGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_core::TopologyError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let graph = ConfigurationModel::new(1_000, 2.6, 2)?
///     .with_cutoff(DegreeCutoff::hard(40))
///     .generate(&mut rng)?;
/// assert_eq!(graph.node_count(), 1_000);
/// assert!(graph.max_degree().unwrap() <= 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationModel {
    nodes: usize,
    gamma: f64,
    stubs: StubCount,
    cutoff: DegreeCutoff,
}

impl ConfigurationModel {
    /// Creates a CM configuration for `nodes` nodes, target exponent `gamma`, and minimum
    /// degree `m`, with no hard cutoff (so the support extends to `N - 1`, the paper's
    /// `k_c = N` convention).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] if `nodes < 2`, `m` is zero, or `gamma` is
    /// not finite and positive.
    pub fn new(nodes: usize, gamma: f64, m: usize) -> Result<Self> {
        let stubs = StubCount::try_from(m)?;
        if nodes < 2 {
            return Err(TopologyError::InvalidConfig {
                reason: "cm needs at least two nodes",
            });
        }
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(TopologyError::InvalidConfig {
                reason: "power-law exponent gamma must be finite and positive",
            });
        }
        Ok(ConfigurationModel {
            nodes,
            gamma,
            stubs,
            cutoff: DegreeCutoff::Unbounded,
        })
    }

    /// Sets the hard cutoff `k_c`, truncating the degree-sequence support to `[m, k_c]`.
    pub fn with_cutoff(mut self, cutoff: DegreeCutoff) -> Self {
        self.cutoff = cutoff;
        self
    }

    /// Returns the configured hard cutoff.
    pub fn cutoff(&self) -> DegreeCutoff {
        self.cutoff
    }

    /// Returns the target power-law exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Returns the minimum degree `m`.
    pub fn stubs(&self) -> usize {
        self.stubs.get()
    }

    /// Generates one CM topology, returning only the simplified graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] when the cutoff leaves an empty degree
    /// support (`k_c < m`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph> {
        Ok(self.generate_with_report(rng)?.graph)
    }

    /// Generates one CM topology, returning the graph together with the target degree
    /// sequence and the simplification report.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidConfig`] when the cutoff leaves an empty degree
    /// support (`k_c < m`).
    pub fn generate_with_report<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CmOutcome> {
        let (k_min, k_max) = support_for(self.nodes, self.stubs.get(), self.cutoff)?;
        let law = BoundedPowerLaw::new(self.gamma, k_min, k_max)?;
        let target_degrees = law.sample_even_sequence(self.nodes, rng);

        // Build the stub list: node i appears target_degrees[i] times.
        let mut stubs: Vec<NodeId> = Vec::with_capacity(target_degrees.iter().sum());
        for (i, &k) in target_degrees.iter().enumerate() {
            stubs.extend(std::iter::repeat_n(NodeId::new(i), k));
        }
        stubs.shuffle(rng);

        // Pair consecutive stubs; a shuffled list paired sequentially is a uniform perfect
        // matching of the stubs, which is exactly the configuration model's wiring step.
        let mut multigraph = MultiGraph::with_nodes(self.nodes);
        for pair in stubs.chunks_exact(2) {
            multigraph.add_edge(pair[0], pair[1])?;
        }

        let (graph, simplify) = multigraph.into_simple();
        Ok(CmOutcome {
            graph,
            target_degrees,
            simplify,
        })
    }
}

impl TopologyGenerator for ConfigurationModel {
    fn generate(&self, rng: &mut dyn RngCore) -> Result<Graph> {
        ConfigurationModel::generate(self, rng)
    }

    fn locality(&self) -> Locality {
        Locality::Global
    }

    fn name(&self) -> &'static str {
        "CM"
    }

    fn target_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::{metrics, traversal};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn configuration_validation() {
        assert!(ConfigurationModel::new(1, 2.5, 1).is_err());
        assert!(ConfigurationModel::new(100, 0.0, 1).is_err());
        assert!(ConfigurationModel::new(100, f64::INFINITY, 1).is_err());
        assert!(ConfigurationModel::new(100, 2.5, 0).is_err());
        let too_tight = ConfigurationModel::new(100, 2.5, 5)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(3))
            .generate(&mut rng(0));
        assert!(too_tight.is_err());
    }

    #[test]
    fn generates_requested_node_count() {
        let g = ConfigurationModel::new(2_000, 2.6, 2)
            .unwrap()
            .generate(&mut rng(1))
            .unwrap();
        assert_eq!(g.node_count(), 2_000);
        g.assert_consistent();
    }

    #[test]
    fn hard_cutoff_bounds_every_degree() {
        let outcome = ConfigurationModel::new(2_000, 2.2, 1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(40))
            .generate_with_report(&mut rng(3))
            .unwrap();
        assert!(outcome
            .target_degrees
            .iter()
            .all(|&k| (1..=40).contains(&k)));
        assert!(outcome.graph.max_degree().unwrap() <= 40);
    }

    #[test]
    fn target_degree_sum_is_even_and_close_to_realized() {
        let outcome = ConfigurationModel::new(3_000, 3.0, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(50))
            .generate_with_report(&mut rng(5))
            .unwrap();
        let target_sum: usize = outcome.target_degrees.iter().sum();
        assert_eq!(target_sum % 2, 0);
        let realized_sum = outcome.graph.total_degree();
        let removed =
            2 * (outcome.simplify.self_loops_removed + outcome.simplify.parallel_edges_removed);
        assert_eq!(realized_sum + removed, target_sum);
        // The paper notes the error from deleting discrepancies is marginal.
        assert!(
            (target_sum - realized_sum) as f64 / target_sum as f64 <= 0.05,
            "more than 5% of stubs lost to simplification"
        );
    }

    #[test]
    fn smaller_cutoffs_cause_fewer_discrepancies() {
        // Paper, §IV-C: harder (smaller) cutoffs decrease the probability of self-loops and
        // multiple connections.
        let loose = ConfigurationModel::new(2_000, 2.2, 1)
            .unwrap()
            .generate_with_report(&mut rng(7))
            .unwrap();
        let tight = ConfigurationModel::new(2_000, 2.2, 1)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(10))
            .generate_with_report(&mut rng(7))
            .unwrap();
        let loose_bad = loose.simplify.self_loops_removed + loose.simplify.parallel_edges_removed;
        let tight_bad = tight.simplify.self_loops_removed + tight.simplify.parallel_edges_removed;
        assert!(
            tight_bad <= loose_bad,
            "expected fewer discrepancies with a hard cutoff ({tight_bad} > {loose_bad})"
        );
    }

    #[test]
    fn simplification_can_push_nodes_below_m() {
        // Paper, Fig. 2: deleting self-loops/multi-edges leaves a negligible number of nodes
        // with degree below m (even zero). We only check that the fraction is small.
        let outcome = ConfigurationModel::new(3_000, 2.2, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(40))
            .generate_with_report(&mut rng(11))
            .unwrap();
        let below_m = outcome.graph.degrees().iter().filter(|&&k| k < 2).count();
        assert!(
            (below_m as f64) < 0.05 * outcome.graph.node_count() as f64,
            "{below_m} nodes below m is not negligible"
        );
    }

    #[test]
    fn m1_networks_are_disconnected_m3_networks_have_giant_component() {
        // Paper, §III-C: CM with m=1 has disconnected clusters; for m>1 the network is
        // almost surely dominated by one giant component.
        let g1 = ConfigurationModel::new(2_000, 2.6, 1)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        let g3 = ConfigurationModel::new(2_000, 2.6, 3)
            .unwrap()
            .generate(&mut rng(13))
            .unwrap();
        assert!(!traversal::is_connected(&g1));
        assert!(traversal::giant_component_fraction(&g1) < 0.95);
        assert!(traversal::giant_component_fraction(&g3) > 0.95);
    }

    #[test]
    fn realized_distribution_tracks_target_exponent() {
        // Heavier tails (smaller gamma) should give a larger maximum degree.
        let g_22 = ConfigurationModel::new(3_000, 2.2, 1)
            .unwrap()
            .generate(&mut rng(17))
            .unwrap();
        let g_30 = ConfigurationModel::new(3_000, 3.0, 1)
            .unwrap()
            .generate(&mut rng(17))
            .unwrap();
        assert!(
            g_22.max_degree().unwrap() > g_30.max_degree().unwrap(),
            "gamma=2.2 should have a heavier tail than gamma=3.0"
        );
        let hist = metrics::degree_histogram(&g_30);
        assert!(
            hist.fraction(1) > 0.4,
            "most nodes should sit at the minimum degree"
        );
    }

    #[test]
    fn trait_object_usage() {
        let gen: Box<dyn TopologyGenerator> = Box::new(
            ConfigurationModel::new(300, 2.6, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(30)),
        );
        assert_eq!(gen.name(), "CM");
        assert_eq!(gen.locality(), Locality::Global);
        assert_eq!(gen.target_nodes(), 300);
        let g = gen.generate(&mut rng(19)).unwrap();
        assert_eq!(g.node_count(), 300);
    }

    #[test]
    fn accessors_report_configuration() {
        let cm = ConfigurationModel::new(500, 2.4, 3)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(25));
        assert_eq!(cm.gamma(), 2.4);
        assert_eq!(cm.stubs(), 3);
        assert_eq!(cm.cutoff(), DegreeCutoff::hard(25));
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = ConfigurationModel::new(800, 2.6, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(40));
        let a = gen.generate(&mut rng(42)).unwrap();
        let b = gen.generate(&mut rng(42)).unwrap();
        assert_eq!(a, b);
    }
}
