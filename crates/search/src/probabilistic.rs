//! Probabilistic flooding — the query-suppression family of refs. \[29, 30\].
//!
//! Plain flooding forwards the query over *every* link, which the paper calls unscalable;
//! normalized flooding caps the fan-out at `k_min`. Probabilistic flooding is the third
//! classical way to tame flooding traffic: every neighbor (excluding the previous hop) is
//! forwarded the query independently with probability `p`. `p = 1` recovers FL exactly;
//! small `p` approaches a branching random walk. On scale-free overlays the interesting
//! regime is intermediate: hubs still spray the query widely in absolute terms (they have
//! many neighbors, each kept with probability `p`), so the coverage penalty is far smaller
//! than the message saving — the same granularity argument the paper makes for NF.

use crate::{SearchAlgorithm, SearchInfo, SearchOutcome, SearchScratch};
use rand::Rng;
use rand::RngCore;
use sfo_graph::{GraphView, NodeId};

/// Probabilistic (gossip-style) flooding with forwarding probability `p`.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::complete_graph;
/// use sfo_graph::NodeId;
/// use sfo_search::{probabilistic::ProbabilisticFlooding, SearchAlgorithm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = complete_graph(30)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let outcome = ProbabilisticFlooding::new(0.5).search(&graph, NodeId::new(0), 2, &mut rng);
/// assert!(outcome.hits <= 29);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilisticFlooding {
    probability: f64,
}

impl ProbabilisticFlooding {
    /// Creates a probabilistic flooding search that forwards over each link with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `(0, 1]` (a forwarding probability of zero would never
    /// deliver anything, and NaN is meaningless).
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "forwarding probability must lie in (0, 1], got {p}"
        );
        ProbabilisticFlooding { probability: p }
    }

    /// Returns the forwarding probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for ProbabilisticFlooding {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "probabilistic flood source {source} out of bounds"
        );
        let mut scratch = SearchScratch::for_search(graph, source);
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "probabilistic flood source {source} out of bounds"
        );
        let visited = &mut scratch.visited;
        visited.reset(graph.node_count());
        visited.insert(source.index());
        let mut hits = 0usize;
        let mut messages = 0usize;
        let queue = &mut scratch.queue;
        queue.clear();
        queue.push_back((source, None, 0));

        while let Some((node, from, depth)) = queue.pop_front() {
            if depth >= ttl {
                continue;
            }
            for &next in graph.neighbors(node) {
                if Some(next) == from {
                    continue;
                }
                // The source always forwards (p applies to relayed copies only), matching
                // the usual gossip formulation: without this the whole search dies at the
                // first step with probability (1 - p)^degree.
                if depth > 0 && rng.gen::<f64>() >= self.probability {
                    continue;
                }
                messages += 1;
                if visited.insert(next.index()) {
                    hits += 1;
                    queue.push_back((next, Some(node), depth + 1));
                }
            }
        }
        SearchOutcome { hits, messages }
    }
}

impl SearchInfo for ProbabilisticFlooding {
    fn name(&self) -> &'static str {
        "pFL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::Flooding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph};
    use sfo_graph::Graph;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    #[should_panic(expected = "forwarding probability")]
    fn zero_probability_is_rejected() {
        let _ = ProbabilisticFlooding::new(0.0);
    }

    #[test]
    #[should_panic(expected = "forwarding probability")]
    fn above_one_probability_is_rejected() {
        let _ = ProbabilisticFlooding::new(1.5);
    }

    #[test]
    fn accessor_reports_probability() {
        let p = ProbabilisticFlooding::new(0.3);
        assert!((p.probability() - 0.3).abs() < 1e-12);
        assert_eq!(p.name(), "pFL");
    }

    #[test]
    fn probability_one_equals_plain_flooding() {
        let g = ring_graph(40, 2).unwrap();
        for ttl in [1u32, 3, 6] {
            let pf = ProbabilisticFlooding::new(1.0).search(&g, NodeId::new(0), ttl, &mut rng(1));
            let fl = Flooding::new().search(&g, NodeId::new(0), ttl, &mut rng(1));
            assert_eq!(pf, fl, "ttl={ttl}");
        }
    }

    #[test]
    fn lower_probability_sends_fewer_messages() {
        let g = complete_graph(60).unwrap();
        let low = ProbabilisticFlooding::new(0.2).search(&g, NodeId::new(0), 3, &mut rng(2));
        let high = ProbabilisticFlooding::new(0.9).search(&g, NodeId::new(0), 3, &mut rng(2));
        assert!(low.messages < high.messages);
        assert!(
            low.hits <= high.hits + 1,
            "coverage should not grow when pruning harder"
        );
    }

    #[test]
    fn source_round_always_forwards() {
        // Even with a small p the first round is deterministic, so every neighbor of the
        // source is hit for ttl = 1.
        let g = complete_graph(10).unwrap();
        let o = ProbabilisticFlooding::new(0.05).search(&g, NodeId::new(0), 1, &mut rng(3));
        assert_eq!(o.hits, 9);
        assert_eq!(o.messages, 9);
    }

    #[test]
    fn zero_ttl_reaches_nothing() {
        let g = complete_graph(5).unwrap();
        let o = ProbabilisticFlooding::new(0.5).search(&g, NodeId::new(0), 0, &mut rng(4));
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn isolated_source_yields_empty_outcome() {
        let g = Graph::with_nodes(3);
        let o = ProbabilisticFlooding::new(0.5).search(&g, NodeId::new(1), 5, &mut rng(5));
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn hits_never_exceed_plain_flooding() {
        let g = ring_graph(60, 3).unwrap();
        for seed in 0..10u64 {
            let pf = ProbabilisticFlooding::new(0.6).search(&g, NodeId::new(7), 4, &mut rng(seed));
            let fl = Flooding::new().search(&g, NodeId::new(7), 4, &mut rng(seed));
            assert!(pf.hits <= fl.hits);
            assert!(pf.messages <= fl.messages);
        }
    }

    #[test]
    fn deterministic_given_the_same_rng_seed() {
        let g = complete_graph(40).unwrap();
        let a = ProbabilisticFlooding::new(0.4).search(&g, NodeId::new(0), 3, &mut rng(11));
        let b = ProbabilisticFlooding::new(0.4).search(&g, NodeId::new(0), 3, &mut rng(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        let g = complete_graph(3).unwrap();
        let _ = ProbabilisticFlooding::new(0.5).search(&g, NodeId::new(9), 2, &mut rng(6));
    }
}
