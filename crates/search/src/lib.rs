//! # sfo-search
//!
//! Decentralized search algorithms for unstructured peer-to-peer overlays, as studied in
//! the paper's evaluation (§V):
//!
//! * [`flooding`] — Flooding (FL): every node forwards the query to all neighbors except
//!   the one it came from, up to a time-to-live `τ`. The best possible coverage, at an
//!   unscalable message cost.
//! * [`normalized`] — Normalized Flooding (NF): nodes forward to at most `k_min` randomly
//!   chosen neighbors, giving flooding-like parallelism with far better granularity.
//! * [`random_walk`] — Random Walk (RW) and multiple parallel walks: one message hops
//!   through the network, trading delivery time for minimal traffic.
//!
//! Beyond the paper's three algorithms, the crate implements the practical variants its
//! related-work section points to, so they can be compared on the same topologies:
//!
//! * [`probabilistic`] — gossip-style probabilistic flooding (refs. \[29, 30\]);
//! * [`expanding_ring`] — successive floods of growing radius (Lv et al., ref. \[23\]);
//! * [`biased_walk`] — the high-degree-seeking walk of Adamic et al. (ref. \[62\]);
//! * [`coverage`] — coverage-curve, granularity, and item-hit-probability metrics.
//!
//! The [`experiment`] module reproduces the paper's measurement methodology: hits
//! (distinct peers reached) and messages per search, averaged over random sources and
//! network realizations, with the RW time-to-live normalized to the message count of the
//! corresponding NF search so the two are compared at equal cost (§V-B).
//!
//! # Example
//!
//! ```
//! use sfo_graph::generators::complete_graph;
//! use sfo_graph::NodeId;
//! use sfo_search::{flooding::Flooding, SearchAlgorithm};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = complete_graph(10)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let outcome = Flooding::new().search(&graph, NodeId::new(0), 1, &mut rng);
//! assert_eq!(outcome.hits, 9); // one hop reaches everyone in a clique
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod outcome;
mod scratch;

pub mod biased_walk;
pub mod coverage;
pub mod expanding_ring;
pub mod experiment;
pub mod flooding;
pub mod normalized;
pub mod probabilistic;
pub mod random_walk;

pub use outcome::{SearchAlgorithm, SearchInfo, SearchOutcome};
pub use scratch::{SearchScratch, VisitedSet};
