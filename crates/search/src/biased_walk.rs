//! Degree-biased random walk — the "power-law search" of Adamic et al. (paper ref. \[62\]).
//!
//! The paper quotes Adamic, Lukose, Puniyani & Huberman's result that a random walk on a
//! scale-free network with exponent `γ ≈ 2.1` needs `T_N ∼ N^0.79` steps. The same work
//! shows that deliberately steering the walk toward *high-degree* neighbors shortens the
//! search dramatically, because the hubs collectively see most of the network. That
//! strategy is implemented here: at each step the query moves to the highest-degree
//! neighbor that has not yet been visited, falling back to a uniformly random neighbor when
//! all of them have been.
//!
//! On overlays with hard cutoffs the strategy loses exactly the advantage it relies on —
//! there are no super-hubs left to climb toward — which makes it the sharpest probe of what
//! the cutoff takes away from hub-exploiting searches, complementing the paper's NF/RW
//! comparison.

use crate::{SearchAlgorithm, SearchInfo, SearchOutcome, SearchScratch};
use rand::Rng;
use rand::RngCore;
use sfo_graph::{GraphView, NodeId};

/// Degree-biased ("high-degree seeking") walk.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::star_graph;
/// use sfo_graph::NodeId;
/// use sfo_search::{biased_walk::DegreeBiasedWalk, SearchAlgorithm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let star = star_graph(10)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // From a leaf, the first hop goes straight to the hub.
/// let outcome = DegreeBiasedWalk::new().search(&star, NodeId::new(3), 1, &mut rng);
/// assert_eq!(outcome.hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegreeBiasedWalk {
    _private: (),
}

impl DegreeBiasedWalk {
    /// Creates a degree-biased walk.
    pub fn new() -> Self {
        DegreeBiasedWalk { _private: () }
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for DegreeBiasedWalk {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        let mut scratch = SearchScratch::new();
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "biased walk source {source} out of bounds"
        );
        let visited = &mut scratch.visited;
        visited.reset(graph.node_count());
        visited.insert(source.index());
        let mut hits = 0usize;
        let mut messages = 0usize;
        let mut current = source;
        let mut previous: Option<NodeId> = None;

        for _ in 0..ttl {
            let neighbors = graph.neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            // Prefer the unvisited neighbor with the largest degree (ties broken by lowest
            // id so the walk is deterministic given the visited set); if everything has
            // been visited already, take a uniformly random neighbor other than the
            // previous hop so the walk can escape the exhausted neighborhood.
            let next = neighbors
                .iter()
                .copied()
                .filter(|&n| !visited.contains(n.index()))
                .max_by_key(|&n| (graph.degree(n), std::cmp::Reverse(n)))
                .unwrap_or_else(|| {
                    if neighbors.len() == 1 {
                        neighbors[0]
                    } else {
                        loop {
                            let candidate = neighbors[rng.gen_range(0..neighbors.len())];
                            if Some(candidate) != previous {
                                break candidate;
                            }
                        }
                    }
                });
            messages += 1;
            if visited.insert(next.index()) {
                hits += 1;
            }
            previous = Some(current);
            current = next;
        }
        SearchOutcome { hits, messages }
    }
}

impl SearchInfo for DegreeBiasedWalk {
    fn name(&self) -> &'static str {
        "HD-RW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk::RandomWalk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph, star_graph};
    use sfo_graph::Graph;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Two hubs bridged by a path of low-degree nodes:
    /// hub A (0) with leaves 1..=4, hub B (5) with leaves 6..=9, bridge 0 - 10 - 5.
    fn two_hubs() -> Graph {
        let mut g = Graph::with_nodes(11);
        for leaf in 1..=4 {
            g.add_edge(NodeId::new(0), NodeId::new(leaf)).unwrap();
        }
        for leaf in 6..=9 {
            g.add_edge(NodeId::new(5), NodeId::new(leaf)).unwrap();
        }
        g.add_edge(NodeId::new(0), NodeId::new(10)).unwrap();
        g.add_edge(NodeId::new(10), NodeId::new(5)).unwrap();
        g
    }

    #[test]
    fn first_hop_from_a_leaf_goes_to_the_hub() {
        let g = star_graph(20).unwrap();
        let o = DegreeBiasedWalk::new().search(&g, NodeId::new(7), 1, &mut rng(1));
        assert_eq!(o.hits, 1);
        assert_eq!(o.messages, 1);
    }

    #[test]
    fn walk_prefers_unvisited_high_degree_neighbors() {
        // Starting from hub A's leaf, the walk reaches hub A in one hop, crosses the bridge
        // toward hub B (the bridge node out-degrees the remaining leaves), and drains hub
        // B's leaves: at least nodes {0, 10, 5, 6, 7, 8, 9} are visited within 20 steps.
        let g = two_hubs();
        let o = DegreeBiasedWalk::new().search(&g, NodeId::new(1), 20, &mut rng(2));
        assert!(
            o.hits >= 7,
            "expected both hubs and hub B's leaves covered, got {}",
            o.hits
        );
    }

    #[test]
    fn covers_a_clique_without_revisits() {
        // In a clique every neighbor has equal degree; the walk should still visit a new
        // node at every step until everyone has been seen.
        let g = complete_graph(12).unwrap();
        let o = DegreeBiasedWalk::new().search(&g, NodeId::new(0), 11, &mut rng(3));
        assert_eq!(o.hits, 11);
        assert_eq!(o.messages, 11);
    }

    #[test]
    fn beats_or_matches_uniform_walk_on_a_star() {
        // On a star the uniform walk bounces hub -> leaf -> hub, wasting half its budget;
        // the biased walk only wastes steps once everything is visited.
        let g = star_graph(30).unwrap();
        let biased = DegreeBiasedWalk::new().search(&g, NodeId::new(1), 20, &mut rng(4));
        let uniform = RandomWalk::new().search(&g, NodeId::new(1), 20, &mut rng(4));
        assert!(biased.hits >= uniform.hits);
    }

    #[test]
    fn message_count_equals_ttl_when_not_stuck() {
        let g = ring_graph(25, 2).unwrap();
        let o = DegreeBiasedWalk::new().search(&g, NodeId::new(0), 14, &mut rng(5));
        assert_eq!(o.messages, 14);
        assert!(o.hits <= 14);
    }

    #[test]
    fn zero_ttl_and_isolated_source() {
        let g = complete_graph(5).unwrap();
        assert_eq!(
            DegreeBiasedWalk::new().search(&g, NodeId::new(0), 0, &mut rng(6)),
            SearchOutcome::default()
        );
        let isolated = Graph::with_nodes(3);
        assert_eq!(
            DegreeBiasedWalk::new().search(&isolated, NodeId::new(1), 8, &mut rng(6)),
            SearchOutcome::default()
        );
    }

    #[test]
    fn hits_never_exceed_component_size() {
        let g = ring_graph(10, 1).unwrap();
        let o = DegreeBiasedWalk::new().search(&g, NodeId::new(0), 200, &mut rng(7));
        assert!(o.hits <= 9);
        assert_eq!(o.messages, 200);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(DegreeBiasedWalk::new().name(), "HD-RW");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        let g = complete_graph(3).unwrap();
        let _ = DegreeBiasedWalk::new().search(&g, NodeId::new(9), 2, &mut rng(8));
    }
}
