//! Measurement harness reproducing the paper's search-efficiency methodology (§V-B).
//!
//! For each time-to-live `τ`, a search is launched from many uniformly random source peers
//! and the hit and message counts are averaged. Random walks are compared *at equal cost*:
//! the RW hop budget for a point labelled `τ` is set to the number of messages the NF
//! search with that `τ` generated in the same scenario — the normalization the paper (and
//! Gkantsidis et al.) use so that Figs. 9/10 and Figs. 11/12 share an x axis.
//!
//! Every harness function is generic over [`GraphView`], so sweeps run equally on a
//! mutable [`Graph`](sfo_graph::Graph) or on a frozen
//! [`CsrGraph`](sfo_graph::CsrGraph) snapshot. The figure harness freezes each
//! realization once and runs all TTL sweeps against the snapshot; for a fixed seed the
//! outcomes are identical on either backend.

use crate::normalized::NormalizedFlooding;
use crate::random_walk::RandomWalk;
use crate::{SearchAlgorithm, SearchOutcome};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use sfo_graph::{GraphView, NodeId};

/// Hits and messages averaged over many random source peers for one `τ` value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AveragedOutcome {
    /// The time-to-live this point corresponds to (for RW curves, the TTL of the NF search
    /// whose message count set the walk budget).
    pub ttl: u32,
    /// Mean number of distinct peers reached per search.
    pub mean_hits: f64,
    /// Mean number of messages per search.
    pub mean_messages: f64,
    /// Number of searches averaged.
    pub searches: usize,
}

impl AveragedOutcome {
    /// Folds raw per-search outcomes into the averaged point for `ttl`.
    ///
    /// This is the single averaging rule of the workspace — the serial harness below
    /// and the batched sweeps in `sfo-engine` both produce their points through it.
    pub fn from_outcomes(ttl: u32, outcomes: &[SearchOutcome]) -> Self {
        let n = outcomes.len().max(1) as f64;
        AveragedOutcome {
            ttl,
            mean_hits: outcomes.iter().map(|o| o.hits as f64).sum::<f64>() / n,
            mean_messages: outcomes.iter().map(|o| o.messages as f64).sum::<f64>() / n,
            searches: outcomes.len(),
        }
    }
}

/// Derives the RNG for stream `index` of a family labelled by `salt` under a master
/// `seed`.
///
/// This is the single stream-derivation rule of the workspace: the parallel search
/// harness below uses it for per-thread streams (`salt = 0`), and the figure harness in
/// `sfo-experiments` uses it for per-realization streams (`salt` hashed from the series
/// label) — so independent streams are derived identically everywhere. The golden-ratio
/// multiply decorrelates consecutive indices; the salt rotation keeps label families
/// apart.
pub fn stream_rng(seed: u64, salt: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ salt.rotate_left(17) ^ ((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Hashes a series label into the salt of its stream family.
///
/// An FNV-style xor-and-multiply fold; note the multiplier is a historical constant of
/// this workspace, *not* the 64-bit FNV prime — do not "correct" it, every seeded
/// fixture and the scenario layer's bit-identical-reproduction guarantee depend on these
/// exact stream identities.
///
/// Both the figure harness in `sfo-experiments` and the scenario runner in
/// `sfo-scenario` derive their per-realization RNG streams as
/// `stream_rng(seed, label_salt(label), realization)`, so a curve labelled the same way
/// sees the same topologies no matter which harness runs it.
pub fn label_salt(label: &str) -> u64 {
    label.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

fn random_source<G: GraphView + ?Sized, R: Rng + ?Sized>(graph: &G, rng: &mut R) -> NodeId {
    NodeId::new(rng.gen_range(0..graph.node_count()))
}

/// Runs `searches` searches with the given algorithm and TTL from uniformly random sources
/// and averages the outcomes.
///
/// # Panics
///
/// Panics if `graph` has no nodes.
pub fn average_over_sources<G: GraphView + ?Sized>(
    graph: &G,
    algorithm: &dyn SearchAlgorithm<G>,
    ttl: u32,
    searches: usize,
    rng: &mut dyn RngCore,
) -> AveragedOutcome {
    assert!(graph.node_count() > 0, "cannot search an empty graph");
    let outcomes: Vec<SearchOutcome> = (0..searches)
        .map(|_| {
            let source = random_source(graph, rng);
            algorithm.search(graph, source, ttl, rng)
        })
        .collect();
    AveragedOutcome::from_outcomes(ttl, &outcomes)
}

/// Runs [`average_over_sources`] for every TTL in `ttls`.
pub fn ttl_sweep<G: GraphView + ?Sized>(
    graph: &G,
    algorithm: &dyn SearchAlgorithm<G>,
    ttls: &[u32],
    searches: usize,
    rng: &mut dyn RngCore,
) -> Vec<AveragedOutcome> {
    ttls.iter()
        .map(|&ttl| average_over_sources(graph, algorithm, ttl, searches, rng))
        .collect()
}

/// Runs a TTL sweep of random-walk searches whose hop budget is normalized to the message
/// cost of normalized flooding.
///
/// For each TTL `τ` and each random source, an NF search with fan-out `k_min` is run first;
/// the number of messages it produced becomes the hop budget of an RW search from the same
/// source. The reported point keeps `τ` as its abscissa, exactly like Figs. 11 and 12.
pub fn rw_normalized_to_nf<G: GraphView + ?Sized>(
    graph: &G,
    k_min: usize,
    ttls: &[u32],
    searches: usize,
    rng: &mut dyn RngCore,
) -> Vec<AveragedOutcome> {
    assert!(graph.node_count() > 0, "cannot search an empty graph");
    let nf = NormalizedFlooding::new(k_min);
    let rw = RandomWalk::new();
    ttls.iter()
        .map(|&ttl| {
            let outcomes: Vec<SearchOutcome> = (0..searches)
                .map(|_| {
                    let source = random_source(graph, rng);
                    let nf_outcome = nf.search(graph, source, ttl, rng);
                    let budget = u32::try_from(nf_outcome.messages).unwrap_or(u32::MAX);
                    rw.search(graph, source, budget, rng)
                })
                .collect();
            AveragedOutcome::from_outcomes(ttl, &outcomes)
        })
        .collect()
}

/// Parallel variant of [`average_over_sources`]: the searches are split across `threads`
/// worker threads, each with an independent RNG stream derived from `seed` via
/// [`stream_rng`].
///
/// Results are deterministic for a fixed `(seed, threads, searches)` triple.
///
/// # Panics
///
/// Panics if `graph` has no nodes or `threads` is zero.
pub fn average_over_sources_parallel<G: GraphView + Sync + ?Sized>(
    graph: &G,
    algorithm: &(dyn SearchAlgorithm<G> + Sync),
    ttl: u32,
    searches: usize,
    threads: usize,
    seed: u64,
) -> AveragedOutcome {
    assert!(graph.node_count() > 0, "cannot search an empty graph");
    assert!(threads > 0, "at least one worker thread is required");
    let threads = threads.min(searches.max(1));
    let per_thread = searches / threads;
    let remainder = searches % threads;

    let all_outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let count = per_thread + usize::from(t < remainder);
            handles.push(scope.spawn(move || {
                let mut rng = stream_rng(seed, 0, t);
                (0..count)
                    .map(|_| {
                        let source = random_source(graph, &mut rng);
                        algorithm.search(graph, source, ttl, &mut rng)
                    })
                    .collect::<Vec<SearchOutcome>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search worker panicked"))
            .collect::<Vec<SearchOutcome>>()
    });

    AveragedOutcome::from_outcomes(ttl, &all_outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::Flooding;
    use sfo_graph::generators::{complete_graph, ring_graph};
    use sfo_graph::Graph;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn averaging_over_a_vertex_transitive_graph_is_exact() {
        // Every source of a cycle sees the same neighborhood, so the average is exact.
        let g = ring_graph(30, 1).unwrap();
        let avg = average_over_sources(&g, &Flooding::new(), 3, 10, &mut rng(1));
        assert_eq!(avg.ttl, 3);
        assert_eq!(avg.searches, 10);
        assert!((avg.mean_hits - 6.0).abs() < 1e-12);
        assert!((avg.mean_messages - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_monotone_hits_for_flooding() {
        let g = ring_graph(60, 2).unwrap();
        let sweep = ttl_sweep(&g, &Flooding::new(), &[1, 2, 4, 8], 20, &mut rng(2));
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(w[1].mean_hits >= w[0].mean_hits);
        }
    }

    #[test]
    fn sweeps_are_identical_on_graph_and_frozen_snapshot() {
        let g = ring_graph(40, 2).unwrap();
        let frozen = g.freeze();
        let on_graph = ttl_sweep(&g, &Flooding::new(), &[1, 3, 5], 15, &mut rng(8));
        let on_csr = ttl_sweep(&frozen, &Flooding::new(), &[1, 3, 5], 15, &mut rng(8));
        assert_eq!(on_graph, on_csr);
    }

    #[test]
    fn rw_normalization_spends_about_the_nf_message_budget() {
        let g = complete_graph(60).unwrap();
        let points = rw_normalized_to_nf(&g, 2, &[2, 4], 25, &mut rng(3));
        assert_eq!(points.len(), 2);
        for (point, ttl) in points.iter().zip([2u32, 4]) {
            assert_eq!(point.ttl, ttl);
            // NF with fan-out 2 generates at most 2 + 4 + ... messages; RW spends exactly that
            // budget unless it gets stuck, which cannot happen in a clique.
            let nf_budget_upper: f64 = (1..=ttl).map(|t| 2f64.powi(t as i32)).sum();
            assert!(point.mean_messages <= nf_budget_upper + 1e-9);
            assert!(point.mean_messages >= 2.0);
            assert!(point.mean_hits > 0.0);
        }
    }

    #[test]
    fn parallel_average_matches_search_count_and_is_deterministic() {
        let g = ring_graph(80, 2).unwrap();
        let a = average_over_sources_parallel(&g, &Flooding::new(), 3, 37, 4, 99);
        let b = average_over_sources_parallel(&g, &Flooding::new(), 3, 37, 4, 99);
        assert_eq!(a, b);
        assert_eq!(a.searches, 37);
        // The cycle is vertex transitive, so the parallel average equals the exact value.
        assert!(
            (a.mean_hits - average_over_sources(&g, &Flooding::new(), 3, 5, &mut rng(1)).mean_hits)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn parallel_average_runs_on_a_frozen_snapshot() {
        let g = ring_graph(80, 2).unwrap();
        let frozen = g.freeze();
        let on_graph = average_over_sources_parallel(&g, &Flooding::new(), 3, 16, 4, 5);
        let on_csr = average_over_sources_parallel(&frozen, &Flooding::new(), 3, 16, 4, 5);
        assert_eq!(on_graph, on_csr);
    }

    #[test]
    fn parallel_with_more_threads_than_searches_still_works() {
        let g = ring_graph(20, 1).unwrap();
        let avg = average_over_sources_parallel(&g, &Flooding::new(), 2, 3, 16, 7);
        assert_eq!(avg.searches, 3);
    }

    #[test]
    fn stream_rng_separates_indices_and_salts() {
        use rand::RngCore as _;
        let a = stream_rng(1, 0, 0).next_u64();
        let b = stream_rng(1, 0, 1).next_u64();
        let c = stream_rng(1, 7, 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, stream_rng(1, 0, 0).next_u64());
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_is_rejected() {
        let g = Graph::new();
        let _ = average_over_sources(&g, &Flooding::new(), 1, 1, &mut rng(1));
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_is_rejected() {
        let g = ring_graph(10, 1).unwrap();
        let _ = average_over_sources_parallel(&g, &Flooding::new(), 1, 1, 0, 1);
    }
}
