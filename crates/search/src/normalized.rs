//! Normalized Flooding search (NF) — paper §V-A.2, after Gkantsidis, Mihail & Saberi.
//!
//! Flooding has poor granularity: once the query reaches a hub, the next round contacts a
//! huge number of peers at once. NF normalizes the fan-out to the minimum degree `k_min` of
//! the network: a peer whose degree is `k_min` forwards to all neighbors except the
//! previous hop, while a higher-degree peer forwards to only `k_min` randomly chosen
//! neighbors (again excluding the previous hop). The paper runs NF with `k_min = m`, the
//! stub count of the topology-generation mechanism, even when a few peers end up below `m`
//! (CM after simplification, DAPA with short horizons).

use crate::{SearchAlgorithm, SearchInfo, SearchOutcome, SearchScratch};
use rand::seq::SliceRandom;
use rand::RngCore;
use sfo_graph::{GraphView, NodeId};

/// Normalized flooding with a configurable fan-out `k_min`.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::complete_graph;
/// use sfo_graph::NodeId;
/// use sfo_search::{normalized::NormalizedFlooding, SearchAlgorithm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = complete_graph(20)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let nf = NormalizedFlooding::new(2);
/// let outcome = nf.search(&graph, NodeId::new(0), 1, &mut rng);
/// assert_eq!(outcome.hits, 2); // fan-out limited to k_min even in a clique
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizedFlooding {
    k_min: usize,
}

impl NormalizedFlooding {
    /// Creates a normalized flooding search with fan-out `k_min`.
    ///
    /// # Panics
    ///
    /// Panics if `k_min` is zero; a fan-out of zero would never forward anything.
    pub fn new(k_min: usize) -> Self {
        assert!(k_min > 0, "k_min must be at least 1");
        NormalizedFlooding { k_min }
    }

    /// Returns the configured fan-out.
    pub fn k_min(&self) -> usize {
        self.k_min
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for NormalizedFlooding {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "nf source {source} out of bounds"
        );
        let mut scratch = SearchScratch::for_search(graph, source);
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "nf source {source} out of bounds"
        );
        let visited = &mut scratch.visited;
        visited.reset(graph.node_count());
        visited.insert(source.index());
        let mut hits = 0usize;
        let mut messages = 0usize;
        let queue = &mut scratch.queue;
        queue.clear();
        queue.push_back((source, None, 0));
        let candidates = &mut scratch.candidates;

        while let Some((node, from, depth)) = queue.pop_front() {
            if depth >= ttl {
                continue;
            }
            candidates.clear();
            candidates.extend(
                graph
                    .neighbors(node)
                    .iter()
                    .copied()
                    .filter(|&n| Some(n) != from),
            );
            let targets: &[NodeId] = if candidates.len() > self.k_min {
                candidates.partial_shuffle(rng, self.k_min).0
            } else {
                candidates
            };
            for &next in targets {
                messages += 1;
                if visited.insert(next.index()) {
                    hits += 1;
                    queue.push_back((next, Some(node), depth + 1));
                }
            }
        }
        SearchOutcome { hits, messages }
    }
}

impl SearchInfo for NormalizedFlooding {
    fn name(&self) -> &'static str {
        "NF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::Flooding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph};
    use sfo_graph::Graph;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    #[should_panic(expected = "k_min")]
    fn zero_fanout_is_rejected() {
        let _ = NormalizedFlooding::new(0);
    }

    #[test]
    fn accessor_reports_fanout() {
        assert_eq!(NormalizedFlooding::new(3).k_min(), 3);
        assert_eq!(NormalizedFlooding::new(3).name(), "NF");
    }

    #[test]
    fn zero_ttl_reaches_nothing() {
        let g = complete_graph(6).unwrap();
        let o = NormalizedFlooding::new(2).search(&g, NodeId::new(0), 0, &mut rng(1));
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn fanout_bounds_per_round_growth() {
        // With fan-out k, at most k + k^2 + ... + k^tau peers can be hit.
        let g = complete_graph(200).unwrap();
        let k = 2usize;
        for ttl in 1..=4u32 {
            let o = NormalizedFlooding::new(k).search(&g, NodeId::new(0), ttl, &mut rng(2));
            let bound: usize = (1..=ttl).map(|t| k.pow(t)).sum();
            assert!(
                o.hits <= bound,
                "ttl={ttl}: hits {} exceed bound {bound}",
                o.hits
            );
        }
    }

    #[test]
    fn on_low_degree_nodes_nf_equals_fl() {
        // Every node of a cycle has degree 2 = k_min, so NF forwards to everyone FL would.
        let g = ring_graph(40, 1).unwrap();
        for ttl in [1u32, 3, 7] {
            let nf = NormalizedFlooding::new(2).search(&g, NodeId::new(5), ttl, &mut rng(3));
            let fl = Flooding::new().search(&g, NodeId::new(5), ttl, &mut rng(3));
            assert_eq!(nf.hits, fl.hits, "ttl={ttl}");
            assert_eq!(nf.messages, fl.messages, "ttl={ttl}");
        }
    }

    #[test]
    fn nf_uses_no_more_messages_than_fl() {
        let g = complete_graph(50).unwrap();
        for ttl in [1u32, 2, 3] {
            let nf = NormalizedFlooding::new(3).search(&g, NodeId::new(0), ttl, &mut rng(4));
            let fl = Flooding::new().search(&g, NodeId::new(0), ttl, &mut rng(4));
            assert!(nf.messages <= fl.messages);
            assert!(nf.hits <= fl.hits);
        }
    }

    #[test]
    fn isolated_source_yields_empty_outcome() {
        let g = Graph::with_nodes(4);
        let o = NormalizedFlooding::new(2).search(&g, NodeId::new(2), 5, &mut rng(5));
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn deterministic_given_the_same_rng_seed() {
        let g = complete_graph(30).unwrap();
        let a = NormalizedFlooding::new(2).search(&g, NodeId::new(0), 4, &mut rng(9));
        let b = NormalizedFlooding::new(2).search(&g, NodeId::new(0), 4, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        let g = complete_graph(3).unwrap();
        let _ = NormalizedFlooding::new(1).search(&g, NodeId::new(7), 2, &mut rng(6));
    }
}
