//! Reusable per-worker scratch space for the search hot path.
//!
//! Every search marks visited peers and (for the flooding family) queues a frontier.
//! Allocating those structures fresh per query — `vec![false; N]` plus an empty
//! `VecDeque` — costs a megabyte of zeroing per query at N=10^6 before the first
//! neighbor read, and the sweeps run thousands of queries per frozen realization.
//! [`SearchScratch`] amortizes that: one arena per worker thread, reused across jobs
//! and batches, with an epoch-stamped bitset whose reset is O(1) instead of O(N).
//!
//! The arena is pure *memory* state: algorithms read and write exactly the same
//! visited/frontier values they would with fresh allocations, in the same order, so a
//! search through a dirty reused arena consumes its RNG stream identically and returns
//! a byte-identical [`SearchOutcome`](crate::SearchOutcome). That invariant is what
//! lets `sfo-engine` hand every pool worker a private arena without disturbing the
//! per-job RNG streams (`tests/scratch_equivalence.rs` enforces it).

use sfo_graph::{GraphView, NodeId};
use std::collections::VecDeque;

/// A dense visited set over `u64` bitset words with epoch stamping.
///
/// Clearing a `vec![bool; N]` between searches costs O(N); the epoch trick makes it
/// O(1): [`VisitedSet::reset`] bumps a generation counter, and each word lazily
/// zeroes itself the first time it is touched in the new generation. A word whose
/// stamp is stale *reads* as all-unset without being written, so a reset costs
/// nothing for the (vast majority of) words a short search never visits.
///
/// # Example
///
/// ```
/// use sfo_search::VisitedSet;
///
/// let mut visited = VisitedSet::new();
/// visited.reset(1000);
/// assert!(visited.insert(7)); // newly marked
/// assert!(!visited.insert(7)); // already marked
/// visited.reset(1000); // O(1): everything reads as unset again
/// assert!(!visited.contains(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VisitedSet {
    words: Vec<u64>,
    stamps: Vec<u64>,
    epoch: u64,
}

impl VisitedSet {
    /// Creates an empty set; call [`VisitedSet::reset`] before use.
    pub fn new() -> Self {
        VisitedSet::default()
    }

    /// Prepares the set for node indexes in `0..node_count`: every bit reads as
    /// unset. Grows the backing words when `node_count` exceeds the current
    /// capacity and never shrinks, so a worker's set settles at the largest graph
    /// it has served.
    pub fn reset(&mut self, node_count: usize) {
        let words = node_count.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
            self.stamps.resize(words, 0);
        }
        // Stamps start at 0, so the first reset must move the epoch past the
        // initial stamp value; wrapping is unreachable in practice (2^64 resets).
        self.epoch += 1;
    }

    /// Marks `index` as visited; returns `true` when it was not yet marked.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the range given to the last [`VisitedSet::reset`].
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        let w = index / 64;
        let bit = 1u64 << (index % 64);
        if self.stamps[w] != self.epoch {
            self.stamps[w] = self.epoch;
            self.words[w] = bit;
            return true;
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        fresh
    }

    /// Returns `true` if `index` has been marked since the last reset.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the range given to the last [`VisitedSet::reset`].
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        let w = index / 64;
        self.stamps[w] == self.epoch && self.words[w] & (1u64 << (index % 64)) != 0
    }

    /// Exports the visited marks as sparse `(word index, bitset word)` pairs — only
    /// words holding at least one mark in the current generation appear, in ascending
    /// word order. This is the visited-bitset delta a forwarded search frontier
    /// carries across hosts: a short search on a large graph exports a handful of
    /// words, never O(N).
    pub fn export_sparse(&self) -> Vec<(u32, u64)> {
        self.words
            .iter()
            .zip(&self.stamps)
            .enumerate()
            .filter(|(_, (&word, &stamp))| stamp == self.epoch && word != 0)
            .map(|(w, (&word, _))| (w as u32, word))
            .collect()
    }

    /// Resets the set for `node_count` nodes and installs the sparse marks exported
    /// by [`VisitedSet::export_sparse`] on another host. Round-trips exactly: after
    /// the import, every `contains`/`insert` answers as it would have on the
    /// exporting set.
    ///
    /// # Panics
    ///
    /// Panics if a word index lies outside `0..node_count.div_ceil(64)` — callers
    /// decoding untrusted frontiers must bound-check first.
    pub fn import_sparse(&mut self, node_count: usize, marks: &[(u32, u64)]) {
        self.reset(node_count);
        let words = node_count.div_ceil(64);
        for &(w, word) in marks {
            let w = w as usize;
            assert!(
                w < words,
                "visited word {w} out of range for {node_count} nodes"
            );
            self.stamps[w] = self.epoch;
            self.words[w] = word;
        }
    }
}

/// Reusable buffers for one search at a time: the visited bitset, the flooding
/// frontier, and the fan-out candidate list.
///
/// One arena serves one search at a time and any number of searches in sequence;
/// every algorithm resets the state it uses on entry, so a *dirty* arena left by a
/// previous job (even of a different algorithm, or on a different graph) is
/// indistinguishable from a fresh one. `sfo-engine` keeps one per pool worker.
///
/// The buffers are public so scratch-aware traversals outside this crate (the
/// simulator's snapshot query batches) can reuse them under the same contract:
/// reset what you use on entry, leave whatever you like behind.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    /// Visited marks, reset per search.
    pub visited: VisitedSet,
    /// Flooding frontier: (peer, previous hop, depth) entries still to forward.
    pub queue: VecDeque<(NodeId, Option<NodeId>, u32)>,
    /// Per-round neighbor candidates for fan-out-limited forwarding (NF).
    pub candidates: Vec<NodeId>,
}

impl SearchScratch {
    /// Creates an empty arena; buffers grow to the workload on first use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Creates an arena pre-sized for one search from `source` on `graph`: the
    /// frontier and candidate buffers start at the first forwarding round's size
    /// (the source's degree, floored by the graph's average degree) instead of
    /// reallocating up the whole growth curve from zero.
    pub fn for_search<G: GraphView + ?Sized>(graph: &G, source: NodeId) -> Self {
        let average = (2 * graph.edge_count()) / graph.node_count().max(1);
        let estimate = graph.degree(source).max(average) + 1;
        let mut scratch = SearchScratch {
            visited: VisitedSet::new(),
            queue: VecDeque::with_capacity(estimate),
            candidates: Vec::with_capacity(estimate),
        };
        scratch.visited.reset(graph.node_count());
        scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_graph::generators::ring_graph;

    #[test]
    fn insert_reports_first_marks_only() {
        let mut v = VisitedSet::new();
        v.reset(130);
        assert!(v.insert(0));
        assert!(v.insert(64));
        assert!(v.insert(129));
        assert!(!v.insert(0));
        assert!(!v.insert(64));
        assert!(v.contains(129));
        assert!(!v.contains(128));
    }

    #[test]
    fn reset_clears_in_constant_time_semantics() {
        let mut v = VisitedSet::new();
        v.reset(256);
        for i in 0..256 {
            assert!(v.insert(i));
        }
        v.reset(256);
        for i in 0..256 {
            assert!(!v.contains(i), "bit {i} survived a reset");
            assert!(v.insert(i));
        }
    }

    #[test]
    fn reset_grows_to_larger_graphs() {
        let mut v = VisitedSet::new();
        v.reset(10);
        assert!(v.insert(9));
        v.reset(1000);
        assert!(!v.contains(9));
        assert!(v.insert(999));
    }

    #[test]
    fn matches_a_bool_vector_under_random_operations() {
        // The bitset must be semantically identical to vec![false; N] — that
        // equivalence is what keeps scratch searches byte-identical.
        let n = 300usize;
        let mut v = VisitedSet::new();
        let mut reference = vec![false; n];
        let mut state = 0x9E3779B97F4A7C15u64;
        v.reset(n);
        for round in 0..5 {
            for _ in 0..500 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
                let i = (state >> 33) as usize % n;
                let fresh = !reference[i];
                reference[i] = true;
                assert_eq!(v.insert(i), fresh, "insert({i}) disagreed");
                assert!(v.contains(i));
            }
            v.reset(n);
            reference.iter_mut().for_each(|b| *b = false);
        }
    }

    #[test]
    fn sparse_export_round_trips_and_skips_stale_generations() {
        let mut v = VisitedSet::new();
        v.reset(400);
        for i in [0usize, 63, 64, 199, 399] {
            v.insert(i);
        }
        let marks = v.export_sparse();
        // Only touched words appear, in ascending order.
        assert_eq!(
            marks.iter().map(|&(w, _)| w).collect::<Vec<_>>(),
            vec![0, 1, 3, 6]
        );
        let mut other = VisitedSet::new();
        other.reset(50); // deliberately dirty and smaller
        other.insert(13);
        other.import_sparse(400, &marks);
        for i in 0..400 {
            assert_eq!(
                other.contains(i),
                v.contains(i),
                "bit {i} diverged after import"
            );
        }
        assert!(!other.insert(63));
        assert!(other.insert(62));
        // Marks from a previous generation never leak into an export.
        v.reset(400);
        v.insert(7);
        assert_eq!(v.export_sparse(), vec![(0, 1u64 << 7)]);
        // A fully unvisited set exports nothing.
        v.reset(400);
        assert!(v.export_sparse().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn importing_an_out_of_range_word_panics() {
        let mut v = VisitedSet::new();
        v.import_sparse(100, &[(2, 1)]);
    }

    #[test]
    fn for_search_seeds_capacity_from_degrees() {
        let g = ring_graph(100, 3).unwrap();
        let scratch = SearchScratch::for_search(&g, NodeId::new(0));
        assert!(scratch.queue.capacity() >= 6);
        assert!(scratch.candidates.capacity() >= 6);
        assert!(!scratch.visited.contains(0));
    }

    #[test]
    fn empty_graph_does_not_divide_by_zero() {
        let g = sfo_graph::Graph::with_nodes(1);
        let scratch = SearchScratch::for_search(&g, NodeId::new(0));
        assert_eq!(scratch.queue.len(), 0);
    }
}
