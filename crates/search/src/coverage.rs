//! Coverage growth and granularity metrics.
//!
//! The paper argues that the *shape* of the coverage curve matters as much as its end
//! point: FL has "poor granularity, i.e., each additional step in the search significantly
//! increases the number of nodes visited" (§V-A.1), which is precisely why NF and RW exist.
//! This module turns that argument into measurable quantities:
//!
//! * [`coverage_curve`] — hits and messages as a function of the TTL, for any
//!   [`SearchAlgorithm`];
//! * [`granularity`] — the marginal cost of coverage: new peers reached per additional
//!   message between successive TTLs;
//! * [`success_probability`] — the probability that a search reaching `hits` peers finds
//!   at least one of `replicas` uniformly placed copies of an item, which converts
//!   coverage curves into the hit-rate numbers a P2P operator actually cares about.

use crate::{SearchAlgorithm, SearchOutcome};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{GraphView, NodeId};

/// One point of a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoveragePoint {
    /// Time-to-live of the search.
    pub ttl: u32,
    /// Outcome of the search at this TTL.
    pub outcome: SearchOutcome,
}

/// Runs `algorithm` from `source` for every TTL in `0..=max_ttl` and returns the resulting
/// coverage curve.
///
/// Each TTL is an independent search (fresh RNG draws), matching how the paper's
/// hits-versus-τ figures are produced.
pub fn coverage_curve<G: GraphView + ?Sized>(
    algorithm: &dyn SearchAlgorithm<G>,
    graph: &G,
    source: NodeId,
    max_ttl: u32,
    rng: &mut dyn RngCore,
) -> Vec<CoveragePoint> {
    (0..=max_ttl)
        .map(|ttl| CoveragePoint {
            ttl,
            outcome: algorithm.search(graph, source, ttl, rng),
        })
        .collect()
}

/// One point of a granularity curve: the marginal efficiency of raising the TTL by one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityPoint {
    /// The larger of the two TTLs being compared.
    pub ttl: u32,
    /// Additional peers reached relative to the previous TTL.
    pub extra_hits: f64,
    /// Additional messages spent relative to the previous TTL.
    pub extra_messages: f64,
    /// Extra hits per extra message (0 when no extra messages were spent).
    pub marginal_hits_per_message: f64,
}

/// Computes the granularity (marginal hits per marginal message) of a coverage curve.
///
/// A curve with poor granularity — plain flooding past the hub radius — shows large jumps
/// in `extra_messages` with diminishing `marginal_hits_per_message`; NF keeps the marginal
/// efficiency roughly flat.
pub fn granularity(curve: &[CoveragePoint]) -> Vec<GranularityPoint> {
    curve
        .windows(2)
        .map(|pair| {
            let (prev, next) = (pair[0], pair[1]);
            let extra_hits = next.outcome.hits as f64 - prev.outcome.hits as f64;
            let extra_messages = next.outcome.messages as f64 - prev.outcome.messages as f64;
            let marginal = if extra_messages > 0.0 {
                extra_hits / extra_messages
            } else {
                0.0
            };
            GranularityPoint {
                ttl: next.ttl,
                extra_hits,
                extra_messages,
                marginal_hits_per_message: marginal,
            }
        })
        .collect()
}

/// Probability that a search which reached `hits` of the other `population - 1` peers finds
/// at least one of `replicas` copies of an item placed uniformly at random on distinct
/// peers (excluding the searcher itself).
///
/// Computed as `1 - Π_{i=0..replicas-1} (population - 1 - hits - i) / (population - 1 - i)`,
/// the hypergeometric "at least one" probability. Returns 1.0 whenever the un-reached
/// remainder is smaller than the number of replicas, and 0.0 for zero replicas or an empty
/// population.
pub fn success_probability(hits: usize, replicas: usize, population: usize) -> f64 {
    if population <= 1 || replicas == 0 {
        return 0.0;
    }
    let others = population - 1;
    let hits = hits.min(others);
    if replicas > others - hits {
        return 1.0;
    }
    let mut miss = 1.0f64;
    for i in 0..replicas {
        miss *= (others - hits - i) as f64 / (others - i) as f64;
    }
    1.0 - miss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::Flooding;
    use crate::normalized::NormalizedFlooding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn coverage_curve_starts_at_zero_and_is_monotone_for_flooding() {
        let g = ring_graph(40, 1).unwrap();
        let curve = coverage_curve(&Flooding::new(), &g, NodeId::new(0), 8, &mut rng(1));
        assert_eq!(curve.len(), 9);
        assert_eq!(curve[0].outcome, SearchOutcome::default());
        for pair in curve.windows(2) {
            assert!(pair[1].outcome.hits >= pair[0].outcome.hits);
            assert!(pair[1].outcome.messages >= pair[0].outcome.messages);
        }
    }

    #[test]
    fn flooding_coverage_on_a_cycle_grows_by_two_per_ttl() {
        let g = ring_graph(50, 1).unwrap();
        let curve = coverage_curve(&Flooding::new(), &g, NodeId::new(0), 5, &mut rng(2));
        for point in &curve {
            assert_eq!(point.outcome.hits, (2 * point.ttl) as usize);
        }
    }

    #[test]
    fn granularity_of_a_cycle_flood_is_flat() {
        let g = ring_graph(50, 1).unwrap();
        let curve = coverage_curve(&Flooding::new(), &g, NodeId::new(0), 6, &mut rng(3));
        let grain = granularity(&curve);
        assert_eq!(grain.len(), 6);
        for point in &grain {
            assert!((point.extra_hits - 2.0).abs() < 1e-12);
            assert!((point.marginal_hits_per_message - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn granularity_degrades_for_flooding_in_a_dense_graph() {
        // In a clique, the first round reaches everyone; subsequent rounds only add
        // duplicate messages, so the marginal efficiency collapses to zero.
        let g = complete_graph(20).unwrap();
        let curve = coverage_curve(&Flooding::new(), &g, NodeId::new(0), 3, &mut rng(4));
        let grain = granularity(&curve);
        assert!(grain[0].marginal_hits_per_message > 0.9);
        assert!(grain[1].marginal_hits_per_message < 0.1);
    }

    #[test]
    fn nf_keeps_granularity_higher_than_fl_in_a_dense_graph() {
        let g = complete_graph(60).unwrap();
        let fl_curve = coverage_curve(&Flooding::new(), &g, NodeId::new(0), 2, &mut rng(5));
        let nf_curve = coverage_curve(
            &NormalizedFlooding::new(2),
            &g,
            NodeId::new(0),
            2,
            &mut rng(5),
        );
        let fl_last = granularity(&fl_curve)
            .last()
            .unwrap()
            .marginal_hits_per_message;
        let nf_last = granularity(&nf_curve)
            .last()
            .unwrap()
            .marginal_hits_per_message;
        assert!(
            nf_last >= fl_last,
            "NF marginal efficiency {nf_last} should not be below FL's {fl_last}"
        );
    }

    #[test]
    fn granularity_of_short_curves_is_empty() {
        assert!(granularity(&[]).is_empty());
        let one = vec![CoveragePoint {
            ttl: 0,
            outcome: SearchOutcome::default(),
        }];
        assert!(granularity(&one).is_empty());
    }

    #[test]
    fn success_probability_edge_cases() {
        assert_eq!(success_probability(10, 0, 100), 0.0);
        assert_eq!(success_probability(10, 1, 1), 0.0);
        assert_eq!(success_probability(10, 1, 0), 0.0);
        // Covering everyone guarantees success.
        assert_eq!(success_probability(99, 1, 100), 1.0);
        // Reaching no one cannot succeed.
        assert_eq!(success_probability(0, 3, 100), 1.0 - 1.0);
    }

    #[test]
    fn success_probability_single_replica_is_hits_over_population() {
        let p = success_probability(25, 1, 101);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn success_probability_increases_with_replicas_and_hits() {
        let base = success_probability(20, 1, 1_000);
        let more_replicas = success_probability(20, 5, 1_000);
        let more_hits = success_probability(200, 1, 1_000);
        assert!(more_replicas > base);
        assert!(more_hits > base);
        assert!(more_replicas <= 1.0 && more_hits <= 1.0);
    }

    #[test]
    fn success_probability_saturates_when_replicas_exceed_unreached_peers() {
        assert_eq!(success_probability(90, 20, 101), 1.0);
    }
}
