//! Flooding search (FL) — paper §V-A.1.
//!
//! The source sends the query to all of its neighbors; every peer that receives the query
//! for the first time forwards it to all of its neighbors except the one it arrived from,
//! until the time-to-live `τ` is exhausted. Peers drop duplicate copies (Gnutella-style),
//! but the duplicate transmissions still count as messages — this is exactly the "large
//! number of messages" downside the paper attributes to FL.

use crate::{SearchAlgorithm, SearchInfo, SearchOutcome, SearchScratch};
use rand::RngCore;
use sfo_graph::{GraphView, NodeId};

/// Flooding (broadcast) search.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::ring_graph;
/// use sfo_graph::NodeId;
/// use sfo_search::{flooding::Flooding, SearchAlgorithm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ring = ring_graph(20, 1)?; // a simple cycle
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = Flooding::new().search(&ring, NodeId::new(0), 3, &mut rng);
/// assert_eq!(outcome.hits, 6); // three peers reached in each direction
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flooding {
    _private: (),
}

impl Flooding {
    /// Creates a flooding search.
    pub fn new() -> Self {
        Flooding { _private: () }
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for Flooding {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "flood source {source} out of bounds"
        );
        // Fresh-allocation path: the frontier starts at the first round's size
        // instead of reallocating up the whole growth curve from empty.
        let mut scratch = SearchScratch::for_search(graph, source);
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        _rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "flood source {source} out of bounds"
        );
        let visited = &mut scratch.visited;
        visited.reset(graph.node_count());
        visited.insert(source.index());
        let mut messages = 0usize;
        let mut hits = 0usize;
        // Queue of peers that still have to forward the query: (peer, previous hop, depth).
        let queue = &mut scratch.queue;
        queue.clear();
        queue.push_back((source, None, 0));

        while let Some((node, from, depth)) = queue.pop_front() {
            if depth >= ttl {
                continue;
            }
            for &next in graph.neighbors(node) {
                if Some(next) == from {
                    continue;
                }
                messages += 1;
                if visited.insert(next.index()) {
                    hits += 1;
                    queue.push_back((next, Some(node), depth + 1));
                }
            }
        }
        SearchOutcome { hits, messages }
    }
}

impl SearchInfo for Flooding {
    fn name(&self) -> &'static str {
        "FL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph};
    use sfo_graph::metrics::reachable_within;
    use sfo_graph::Graph;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn path_graph(len: usize) -> Graph {
        let mut g = Graph::with_nodes(len);
        for i in 1..len {
            g.add_edge(NodeId::new(i - 1), NodeId::new(i)).unwrap();
        }
        g
    }

    #[test]
    fn zero_ttl_reaches_nothing() {
        let g = complete_graph(5).unwrap();
        let o = Flooding::new().search(&g, NodeId::new(0), 0, &mut rng());
        assert_eq!(o, SearchOutcome::new(0, 0));
    }

    #[test]
    fn flooding_hits_match_bfs_reachability() {
        // FL with TTL tau reaches exactly the nodes within tau hops.
        let g = ring_graph(30, 2).unwrap();
        for ttl in 0..6 {
            let o = Flooding::new().search(&g, NodeId::new(3), ttl, &mut rng());
            assert_eq!(
                o.hits,
                reachable_within(&g, NodeId::new(3), ttl),
                "ttl={ttl}"
            );
        }
    }

    #[test]
    fn flooding_on_a_path_counts_messages_without_backtracking() {
        // On a path the query travels outward one link per round and never echoes back.
        let g = path_graph(6);
        let o = Flooding::new().search(&g, NodeId::new(0), 3, &mut rng());
        assert_eq!(o.hits, 3);
        assert_eq!(o.messages, 3);
    }

    #[test]
    fn flooding_in_a_clique_counts_duplicate_messages() {
        // In K4 from the source: 3 messages in round one; each of the 3 peers forwards to 2
        // others (excluding the sender) in round two = 6 more messages, all duplicates.
        let g = complete_graph(4).unwrap();
        let o = Flooding::new().search(&g, NodeId::new(0), 2, &mut rng());
        assert_eq!(o.hits, 3);
        assert_eq!(o.messages, 9);
    }

    #[test]
    fn large_ttl_covers_the_connected_component() {
        let g = ring_graph(50, 1).unwrap();
        let o = Flooding::new().search(&g, NodeId::new(0), 100, &mut rng());
        assert_eq!(o.hits, 49);
    }

    #[test]
    fn disconnected_nodes_are_never_hit() {
        let mut g = path_graph(4);
        g.add_nodes(3);
        let o = Flooding::new().search(&g, NodeId::new(0), 10, &mut rng());
        assert_eq!(o.hits, 3);
    }

    #[test]
    fn isolated_source_yields_empty_outcome() {
        let g = Graph::with_nodes(3);
        let o = Flooding::new().search(&g, NodeId::new(1), 5, &mut rng());
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn name_is_fl() {
        assert_eq!(Flooding::new().name(), "FL");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        let g = complete_graph(3).unwrap();
        let _ = Flooding::new().search(&g, NodeId::new(9), 2, &mut rng());
    }
}
