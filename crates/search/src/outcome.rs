//! Search outcomes and the common algorithm interface.

use crate::scratch::SearchScratch;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sfo_graph::{Graph, GraphView, NodeId};

/// What one search attempt achieved.
///
/// The paper's primary efficiency metric is the *number of hits*: how many distinct peers
/// a query reaches within its time-to-live (Figs. 6-12). Its cost metric is the *number of
/// messages* the query generates (§V-B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Number of distinct peers reached, excluding the source itself.
    pub hits: usize,
    /// Number of query messages transmitted over overlay links (including duplicates
    /// delivered to already-visited peers).
    pub messages: usize,
}

impl SearchOutcome {
    /// Creates an outcome from hit and message counts.
    pub fn new(hits: usize, messages: usize) -> Self {
        SearchOutcome { hits, messages }
    }

    /// Hits per message: the granularity measure the paper uses to motivate NF and RW over
    /// plain flooding. Returns 0.0 when no messages were sent.
    pub fn hits_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.hits as f64 / self.messages as f64
        }
    }
}

/// A decentralized search algorithm running on an overlay graph.
///
/// Implementations use only local information (the neighbors of the node currently holding
/// the query); the graph parameter stands in for the distributed state of all peers.
///
/// The trait is generic over the graph backend: every algorithm in this crate is
/// implemented for all [`GraphView`] types, so the same search runs on a mutable
/// [`Graph`] or on a frozen [`CsrGraph`](sfo_graph::CsrGraph) snapshot — and, because
/// both backends report neighbors in the same order, a fixed seed produces identical
/// outcomes on either one. The parameter defaults to [`Graph`], so existing
/// `Box<dyn SearchAlgorithm>` values keep working; experiment sweeps over frozen
/// snapshots hold `Box<dyn SearchAlgorithm<CsrGraph>>` instead.
pub trait SearchAlgorithm<G: GraphView + ?Sized = Graph>: SearchInfo {
    /// Runs one search from `source` with time-to-live `ttl` and reports its outcome.
    ///
    /// The interpretation of `ttl` is algorithm-specific: forwarding rounds for flooding
    /// variants, total hops for a random walk.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `source` is not a node of `graph`.
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome;

    /// Runs one search like [`SearchAlgorithm::search`], but using `scratch` for its
    /// visited set and frontier buffers instead of allocating them fresh.
    ///
    /// The arena is pure memory reuse: for any `scratch` state — fresh, or dirty from
    /// previous searches of any algorithm on any graph — the outcome and the RNG
    /// draws are byte-identical to [`SearchAlgorithm::search`]. Callers running many
    /// searches (the `sfo-engine` worker pool keeps one arena per worker) avoid the
    /// O(node_count) allocation-and-zeroing cost per query.
    ///
    /// The default implementation ignores `scratch` and allocates fresh, so external
    /// implementations of the trait stay correct without opting in; every algorithm
    /// in this crate overrides it.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `source` is not a node of `graph`.
    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        let _ = scratch;
        self.search(graph, source, ttl, rng)
    }
}

/// Backend-independent description of a search algorithm.
///
/// Split from [`SearchAlgorithm`] so the name is available without naming a graph
/// backend (the algorithm type alone determines it).
pub trait SearchInfo {
    /// Short name used in experiment output ("FL", "NF", "RW").
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_per_message_handles_zero_messages() {
        assert_eq!(SearchOutcome::default().hits_per_message(), 0.0);
        let o = SearchOutcome::new(30, 60);
        assert!((o.hits_per_message() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trait_is_object_safe() {
        fn assert_object_safe(_: Option<&dyn SearchAlgorithm>) {}
        assert_object_safe(None);
    }
}
