//! Random Walk search (RW) — paper §V-A.3.
//!
//! A single query message hops from peer to peer: each holder forwards it to one uniformly
//! random neighbor, excluding the neighbor it came from (unless that is the only option).
//! The walk runs for `τ` hops, so the message count equals `τ` exactly — the other extreme
//! of the delivery-time/traffic trade-off compared to flooding. [`MultipleRandomWalk`]
//! launches several walkers that share a hop budget, which the paper mentions as the way to
//! make RW behave more like NF.

use crate::{SearchAlgorithm, SearchInfo, SearchOutcome, SearchScratch};
use rand::Rng;
use rand::RngCore;
use sfo_graph::{GraphView, NodeId};

/// Single random-walk search.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::ring_graph;
/// use sfo_graph::NodeId;
/// use sfo_search::{random_walk::RandomWalk, SearchAlgorithm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ring = ring_graph(30, 1)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let outcome = RandomWalk::new().search(&ring, NodeId::new(0), 10, &mut rng);
/// assert_eq!(outcome.messages, 10);
/// assert!(outcome.hits <= 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomWalk {
    _private: (),
}

impl RandomWalk {
    /// Creates a single-walker random-walk search.
    pub fn new() -> Self {
        RandomWalk { _private: () }
    }
}

/// Picks the next hop: a uniformly random neighbor excluding the previous hop, falling back
/// to the previous hop when it is the only neighbor. Returns `None` at a dead end.
fn next_hop<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    node: NodeId,
    previous: Option<NodeId>,
    rng: &mut R,
) -> Option<NodeId> {
    let neighbors = graph.neighbors(node);
    match neighbors.len() {
        0 => None,
        1 => Some(neighbors[0]),
        _ => loop {
            let candidate = neighbors[rng.gen_range(0..neighbors.len())];
            if Some(candidate) != previous {
                break Some(candidate);
            }
        },
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for RandomWalk {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        let mut scratch = SearchScratch::new();
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "rw source {source} out of bounds"
        );
        let visited = &mut scratch.visited;
        visited.reset(graph.node_count());
        visited.insert(source.index());
        let mut hits = 0usize;
        let mut messages = 0usize;
        let mut current = source;
        let mut previous: Option<NodeId> = None;
        for _ in 0..ttl {
            let Some(next) = next_hop(graph, current, previous, rng) else {
                break;
            };
            messages += 1;
            if visited.insert(next.index()) {
                hits += 1;
            }
            previous = Some(current);
            current = next;
        }
        SearchOutcome { hits, messages }
    }
}

impl SearchInfo for RandomWalk {
    fn name(&self) -> &'static str {
        "RW"
    }
}

/// Multiple parallel random walkers sharing one hop budget.
///
/// The `ttl` passed to [`SearchAlgorithm::search`] is the *total* hop budget, split as
/// evenly as possible across the walkers, so outcomes are cost-comparable with a single
/// walk of the same `ttl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultipleRandomWalk {
    walkers: usize,
}

impl MultipleRandomWalk {
    /// Creates a multiple-random-walk search with `walkers` parallel walkers.
    ///
    /// # Panics
    ///
    /// Panics if `walkers` is zero.
    pub fn new(walkers: usize) -> Self {
        assert!(walkers > 0, "at least one walker is required");
        MultipleRandomWalk { walkers }
    }

    /// Returns the number of walkers.
    pub fn walkers(&self) -> usize {
        self.walkers
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for MultipleRandomWalk {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        let mut scratch = SearchScratch::new();
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "rw source {source} out of bounds"
        );
        let visited = &mut scratch.visited;
        visited.reset(graph.node_count());
        visited.insert(source.index());
        let mut hits = 0usize;
        let mut messages = 0usize;
        let budget = ttl as usize;
        let base = budget / self.walkers;
        let remainder = budget % self.walkers;
        for w in 0..self.walkers {
            let steps = base + usize::from(w < remainder);
            let mut current = source;
            let mut previous: Option<NodeId> = None;
            for _ in 0..steps {
                let Some(next) = next_hop(graph, current, previous, rng) else {
                    break;
                };
                messages += 1;
                if visited.insert(next.index()) {
                    hits += 1;
                }
                previous = Some(current);
                current = next;
            }
        }
        SearchOutcome { hits, messages }
    }
}

impl SearchInfo for MultipleRandomWalk {
    fn name(&self) -> &'static str {
        "multi-RW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph};
    use sfo_graph::Graph;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn path_graph(len: usize) -> Graph {
        let mut g = Graph::with_nodes(len);
        for i in 1..len {
            g.add_edge(NodeId::new(i - 1), NodeId::new(i)).unwrap();
        }
        g
    }

    #[test]
    fn message_count_equals_ttl_when_not_stuck() {
        let g = complete_graph(20).unwrap();
        let o = RandomWalk::new().search(&g, NodeId::new(0), 15, &mut rng(1));
        assert_eq!(o.messages, 15);
        assert!(o.hits <= 15);
        assert!(o.hits >= 1);
    }

    #[test]
    fn walk_on_a_path_does_not_backtrack() {
        // On a path, excluding the previous hop forces the walk straight to the end.
        let g = path_graph(6);
        let o = RandomWalk::new().search(&g, NodeId::new(0), 5, &mut rng(2));
        assert_eq!(o.hits, 5);
        assert_eq!(o.messages, 5);
    }

    #[test]
    fn walk_turns_around_at_a_dead_end() {
        let g = path_graph(3);
        let o = RandomWalk::new().search(&g, NodeId::new(0), 4, &mut rng(3));
        // 0 -> 1 -> 2 -> back to 1 -> back to... wait, from 1 the previous is 2 so it goes to 0.
        assert_eq!(o.messages, 4);
        assert_eq!(o.hits, 2);
    }

    #[test]
    fn isolated_source_stops_immediately() {
        let g = Graph::with_nodes(2);
        let o = RandomWalk::new().search(&g, NodeId::new(0), 9, &mut rng(4));
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn zero_ttl_reaches_nothing() {
        let g = complete_graph(5).unwrap();
        assert_eq!(
            RandomWalk::new().search(&g, NodeId::new(1), 0, &mut rng(5)),
            SearchOutcome::default()
        );
    }

    #[test]
    fn hits_never_exceed_component_size() {
        let g = ring_graph(10, 1).unwrap();
        let o = RandomWalk::new().search(&g, NodeId::new(0), 500, &mut rng(6));
        assert!(o.hits <= 9);
        assert_eq!(o.messages, 500);
    }

    #[test]
    fn multiple_walkers_share_the_budget() {
        let g = complete_graph(50).unwrap();
        let o = MultipleRandomWalk::new(4).search(&g, NodeId::new(0), 21, &mut rng(7));
        assert_eq!(
            o.messages, 21,
            "budget split 6+5+5+5 should be fully spent in a clique"
        );
    }

    #[test]
    fn multiple_walkers_on_a_cycle_cover_between_one_and_two_walker_ranges() {
        // On a cycle a walker never backtracks, so each of the 4 walkers covers exactly 10
        // consecutive peers in one of the two directions. The union therefore spans at
        // least 10 (all walkers pick the same direction) and at most 20 distinct peers.
        let g = ring_graph(100, 1).unwrap();
        for seed in 0..20u64 {
            let o = MultipleRandomWalk::new(4).search(&g, NodeId::new(0), 40, &mut rng(seed));
            assert_eq!(o.messages, 40);
            assert!(
                (10..=20).contains(&o.hits),
                "hits {} outside [10, 20]",
                o.hits
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn zero_walkers_is_rejected() {
        let _ = MultipleRandomWalk::new(0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RandomWalk::new().name(), "RW");
        assert_eq!(MultipleRandomWalk::new(2).name(), "multi-RW");
        assert_eq!(MultipleRandomWalk::new(2).walkers(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        let g = complete_graph(3).unwrap();
        let _ = RandomWalk::new().search(&g, NodeId::new(9), 2, &mut rng(8));
    }
}
