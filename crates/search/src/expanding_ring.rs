//! Expanding-ring search — successive floods with growing time-to-live (Lv et al.,
//! paper ref. \[23\]).
//!
//! Fixing the flood TTL in advance is wasteful in both directions: too small and popular
//! items are missed, too large and the query sweeps the whole overlay for an item that was
//! two hops away. The expanding-ring strategy starts with a small flood and, if the item is
//! not found, retries with a larger TTL, paying the cost of the earlier rings again. It is
//! the standard practical compromise in Gnutella-like networks and the natural companion
//! baseline to the paper's fixed-TTL FL curves.
//!
//! Because the workspace's [`SearchAlgorithm`] interface measures *coverage* (it has no
//! notion of a target item), the `ttl` argument is interpreted as the radius of the final
//! ring: the reported messages accumulate over every ring of the schedule up to and
//! including `ttl`, while the hits are those of the final (largest) ring. This is exactly
//! the worst-case cost of an expanding-ring lookup that succeeds only at radius `ttl`, and
//! it is the right number to compare against a single flood at the same radius. For
//! item-level success measurements (where earlier rings can terminate the search) use
//! `sfo-sim`, which models item placement and replication explicitly.

use crate::flooding::Flooding;
use crate::{SearchAlgorithm, SearchInfo, SearchOutcome, SearchScratch};
use rand::RngCore;
use sfo_graph::{GraphView, NodeId};

/// Expanding-ring search: floods of growing radius, re-paying earlier rings.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::ring_graph;
/// use sfo_graph::NodeId;
/// use sfo_search::{expanding_ring::ExpandingRing, SearchAlgorithm};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = ring_graph(50, 1)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Rings of radius 1, 3, 5: coverage equals a radius-5 flood, cost includes all rings.
/// let search = ExpandingRing::new(1, 2);
/// let outcome = search.search(&graph, NodeId::new(0), 5, &mut rng);
/// assert_eq!(outcome.hits, 10);
/// assert!(outcome.messages > 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandingRing {
    initial_ttl: u32,
    increment: u32,
}

impl ExpandingRing {
    /// Creates an expanding-ring search whose rings have radius `initial_ttl`,
    /// `initial_ttl + increment`, `initial_ttl + 2·increment`, … .
    ///
    /// # Panics
    ///
    /// Panics if `initial_ttl` or `increment` is zero.
    pub fn new(initial_ttl: u32, increment: u32) -> Self {
        assert!(initial_ttl > 0, "initial ring radius must be positive");
        assert!(increment > 0, "ring increment must be positive");
        ExpandingRing {
            initial_ttl,
            increment,
        }
    }

    /// Returns the radius of the first ring.
    pub fn initial_ttl(&self) -> u32 {
        self.initial_ttl
    }

    /// Returns the radius increment between rings.
    pub fn increment(&self) -> u32 {
        self.increment
    }

    /// Returns the ring schedule up to and including `final_ttl` (always ends with
    /// `final_ttl`, even when it is not on the arithmetic schedule).
    pub fn schedule(&self, final_ttl: u32) -> Vec<u32> {
        if final_ttl == 0 {
            return Vec::new();
        }
        let mut rings = Vec::new();
        let mut radius = self.initial_ttl;
        while radius < final_ttl {
            rings.push(radius);
            radius = radius.saturating_add(self.increment);
        }
        rings.push(final_ttl);
        rings
    }
}

impl<G: GraphView + ?Sized> SearchAlgorithm<G> for ExpandingRing {
    fn search(&self, graph: &G, source: NodeId, ttl: u32, rng: &mut dyn RngCore) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "expanding-ring source {source} out of bounds"
        );
        let mut scratch = SearchScratch::for_search(graph, source);
        self.search_with_scratch(graph, source, ttl, rng, &mut scratch)
    }

    fn search_with_scratch(
        &self,
        graph: &G,
        source: NodeId,
        ttl: u32,
        rng: &mut dyn RngCore,
        scratch: &mut SearchScratch,
    ) -> SearchOutcome {
        assert!(
            graph.contains_node(source),
            "expanding-ring source {source} out of bounds"
        );
        let flood = Flooding::new();
        let mut total_messages = 0usize;
        let mut final_hits = 0usize;
        // One arena serves every ring: each flood resets the visited epoch on entry.
        for radius in self.schedule(ttl) {
            let outcome = flood.search_with_scratch(graph, source, radius, rng, scratch);
            total_messages += outcome.messages;
            final_hits = outcome.hits;
        }
        SearchOutcome {
            hits: final_hits,
            messages: total_messages,
        }
    }
}

impl SearchInfo for ExpandingRing {
    fn name(&self) -> &'static str {
        "ring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::generators::{complete_graph, ring_graph};
    use sfo_graph::Graph;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    #[should_panic(expected = "initial ring radius")]
    fn zero_initial_ttl_is_rejected() {
        let _ = ExpandingRing::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "ring increment")]
    fn zero_increment_is_rejected() {
        let _ = ExpandingRing::new(1, 0);
    }

    #[test]
    fn accessors_and_name() {
        let er = ExpandingRing::new(2, 3);
        assert_eq!(er.initial_ttl(), 2);
        assert_eq!(er.increment(), 3);
        assert_eq!(er.name(), "ring");
    }

    #[test]
    fn schedule_always_ends_at_the_final_ttl() {
        let er = ExpandingRing::new(1, 2);
        assert_eq!(er.schedule(5), vec![1, 3, 5]);
        assert_eq!(er.schedule(6), vec![1, 3, 5, 6]);
        assert_eq!(er.schedule(1), vec![1]);
        assert!(er.schedule(0).is_empty());
    }

    #[test]
    fn coverage_matches_a_single_flood_of_the_final_radius() {
        let g = ring_graph(60, 1).unwrap();
        let er = ExpandingRing::new(1, 2).search(&g, NodeId::new(0), 7, &mut rng());
        let fl = Flooding::new().search(&g, NodeId::new(0), 7, &mut rng());
        assert_eq!(er.hits, fl.hits);
    }

    #[test]
    fn cost_exceeds_a_single_flood_when_several_rings_run() {
        let g = complete_graph(30).unwrap();
        let er = ExpandingRing::new(1, 1).search(&g, NodeId::new(0), 3, &mut rng());
        let fl = Flooding::new().search(&g, NodeId::new(0), 3, &mut rng());
        assert_eq!(er.hits, fl.hits);
        assert!(
            er.messages > fl.messages,
            "{} should exceed {}",
            er.messages,
            fl.messages
        );
    }

    #[test]
    fn single_ring_schedule_costs_the_same_as_flooding() {
        let g = ring_graph(40, 2).unwrap();
        // initial_ttl = final ttl: exactly one ring.
        let er = ExpandingRing::new(4, 5).search(&g, NodeId::new(0), 4, &mut rng());
        let fl = Flooding::new().search(&g, NodeId::new(0), 4, &mut rng());
        assert_eq!(er, fl);
    }

    #[test]
    fn zero_ttl_reaches_nothing() {
        let g = complete_graph(5).unwrap();
        let o = ExpandingRing::new(1, 1).search(&g, NodeId::new(0), 0, &mut rng());
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    fn isolated_source_yields_empty_outcome() {
        let g = Graph::with_nodes(4);
        let o = ExpandingRing::new(1, 2).search(&g, NodeId::new(2), 6, &mut rng());
        assert_eq!(o, SearchOutcome::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_source_panics() {
        let g = complete_graph(3).unwrap();
        let _ = ExpandingRing::new(1, 1).search(&g, NodeId::new(9), 2, &mut rng());
    }
}
