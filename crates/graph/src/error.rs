//! Error types for graph construction and mutation.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced while building or mutating a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node that does not exist in the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes currently in the graph.
        node_count: usize,
    },
    /// An edge would connect a node to itself, which simple graphs do not allow.
    SelfLoop {
        /// The node that would be connected to itself.
        node: NodeId,
    },
    /// The edge already exists in the graph.
    DuplicateEdge {
        /// One endpoint of the duplicate edge.
        a: NodeId,
        /// The other endpoint of the duplicate edge.
        b: NodeId,
    },
    /// The edge does not exist in the graph.
    MissingEdge {
        /// One endpoint of the missing edge.
        a: NodeId,
        /// The other endpoint of the missing edge.
        b: NodeId,
    },
    /// A generator or algorithm received a parameter outside its valid range.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} is out of bounds for a graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node} is not allowed in a simple graph"
                )
            }
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "edge between {a} and {b} already exists")
            }
            GraphError::MissingEdge { a, b } => {
                write!(f, "edge between {a} and {b} does not exist")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (
                GraphError::NodeOutOfBounds {
                    node: NodeId::new(9),
                    node_count: 3,
                },
                "node n9 is out of bounds for a graph with 3 nodes",
            ),
            (
                GraphError::SelfLoop {
                    node: NodeId::new(1),
                },
                "self-loop on node n1 is not allowed in a simple graph",
            ),
            (
                GraphError::DuplicateEdge {
                    a: NodeId::new(0),
                    b: NodeId::new(1),
                },
                "edge between n0 and n1 already exists",
            ),
            (
                GraphError::MissingEdge {
                    a: NodeId::new(2),
                    b: NodeId::new(3),
                },
                "edge between n2 and n3 does not exist",
            ),
            (
                GraphError::InvalidParameter {
                    reason: "radius must be positive",
                },
                "invalid parameter: radius must be positive",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<GraphError>();
    }
}
