//! Read-only memory mapping for zero-copy snapshot loads.
//!
//! The `SFOS` codec stores the CSR arrays as contiguous little-endian `u32` sections, so
//! on a 64-bit little-endian unix host a snapshot can be *borrowed* from the page cache
//! instead of copied into the heap: map the file once, checksum-verify it once, and hand
//! [`CsrGraph`](crate::CsrGraph) slices that point straight into the mapping. This module
//! is the whole machinery behind that:
//!
//! * [`MappedFile`] — a minimal `extern "C"` shim over `mmap(2)`/`munmap(2)` (no new
//!   dependencies; the two symbols come from the platform libc every Rust binary already
//!   links). The mapping is `PROT_READ`/`MAP_PRIVATE`, so the kernel shares pages with
//!   the page cache and writes are impossible by construction.
//! * [`MappedCsr`] — a `(file, byte-range, byte-range)` triple proven 4-byte-aligned and
//!   in-bounds at construction, exposing the `offsets`/`targets` sections as `&[u32]` /
//!   `&[NodeId]`. `NodeId` is `#[repr(transparent)]` over `u32`, which is what makes the
//!   reinterpretation sound.
//!
//! The module is compiled only on `unix` + 64-bit + little-endian targets (the `i64`
//! file-offset in the `mmap` signature and the in-place `u32` reads are only correct
//! there); every other target — and any file whose sections fail the alignment check —
//! takes the documented read-based fallback in [`crate::snapshot`], which produces an
//! owned, byte-identical graph. This is the one module in the workspace permitted to use
//! `unsafe`; the rest of the crate denies it (see `lib.rs`).
//!
//! Safety caveat shared by every mmap consumer: the mapping is only as immutable as the
//! file. Snapshots in this workspace are written once by `sfo snapshot build` (or
//! `save`) and never appended to, and the checksum is verified against the mapping right
//! after it is established; truncating a snapshot while a process serves it would fault
//! that process, exactly as it would any mmap-based store.

#![allow(unsafe_code)]

use crate::NodeId;
use std::ffi::c_void;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// `PROT_READ` on every unix this workspace targets.
const PROT_READ: i32 = 1;
/// `MAP_PRIVATE` on every unix this workspace targets.
const MAP_PRIVATE: i32 = 2;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

/// A whole file mapped read-only into the address space.
///
/// Dropping the value unmaps it; clones are shared through [`Arc`] by the callers that
/// need the mapping to outlive a borrow (see [`MappedCsr`]).
#[derive(Debug)]
pub(crate) struct MappedFile {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never handed out mutably — concurrent reads from
// any thread are exactly reads of immutable memory.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error when the file cannot be opened or mapped. Empty
    /// files are reported as an error (`mmap` rejects zero-length mappings); callers
    /// fall back to the read-based loader, which produces the same typed snapshot error
    /// a zero-length file always produced.
    pub(crate) fn map(path: &Path) -> std::io::Result<MappedFile> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| std::io::Error::other("file too large to map"))?;
        if len == 0 {
            return Err(std::io::Error::other("cannot map an empty file"));
        }
        // SAFETY: a fresh anonymous-address read-only mapping of a file descriptor we
        // own for the duration of the call; the kernel validates every argument and
        // returns MAP_FAILED (-1) on any problem.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MappedFile { ptr, len })
    }

    /// Borrows the mapped bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes, valid until
        // `self` drops, and nothing can write through it.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are exactly what mmap returned; unmapping once on drop is
        // the contract. Failure is unrecoverable and ignored (the process address space
        // is in an undefined state only if the arguments were wrong, which they cannot
        // be here).
        unsafe {
            let _ = munmap(self.ptr, self.len);
        }
    }
}

/// The CSR sections of a mapped snapshot, proven aligned and in-bounds.
///
/// Holds the mapping alive through an [`Arc`]; the accessors reinterpret the two byte
/// ranges as the typed arrays [`CsrGraph`](crate::CsrGraph) traverses. Cloning is two
/// range copies and an `Arc` bump — a mapped graph clones in O(1).
#[derive(Debug, Clone)]
pub(crate) struct MappedCsr {
    file: Arc<MappedFile>,
    offsets: Range<usize>,
    targets: Range<usize>,
}

impl MappedCsr {
    /// Wraps the `offsets`/`targets` byte ranges of `file`, or returns `None` when a
    /// range is out of bounds, not a multiple of 4 long, or not 4-byte aligned in the
    /// mapping (a provenance label of non-multiple-of-4 length shifts the arrays; such
    /// files take the owned fallback).
    ///
    /// The mapping base is page-aligned, so checking the in-file byte offset checks the
    /// pointer alignment too; the debug assertion below keeps that assumption honest.
    pub(crate) fn new(
        file: Arc<MappedFile>,
        offsets: Range<usize>,
        targets: Range<usize>,
    ) -> Option<Self> {
        let bytes = file.bytes();
        for range in [&offsets, &targets] {
            if range.start > range.end || range.end > bytes.len() {
                return None;
            }
            if range.len() % 4 != 0 || range.start % 4 != 0 {
                return None;
            }
            debug_assert_eq!(bytes[range.start..].as_ptr() as usize % 4, 0);
        }
        Some(MappedCsr {
            file,
            offsets,
            targets,
        })
    }

    /// The `offsets` section as the typed array, borrowed from the mapping.
    #[inline]
    pub(crate) fn offsets(&self) -> &[u32] {
        let bytes = &self.file.bytes()[self.offsets.clone()];
        // SAFETY: the range was proven 4-aligned and a multiple of 4 long at
        // construction; on this (little-endian) target `u32` has no invalid bit
        // patterns, so reinterpreting read-only bytes is sound and value-correct.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
    }

    /// The `targets` section as the typed array, borrowed from the mapping.
    #[inline]
    pub(crate) fn targets(&self) -> &[NodeId] {
        let bytes = &self.file.bytes()[self.targets.clone()];
        // SAFETY: as in `offsets`, plus `NodeId` is `#[repr(transparent)]` over `u32`,
        // so the two types share layout and validity exactly.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const NodeId, bytes.len() / 4) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sfo-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapping_reads_the_file_back_verbatim() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("verbatim.bin", &payload);
        let mapped = MappedFile::map(&path).unwrap();
        assert_eq!(mapped.bytes(), payload.as_slice());
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_missing_files_error_instead_of_mapping() {
        let path = temp_file("empty.bin", b"");
        assert!(MappedFile::map(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        assert!(MappedFile::map(Path::new("/definitely/not/a/file")).is_err());
    }

    #[test]
    fn mapped_csr_reinterprets_aligned_sections() {
        let mut bytes = Vec::new();
        for v in [0u32, 2, 5, 9] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for v in [7u32, 3, 1, 0, 4, 4, 2, 2, 6] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_file("csr.bin", &bytes);
        let file = Arc::new(MappedFile::map(&path).unwrap());
        let csr = MappedCsr::new(Arc::clone(&file), 0..16, 16..52).unwrap();
        assert_eq!(csr.offsets(), &[0, 2, 5, 9]);
        let targets: Vec<u32> = csr.targets().iter().map(|n| n.as_u32()).collect();
        assert_eq!(targets, vec![7, 3, 1, 0, 4, 4, 2, 2, 6]);
        // Clones share the mapping.
        let clone = csr.clone();
        assert_eq!(clone.offsets(), csr.offsets());
        drop((csr, clone, file));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_or_out_of_bounds_sections_are_refused() {
        let path = temp_file("misaligned.bin", &[0u8; 64]);
        let file = Arc::new(MappedFile::map(&path).unwrap());
        // Misaligned start.
        assert!(MappedCsr::new(Arc::clone(&file), 2..10, 12..16).is_none());
        // Length not a multiple of 4.
        assert!(MappedCsr::new(Arc::clone(&file), 0..10, 12..16).is_none());
        // Out of bounds.
        assert!(MappedCsr::new(Arc::clone(&file), 0..4, 60..72).is_none());
        // Inverted range.
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(MappedCsr::new(Arc::clone(&file), 8..4, 12..16).is_none());
        }
        drop(file);
        std::fs::remove_file(&path).unwrap();
    }
}
