//! The shared read interface over graph backends.
//!
//! Every read-heavy phase in this workspace — flooding and random-walk searches,
//! structural metrics, the figure harness — only ever *reads* a topology: node and edge
//! counts, degrees, and neighbor slices. [`GraphView`] captures exactly that surface, so
//! algorithms can run unchanged on either backend:
//!
//! * [`Graph`](crate::Graph) — the mutable adjacency-list representation the generators
//!   and the churn simulator build and rewire;
//! * [`CsrGraph`](crate::CsrGraph) — the frozen compressed-sparse-row snapshot produced
//!   by [`Graph::freeze`](crate::Graph::freeze), whose flat arrays make traversals
//!   cache-linear.
//!
//! Both backends report neighbors in the same order, so randomized algorithms consume
//! identical RNG streams on either one and produce identical results for a fixed seed.
//! The trait is object safe: `&dyn GraphView` works wherever static dispatch is not
//! worth the monomorphization.

use crate::NodeId;

/// Read-only access to an undirected simple graph with dense node ids.
///
/// # Example
///
/// ```
/// use sfo_graph::{Graph, GraphView, NodeId};
///
/// fn mean_degree<G: GraphView + ?Sized>(g: &G) -> f64 {
///     g.average_degree()
/// }
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// let frozen = g.freeze();
/// assert_eq!(mean_degree(&g), mean_degree(&frozen));
/// # Ok(())
/// # }
/// ```
pub trait GraphView {
    /// Returns the number of nodes in the graph.
    fn node_count(&self) -> usize;

    /// Returns the number of undirected edges in the graph.
    fn edge_count(&self) -> usize;

    /// Returns the degree (number of neighbors) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    fn degree(&self, node: NodeId) -> usize;

    /// Returns the neighbors of `node` as a slice, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// Returns `true` if the graph has no nodes.
    #[inline]
    fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Returns `true` if `node` refers to a node present in the graph.
    #[inline]
    fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// Returns an iterator over all node ids in the graph.
    #[inline]
    fn nodes(&self) -> NodeIds {
        NodeIds {
            range: 0..self.node_count(),
        }
    }

    /// Returns the degrees of all nodes, indexed by node id.
    fn degrees(&self) -> Vec<usize> {
        self.nodes().map(|n| self.degree(n)).collect()
    }

    /// Returns the sum of all node degrees (twice the edge count).
    #[inline]
    fn total_degree(&self) -> usize {
        2 * self.edge_count()
    }

    /// Returns the minimum degree over all nodes, or `None` for an empty graph.
    fn min_degree(&self) -> Option<usize> {
        self.nodes().map(|n| self.degree(n)).min()
    }

    /// Returns the maximum degree over all nodes, or `None` for an empty graph.
    fn max_degree(&self) -> Option<usize> {
        self.nodes().map(|n| self.degree(n)).max()
    }

    /// Returns the average degree, `2E / N`, or `0.0` for an empty graph.
    fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.total_degree() as f64 / self.node_count() as f64
        }
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    ///
    /// The check scans the adjacency of the lower-degree endpoint.
    fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        if !self.contains_node(a) || !self.contains_node(b) {
            return false;
        }
        let (probe, target) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe).contains(&target)
    }

    /// Returns an iterator over all undirected edges, each reported once as `(a, b)` with
    /// `a < b`.
    fn edges(&self) -> ViewEdges<'_, Self>
    where
        Self: Sized,
    {
        ViewEdges {
            view: self,
            node: 0,
            offset: 0,
        }
    }
}

/// Iterator over the node ids of a [`GraphView`], produced by [`GraphView::nodes`].
#[derive(Debug, Clone)]
pub struct NodeIds {
    range: std::ops::Range<usize>,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId::new)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for NodeIds {}
impl DoubleEndedIterator for NodeIds {
    fn next_back(&mut self) -> Option<NodeId> {
        self.range.next_back().map(NodeId::new)
    }
}

/// Iterator over the undirected edges of a [`GraphView`], produced by [`GraphView::edges`].
///
/// Each edge is yielded exactly once as `(a, b)` with `a < b`.
#[derive(Debug, Clone)]
pub struct ViewEdges<'a, G> {
    view: &'a G,
    node: usize,
    offset: usize,
}

impl<G: GraphView> Iterator for ViewEdges<'_, G> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.node < self.view.node_count() {
            let adj = self.view.neighbors(NodeId::new(self.node));
            while self.offset < adj.len() {
                let other = adj[self.offset];
                self.offset += 1;
                if self.node < other.index() {
                    return Some((NodeId::new(self.node), other));
                }
            }
            self.node += 1;
            self.offset = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    fn stats_via_view<G: GraphView + ?Sized>(g: &G) -> (usize, usize, Vec<usize>, f64) {
        (
            g.node_count(),
            g.edge_count(),
            g.degrees(),
            g.average_degree(),
        )
    }

    #[test]
    fn trait_is_object_safe() {
        let g = sample();
        let view: &dyn GraphView = &g;
        assert_eq!(view.node_count(), 4);
        assert_eq!(view.degree(n(0)), 2);
        assert_eq!(view.neighbors(n(0)), &[n(1), n(2)]);
        assert!(view.contains_node(n(3)));
        assert!(!view.contains_node(n(4)));
        let (nodes, edges, degrees, avg) = stats_via_view(view);
        assert_eq!((nodes, edges), (4, 3));
        assert_eq!(degrees, vec![2, 1, 2, 1]);
        assert!((avg - 1.5).abs() < 1e-12);
    }

    #[test]
    fn provided_methods_match_graph_inherent_ones() {
        let g = sample();
        let view: &dyn GraphView = &g;
        assert_eq!(view.min_degree(), g.min_degree());
        assert_eq!(view.max_degree(), g.max_degree());
        assert_eq!(view.total_degree(), g.total_degree());
        assert_eq!(view.is_empty(), g.is_empty());
        let via_view: Vec<NodeId> = view.nodes().collect();
        let inherent: Vec<NodeId> = g.nodes().collect();
        assert_eq!(via_view, inherent);
    }

    #[test]
    fn view_edges_match_graph_edges() {
        let g = sample();
        let via_view: Vec<_> = GraphView::edges(&g).collect();
        let inherent: Vec<_> = g.edges().collect();
        assert_eq!(via_view, inherent);
    }

    #[test]
    fn node_ids_iterator_is_exact_and_double_ended() {
        let g = sample();
        let view: &dyn GraphView = &g;
        let mut iter = view.nodes();
        assert_eq!(iter.len(), 4);
        assert_eq!(iter.next_back(), Some(n(3)));
        assert_eq!(iter.next(), Some(n(0)));
        assert_eq!(iter.len(), 2);
    }

    #[test]
    fn empty_view_statistics() {
        let g = Graph::new();
        let view: &dyn GraphView = &g;
        assert!(view.is_empty());
        assert_eq!(view.min_degree(), None);
        assert_eq!(view.max_degree(), None);
        assert_eq!(view.average_degree(), 0.0);
        assert!(view.degrees().is_empty());
    }
}
