//! Undirected multigraph used by stub-wiring generators such as the configuration model.

use crate::{Graph, GraphError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// An undirected multigraph: self-loops and parallel edges are permitted.
///
/// The configuration model (paper, Alg. 2) wires randomly chosen stub pairs, which
/// naturally creates self-loops and duplicate links; only after all stubs are consumed are
/// those discrepancies deleted. `MultiGraph` is the intermediate representation for that
/// process, and [`MultiGraph::into_simple`] performs the deletion step, reporting how many
/// self-loops and parallel edges were discarded.
///
/// # Example
///
/// ```
/// use sfo_graph::{MultiGraph, NodeId};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut mg = MultiGraph::with_nodes(3);
/// mg.add_edge(NodeId::new(0), NodeId::new(1))?;
/// mg.add_edge(NodeId::new(0), NodeId::new(1))?; // parallel edge allowed
/// mg.add_edge(NodeId::new(2), NodeId::new(2))?; // self-loop allowed
/// let (graph, report) = mg.into_simple();
/// assert_eq!(graph.edge_count(), 1);
/// assert_eq!(report.self_loops_removed, 1);
/// assert_eq!(report.parallel_edges_removed, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiGraph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

/// Summary of what [`MultiGraph::into_simple`] discarded while simplifying a multigraph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimplifyReport {
    /// Number of self-loop edges removed.
    pub self_loops_removed: usize,
    /// Number of parallel (duplicate) edges removed beyond the first copy.
    pub parallel_edges_removed: usize,
    /// Number of edges retained in the resulting simple graph.
    pub edges_kept: usize,
}

impl MultiGraph {
    /// Creates an empty multigraph with no nodes.
    pub fn new() -> Self {
        MultiGraph {
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates a multigraph containing `nodes` isolated nodes with ids `0..nodes`.
    pub fn with_nodes(nodes: usize) -> Self {
        MultiGraph {
            adjacency: vec![Vec::new(); nodes],
            edge_count: 0,
        }
    }

    /// Returns the number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns the number of edges, counting self-loops and each parallel copy.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns the degree of `node`. A self-loop contributes 2 to the degree, matching the
    /// handshake convention of the configuration model.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Returns `true` if `node` refers to a node present in the multigraph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.adjacency.len()
    }

    /// Adds an undirected edge between `a` and `b`; self-loops and parallel edges are
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not exist.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        for node in [a, b] {
            if !self.contains_node(node) {
                return Err(GraphError::NodeOutOfBounds {
                    node,
                    node_count: self.node_count(),
                });
            }
        }
        if a == b {
            // A self-loop adds two stubs to the same adjacency list.
            self.adjacency[a.index()].push(a);
            self.adjacency[a.index()].push(a);
        } else {
            self.adjacency[a.index()].push(b);
            self.adjacency[b.index()].push(a);
        }
        self.edge_count += 1;
        Ok(())
    }

    /// Returns the number of self-loop edges currently present.
    pub fn self_loop_count(&self) -> usize {
        self.adjacency
            .iter()
            .enumerate()
            .map(|(i, adj)| adj.iter().filter(|&&n| n.index() == i).count() / 2)
            .sum()
    }

    /// Converts the multigraph into a simple [`Graph`] by deleting self-loops and keeping a
    /// single copy of each parallel edge, exactly as the configuration model prescribes.
    ///
    /// Returns the simple graph together with a [`SimplifyReport`] describing what was
    /// discarded.
    pub fn into_simple(self) -> (Graph, SimplifyReport) {
        let mut graph = Graph::with_nodes(self.node_count());
        let mut report = SimplifyReport::default();
        for (i, adj) in self.adjacency.iter().enumerate() {
            let a = NodeId::new(i);
            for &b in adj {
                if b.index() < i {
                    continue; // handled from the other endpoint
                }
                if b.index() == i {
                    continue; // self-loop stub; counted below
                }
                match graph.add_edge_if_absent(a, b) {
                    Ok(true) => report.edges_kept += 1,
                    Ok(false) => report.parallel_edges_removed += 1,
                    Err(_) => unreachable!("nodes were allocated up front"),
                }
            }
        }
        report.self_loops_removed = self.self_loop_count();
        (graph, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn parallel_edges_and_self_loops_are_accepted() {
        let mut mg = MultiGraph::with_nodes(3);
        mg.add_edge(n(0), n(1)).unwrap();
        mg.add_edge(n(1), n(0)).unwrap();
        mg.add_edge(n(2), n(2)).unwrap();
        assert_eq!(mg.edge_count(), 3);
        assert_eq!(mg.degree(n(0)), 2);
        assert_eq!(mg.degree(n(1)), 2);
        assert_eq!(
            mg.degree(n(2)),
            2,
            "a self-loop contributes two to the degree"
        );
        assert_eq!(mg.self_loop_count(), 1);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut mg = MultiGraph::with_nodes(1);
        assert_eq!(
            mg.add_edge(n(0), n(3)),
            Err(GraphError::NodeOutOfBounds {
                node: n(3),
                node_count: 1
            })
        );
    }

    #[test]
    fn into_simple_removes_loops_and_duplicates() {
        let mut mg = MultiGraph::with_nodes(4);
        mg.add_edge(n(0), n(1)).unwrap();
        mg.add_edge(n(0), n(1)).unwrap();
        mg.add_edge(n(0), n(1)).unwrap();
        mg.add_edge(n(1), n(2)).unwrap();
        mg.add_edge(n(3), n(3)).unwrap();
        let (g, report) = mg.into_simple();
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(n(0), n(1)));
        assert!(g.contains_edge(n(1), n(2)));
        assert_eq!(g.degree(n(3)), 0);
        assert_eq!(report.edges_kept, 2);
        assert_eq!(report.parallel_edges_removed, 2);
        assert_eq!(report.self_loops_removed, 1);
        g.assert_consistent();
    }

    #[test]
    fn simplifying_a_clean_multigraph_keeps_everything() {
        let mut mg = MultiGraph::with_nodes(3);
        mg.add_edge(n(0), n(1)).unwrap();
        mg.add_edge(n(1), n(2)).unwrap();
        let (g, report) = mg.into_simple();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(report.parallel_edges_removed, 0);
        assert_eq!(report.self_loops_removed, 0);
        assert_eq!(report.edges_kept, 2);
    }

    #[test]
    fn empty_multigraph_simplifies_to_empty_graph() {
        let (g, report) = MultiGraph::new().into_simple();
        assert_eq!(g.node_count(), 0);
        assert_eq!(report, SimplifyReport::default());
    }
}
