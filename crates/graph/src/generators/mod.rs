//! Substrate-network generators.
//!
//! The DAPA topology-construction mechanism (paper, §IV-B) builds the overlay on top of a
//! pre-existing *substrate network* `G_S`. The paper uses a geometric random network (GRN)
//! with a giant component as the substrate because it is "topologically closer to real life
//! nodes in the Internet than a regular or highly random network", and mentions a
//! two-dimensional regular mesh as an alternative. Both are provided here, together with
//! classic random-graph generators used for baselines and tests.

mod classic;
mod geometric;
mod mesh;
mod structured;

pub use classic::{complete_graph, erdos_renyi, ring_graph, watts_strogatz};
pub use geometric::{GeometricRandomNetwork, Point};
pub use mesh::{mesh_2d, MeshConfig};
pub use structured::{balanced_tree, path_graph, random_regular, star_graph};
