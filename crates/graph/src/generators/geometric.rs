//! Geometric random networks (GRN), the substrate the paper uses for DAPA.
//!
//! A GRN places `n` nodes uniformly at random in the unit square and links any two nodes
//! whose Euclidean distance is below a connection radius `R`. The resulting degree
//! distribution is Poissonian with mean `k̄ ≈ π R² (n - 1)` (for the torus variant); the
//! paper uses a GRN with `N_S = 2·10⁴` nodes and average degree `k̄ = 10` as the DAPA
//! substrate.

use crate::{Graph, GraphError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point in the unit square where a substrate node is placed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1)`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1)`.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other` in the plain (non-wrapping) unit square.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Euclidean distance to `other` on the unit torus (coordinates wrap around), which
    /// removes boundary effects so the target average degree is met uniformly.
    pub fn torus_distance(&self, other: &Point) -> f64 {
        let dx = (self.x - other.x).abs();
        let dy = (self.y - other.y).abs();
        let dx = dx.min(1.0 - dx);
        let dy = dy.min(1.0 - dy);
        (dx * dx + dy * dy).sqrt()
    }
}

/// Configuration and builder for a two-dimensional geometric random network.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::GeometricRandomNetwork;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let grn = GeometricRandomNetwork::with_average_degree(2_000, 10.0)?;
/// let (graph, _positions) = grn.generate(&mut rng)?;
/// let k_bar = graph.average_degree();
/// assert!((k_bar - 10.0).abs() < 1.5, "average degree {k_bar} should be close to 10");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricRandomNetwork {
    nodes: usize,
    radius: f64,
    torus: bool,
}

impl GeometricRandomNetwork {
    /// Creates a GRN configuration with an explicit connection radius.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `radius` is not strictly positive or not
    /// finite.
    pub fn new(nodes: usize, radius: f64) -> Result<Self> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(GraphError::InvalidParameter {
                reason: "grn radius must be positive and finite",
            });
        }
        Ok(GeometricRandomNetwork {
            nodes,
            radius,
            torus: true,
        })
    }

    /// Creates a GRN configuration whose connection radius is chosen so that the expected
    /// average degree equals `average_degree` (on the torus): `R = sqrt(k̄ / (π (n-1)))`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `average_degree` is not strictly positive
    /// or if `nodes < 2`.
    pub fn with_average_degree(nodes: usize, average_degree: f64) -> Result<Self> {
        if nodes < 2 {
            return Err(GraphError::InvalidParameter {
                reason: "grn needs at least two nodes",
            });
        }
        if !average_degree.is_finite() || average_degree <= 0.0 {
            return Err(GraphError::InvalidParameter {
                reason: "grn average degree must be positive and finite",
            });
        }
        let radius = (average_degree / (std::f64::consts::PI * (nodes - 1) as f64)).sqrt();
        Ok(GeometricRandomNetwork {
            nodes,
            radius,
            torus: true,
        })
    }

    /// Switches between torus distances (default, no boundary effects) and plain unit-square
    /// distances (nodes near the border see fewer neighbors, as in the original reference
    /// model of Dall & Christensen).
    pub fn torus(mut self, torus: bool) -> Self {
        self.torus = torus;
        self
    }

    /// Returns the number of nodes this configuration will generate.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Returns the connection radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Generates the network, returning the graph together with the node positions.
    ///
    /// Uses a uniform grid spatial index so the expected cost is O(n · k̄) rather than
    /// O(n²).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the configuration asks for zero nodes.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<(Graph, Vec<Point>)> {
        if self.nodes == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "grn needs at least one node",
            });
        }
        let positions: Vec<Point> = (0..self.nodes)
            .map(|_| Point {
                x: rng.gen::<f64>(),
                y: rng.gen::<f64>(),
            })
            .collect();

        let mut graph = Graph::with_nodes(self.nodes);
        // Spatial hashing: cells of side >= radius so only the 3x3 neighborhood must be probed.
        let cells_per_side = ((1.0 / self.radius).floor() as usize).clamp(1, 1024);
        let cell_size = 1.0 / cells_per_side as f64;
        let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells_per_side * cells_per_side];
        let cell_of = |p: &Point| -> (usize, usize) {
            let cx = ((p.x / cell_size) as usize).min(cells_per_side - 1);
            let cy = ((p.y / cell_size) as usize).min(cells_per_side - 1);
            (cx, cy)
        };
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            grid[cy * cells_per_side + cx].push(i);
        }

        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = if self.torus {
                        ((cx as i64 + dx).rem_euclid(cells_per_side as i64)) as usize
                    } else {
                        match cx as i64 + dx {
                            v if v < 0 || v >= cells_per_side as i64 => continue,
                            v => v as usize,
                        }
                    };
                    let ny = if self.torus {
                        ((cy as i64 + dy).rem_euclid(cells_per_side as i64)) as usize
                    } else {
                        match cy as i64 + dy {
                            v if v < 0 || v >= cells_per_side as i64 => continue,
                            v => v as usize,
                        }
                    };
                    for &j in &grid[ny * cells_per_side + nx] {
                        if j <= i {
                            continue;
                        }
                        let d = if self.torus {
                            p.torus_distance(&positions[j])
                        } else {
                            p.distance(&positions[j])
                        };
                        if d < self.radius {
                            graph
                                .add_edge_if_absent(crate::NodeId::new(i), crate::NodeId::new(j))
                                .expect("nodes preallocated");
                        }
                    }
                }
            }
        }
        Ok((graph, positions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn point_distances() {
        let a = Point { x: 0.1, y: 0.1 };
        let b = Point { x: 0.9, y: 0.1 };
        assert!((a.distance(&b) - 0.8).abs() < 1e-12);
        assert!((a.torus_distance(&b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(GeometricRandomNetwork::new(10, 0.0).is_err());
        assert!(GeometricRandomNetwork::new(10, f64::NAN).is_err());
        assert!(GeometricRandomNetwork::with_average_degree(1, 4.0).is_err());
        assert!(GeometricRandomNetwork::with_average_degree(100, -1.0).is_err());
    }

    #[test]
    fn average_degree_close_to_target() {
        let mut rng = StdRng::seed_from_u64(42);
        let grn = GeometricRandomNetwork::with_average_degree(3_000, 10.0).unwrap();
        let (g, positions) = grn.generate(&mut rng).unwrap();
        assert_eq!(g.node_count(), 3_000);
        assert_eq!(positions.len(), 3_000);
        let k_bar = g.average_degree();
        assert!(
            (k_bar - 10.0).abs() < 1.0,
            "expected average degree near 10, got {k_bar}"
        );
    }

    #[test]
    fn supercritical_grn_has_giant_component() {
        // k_bar = 10 is far above the 2D continuum-percolation threshold (~4.52), so nearly
        // every node should be in one giant component.
        let mut rng = StdRng::seed_from_u64(7);
        let grn = GeometricRandomNetwork::with_average_degree(2_000, 10.0).unwrap();
        let (g, _) = grn.generate(&mut rng).unwrap();
        let fraction = traversal::giant_component_fraction(&g);
        assert!(
            fraction > 0.95,
            "giant component fraction {fraction} too small"
        );
    }

    #[test]
    fn edges_respect_radius() {
        let mut rng = StdRng::seed_from_u64(11);
        let grn = GeometricRandomNetwork::new(500, 0.08).unwrap();
        let (g, positions) = grn.generate(&mut rng).unwrap();
        for (a, b) in g.edges() {
            let d = positions[a.index()].torus_distance(&positions[b.index()]);
            assert!(
                d < 0.08,
                "edge between nodes at torus distance {d} exceeds the radius"
            );
        }
    }

    #[test]
    fn plain_square_variant_generates_fewer_edges_than_torus() {
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let torus = GeometricRandomNetwork::new(1_000, 0.06).unwrap();
        let plain = torus.torus(false);
        let (g_torus, _) = torus.generate(&mut rng_a).unwrap();
        let (g_plain, _) = plain.generate(&mut rng_b).unwrap();
        assert!(
            g_plain.edge_count() <= g_torus.edge_count(),
            "boundary effects should only remove edges"
        );
    }

    #[test]
    fn generated_graph_is_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let grn = GeometricRandomNetwork::with_average_degree(800, 6.0).unwrap();
        let (g, _) = grn.generate(&mut rng).unwrap();
        g.assert_consistent();
    }
}
