//! Structured and regular generators: stars, paths, balanced trees, and random regular
//! graphs.
//!
//! These serve three roles in the workspace:
//!
//! * **analytic fixtures** — stars, paths, and balanced trees have closed-form degree
//!   distributions, diameters, and centralities, which makes them the reference points the
//!   metric and search tests validate against;
//! * **extreme topologies** — the star is the limit HAPA converges to without a hard
//!   cutoff (paper, §IV-A: "this procedure makes the topology of the system a star-like
//!   topology if the network is not limited by a cutoff"), and the balanced tree is the
//!   `m = 1` flooding worst case;
//! * **degree-homogeneous baselines** — the random regular graph is what an overlay looks
//!   like when the hard cutoff equals the minimum degree (`k_c = m`), the tightest cutoff
//!   the paper's sweeps approach.

use crate::{Graph, GraphError, NodeId, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a star: node 0 is the center, nodes `1..n` are leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star_graph(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "star graph needs at least two nodes",
        });
    }
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::new(0), NodeId::new(i))?;
    }
    Ok(g)
}

/// Generates a path `0 - 1 - ... - (n-1)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn path_graph(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "path graph needs at least one node",
        });
    }
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::new(i - 1), NodeId::new(i))?;
    }
    Ok(g)
}

/// Generates a balanced tree of the given branching factor and depth (depth 0 is a single
/// root). Node 0 is the root; children are numbered breadth-first.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `branching == 0`, or if the requested tree
/// would exceed `u32::MAX` nodes.
pub fn balanced_tree(branching: usize, depth: u32) -> Result<Graph> {
    if branching == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "balanced tree needs a positive branching factor",
        });
    }
    // Node count: (b^(depth+1) - 1) / (b - 1), or depth + 1 when b = 1.
    let mut node_count: usize = 1;
    let mut level_size: usize = 1;
    for _ in 0..depth {
        level_size = level_size
            .checked_mul(branching)
            .ok_or(GraphError::InvalidParameter {
                reason: "balanced tree is too large",
            })?;
        node_count = node_count
            .checked_add(level_size)
            .ok_or(GraphError::InvalidParameter {
                reason: "balanced tree is too large",
            })?;
    }
    if node_count > u32::MAX as usize {
        return Err(GraphError::InvalidParameter {
            reason: "balanced tree is too large",
        });
    }
    let mut g = Graph::with_nodes(node_count);
    // Parent of node i (i >= 1) in a breadth-first numbering is (i - 1) / branching.
    for i in 1..node_count {
        let parent = (i - 1) / branching;
        g.add_edge(NodeId::new(parent), NodeId::new(i))?;
    }
    Ok(g)
}

/// Generates a random `d`-regular graph on `n` nodes by stub matching with edge-swap
/// repair, so the result is always a simple graph in which every node has degree exactly
/// `d`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n·d` is odd, `d >= n`, or `d == 0`.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if d == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "regular graph degree must be positive",
        });
    }
    if d >= n {
        return Err(GraphError::InvalidParameter {
            reason: "regular graph degree must be below the node count",
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: "regular graph requires an even number of stubs (n * d must be even)",
        });
    }

    // Retry whole matchings a few times; for sparse d this almost always succeeds quickly.
    for _ in 0..100 {
        if let Some(g) = try_regular_matching(n, d, rng)? {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameter {
        reason: "could not realize the regular degree sequence; degree too close to n",
    })
}

fn try_regular_matching<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Option<Graph>> {
    let mut stubs: Vec<NodeId> = Vec::with_capacity(n * d);
    for i in 0..n {
        stubs.extend(std::iter::repeat_n(NodeId::new(i), d));
    }
    stubs.shuffle(rng);

    let mut graph = Graph::with_nodes(n);
    let mut pending: Vec<NodeId> = Vec::new();
    for pair in stubs.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a == b || graph.contains_edge(a, b) {
            pending.push(a);
            pending.push(b);
        } else {
            graph.add_edge(a, b)?;
        }
    }

    // Repair leftover stubs with degree-preserving edge swaps.
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    while pending.len() >= 2 {
        let b = pending.pop().expect("length checked");
        let a = pending.pop().expect("length checked");
        if a != b && !graph.contains_edge(a, b) {
            graph.add_edge(a, b)?;
            edges.push((a, b));
            continue;
        }
        let mut placed = false;
        for _ in 0..500 {
            if edges.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..edges.len());
            let (u, v) = edges[idx];
            if u == a || u == b || v == a || v == b {
                continue;
            }
            if graph.contains_edge(a, u) || graph.contains_edge(b, v) {
                continue;
            }
            graph.remove_edge(u, v)?;
            graph.add_edge(a, u)?;
            graph.add_edge(b, v)?;
            edges.swap_remove(idx);
            edges.push((a, u));
            edges.push((b, v));
            placed = true;
            break;
        }
        if !placed {
            return Ok(None);
        }
    }
    Ok(Some(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn star_shape() {
        let g = star_graph(6).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(n(0)), 5);
        for i in 1..6 {
            assert_eq!(g.degree(n(i)), 1);
        }
        assert!(traversal::is_connected(&g));
        assert!(star_graph(1).is_err());
    }

    #[test]
    fn path_shape() {
        let g = path_graph(5).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(n(0)), 1);
        assert_eq!(g.degree(n(2)), 2);
        assert!(traversal::is_connected(&g));
        assert_eq!(path_graph(1).unwrap().edge_count(), 0);
        assert!(path_graph(0).is_err());
    }

    #[test]
    fn balanced_tree_counts() {
        // Binary tree of depth 3: 1 + 2 + 4 + 8 = 15 nodes, 14 edges.
        let g = balanced_tree(2, 3).unwrap();
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.degree(n(0)), 2, "root has `branching` children");
        assert_eq!(g.degree(n(1)), 3, "internal node has parent plus children");
        assert_eq!(g.degree(n(14)), 1, "leaves are pendant");
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn balanced_tree_depth_zero_and_branching_one() {
        assert_eq!(balanced_tree(3, 0).unwrap().node_count(), 1);
        // Branching 1 is a path of depth + 1 nodes.
        let g = balanced_tree(1, 4).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(balanced_tree(0, 2).is_err());
    }

    #[test]
    fn balanced_tree_rejects_absurd_sizes() {
        assert!(balanced_tree(10, 32).is_err());
    }

    #[test]
    fn random_regular_is_exactly_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n_nodes, d) in [(50, 3), (64, 4), (101, 2)] {
            let g = random_regular(n_nodes, d, &mut rng).unwrap();
            assert_eq!(g.node_count(), n_nodes);
            assert!(g.degrees().iter().all(|&k| k == d), "n={n_nodes}, d={d}");
            g.assert_consistent();
        }
    }

    #[test]
    fn random_regular_rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(random_regular(10, 0, &mut rng).is_err());
        assert!(random_regular(10, 10, &mut rng).is_err());
        assert!(random_regular(5, 3, &mut rng).is_err(), "odd stub total");
    }

    #[test]
    fn random_regular_three_is_connected_with_high_probability() {
        // Not a theorem at this size, but stable for the fixed seed; a 3-regular random
        // graph on 100 nodes is connected with overwhelming probability.
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(100, 3, &mut rng).unwrap();
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn random_regular_is_deterministic_per_seed() {
        let a = random_regular(60, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = random_regular(60, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
