//! Classic graph generators used as baselines, initial seeds, and test fixtures.
//!
//! * [`complete_graph`] — the fully connected seed of `m + 1` nodes the preferential
//!   attachment variants start from (paper, Appendix A and C).
//! * [`ring_graph`] and [`watts_strogatz`] — small-world baselines referenced in the
//!   paper's discussion of `O(ln N)` search on small-world topologies.
//! * [`erdos_renyi`] — the homogeneous random-graph baseline.

use crate::{Graph, GraphError, NodeId, Result};
use rand::Rng;

/// Generates the complete graph on `n` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n` is zero.
pub fn complete_graph(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "complete graph needs at least one node",
        });
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId::new(i), NodeId::new(j))?;
        }
    }
    Ok(g)
}

/// Generates a ring in which every node is connected to its `k` nearest neighbors on each
/// side (a circulant graph, the starting point of the Watts-Strogatz model).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`, `k == 0`, or `2k >= n` (the ring
/// would degenerate into a multigraph).
pub fn ring_graph(n: usize, k: usize) -> Result<Graph> {
    if n == 0 || k == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "ring graph needs positive size and degree",
        });
    }
    if 2 * k >= n {
        return Err(GraphError::InvalidParameter {
            reason: "ring graph requires the neighborhood radius to be below half the ring size",
        });
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for offset in 1..=k {
            let j = (i + offset) % n;
            g.add_edge(NodeId::new(i), NodeId::new(j))?;
        }
    }
    Ok(g)
}

/// Generates an Erdős–Rényi `G(n, p)` random graph: every unordered node pair is linked
/// independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not within `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: "edge probability must be within [0, 1]",
        });
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId::new(i), NodeId::new(j))?;
            }
        }
    }
    Ok(g)
}

/// Generates a Watts-Strogatz small-world graph: a ring of `n` nodes each linked to `k`
/// neighbors per side, with every edge rewired to a uniformly random target with
/// probability `beta`.
///
/// Rewiring keeps the edge's lower endpoint and redraws the other endpoint, skipping
/// self-loops and duplicates (the edge is left in place if no valid target is found after a
/// bounded number of attempts), so the graph keeps exactly `n·k` edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] under the same conditions as [`ring_graph`], or
/// if `beta` is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph> {
    if !(0.0..=1.0).contains(&beta) || beta.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: "rewiring probability must be within [0, 1]",
        });
    }
    let mut g = ring_graph(n, k)?;
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    for (a, b) in edges {
        if rng.gen::<f64>() >= beta {
            continue;
        }
        // Try a bounded number of random targets to preserve the edge count.
        for _ in 0..32 {
            let target = NodeId::new(rng.gen_range(0..n));
            if target == a || g.contains_edge(a, target) {
                continue;
            }
            g.remove_edge(a, b).expect("edge listed by edges() exists");
            g.add_edge(a, target).expect("checked for duplicates above");
            break;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete_graph(5).unwrap();
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.min_degree(), Some(4));
        assert!(complete_graph(0).is_err());
    }

    #[test]
    fn complete_graph_of_one_node_has_no_edges() {
        let g = complete_graph(1).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn ring_graph_is_regular_and_connected() {
        let g = ring_graph(10, 2).unwrap();
        assert_eq!(g.edge_count(), 20);
        assert_eq!(g.min_degree(), Some(4));
        assert_eq!(g.max_degree(), Some(4));
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn ring_graph_rejects_degenerate_parameters() {
        assert!(ring_graph(0, 1).is_err());
        assert!(ring_graph(10, 0).is_err());
        assert!(ring_graph(6, 3).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = 400;
        let p = 0.02;
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let observed = g.edge_count() as f64;
        assert!(
            (observed - expected).abs() < 4.0 * expected.sqrt(),
            "observed {observed} edges, expected about {expected}"
        );
        g.assert_consistent();
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(20, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(erdos_renyi(20, 1.0, &mut rng).unwrap().edge_count(), 190);
        assert!(erdos_renyi(20, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(20, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = watts_strogatz(200, 3, 0.2, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 600);
        g.assert_consistent();
    }

    #[test]
    fn watts_strogatz_with_zero_beta_is_the_ring() {
        let mut rng = StdRng::seed_from_u64(2);
        let ws = watts_strogatz(50, 2, 0.0, &mut rng).unwrap();
        let ring = ring_graph(50, 2).unwrap();
        assert_eq!(ws, ring);
    }

    #[test]
    fn watts_strogatz_rewiring_shrinks_average_path() {
        let mut rng = StdRng::seed_from_u64(31);
        let ring = ring_graph(300, 2).unwrap();
        let ws = watts_strogatz(300, 2, 0.3, &mut rng).unwrap();
        let ring_stats = crate::metrics::path_statistics_sampled(&ring, 40, &mut rng);
        let ws_stats = crate::metrics::path_statistics_sampled(&ws, 40, &mut rng);
        assert!(
            ws_stats.average_shortest_path < ring_stats.average_shortest_path,
            "rewiring should introduce shortcuts ({} >= {})",
            ws_stats.average_shortest_path,
            ring_stats.average_shortest_path
        );
    }

    #[test]
    fn watts_strogatz_rejects_bad_beta() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(watts_strogatz(20, 2, -0.1, &mut rng).is_err());
        assert!(watts_strogatz(20, 2, f64::NAN, &mut rng).is_err());
    }
}
