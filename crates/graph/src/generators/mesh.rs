//! Two-dimensional regular mesh substrate.
//!
//! The paper mentions a "two-dimensional regular network (mesh with nodes connected to
//! four neighbors in four different directions)" as an alternative DAPA substrate to the
//! geometric random network.

use crate::{Graph, GraphError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// Configuration for a two-dimensional regular mesh.
///
/// Nodes are laid out on a `rows × cols` lattice and connected to their four axis-aligned
/// neighbors. When `wrap` is true the lattice is a torus (every node has degree exactly 4);
/// otherwise border nodes have degree 2 or 3.
///
/// # Example
///
/// ```
/// use sfo_graph::generators::{mesh_2d, MeshConfig};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let g = mesh_2d(MeshConfig::new(10, 10))?;
/// assert_eq!(g.node_count(), 100);
/// assert_eq!(g.max_degree(), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of lattice rows.
    pub rows: usize,
    /// Number of lattice columns.
    pub cols: usize,
    /// Whether the lattice wraps around (torus). Defaults to `false`.
    pub wrap: bool,
}

impl MeshConfig {
    /// Creates a non-wrapping mesh configuration.
    pub fn new(rows: usize, cols: usize) -> Self {
        MeshConfig {
            rows,
            cols,
            wrap: false,
        }
    }

    /// Creates a wrapping (torus) mesh configuration.
    pub fn torus(rows: usize, cols: usize) -> Self {
        MeshConfig {
            rows,
            cols,
            wrap: true,
        }
    }

    /// Returns the total number of nodes the mesh will contain.
    pub fn node_count(&self) -> usize {
        self.rows * self.cols
    }
}

/// Generates a two-dimensional regular mesh according to `config`.
///
/// Node `(r, c)` receives the id `r * cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is zero, or if a wrapping
/// mesh is requested with a dimension smaller than 3 (wrapping a dimension of 1 or 2 would
/// create self-loops or duplicate edges).
pub fn mesh_2d(config: MeshConfig) -> Result<Graph> {
    if config.rows == 0 || config.cols == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "mesh dimensions must be positive",
        });
    }
    if config.wrap && (config.rows < 3 || config.cols < 3) {
        return Err(GraphError::InvalidParameter {
            reason: "wrapping mesh requires both dimensions to be at least 3",
        });
    }
    let mut graph = Graph::with_nodes(config.node_count());
    let id = |r: usize, c: usize| NodeId::new(r * config.cols + c);
    for r in 0..config.rows {
        for c in 0..config.cols {
            // Right neighbor.
            if c + 1 < config.cols {
                graph.add_edge(id(r, c), id(r, c + 1))?;
            } else if config.wrap {
                graph.add_edge(id(r, c), id(r, 0))?;
            }
            // Down neighbor.
            if r + 1 < config.rows {
                graph.add_edge(id(r, c), id(r + 1, c))?;
            } else if config.wrap {
                graph.add_edge(id(r, c), id(0, c))?;
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn open_mesh_edge_count_and_degrees() {
        let g = mesh_2d(MeshConfig::new(4, 5)).unwrap();
        assert_eq!(g.node_count(), 20);
        // Edges: horizontal 4*(5-1) + vertical (4-1)*5 = 16 + 15 = 31.
        assert_eq!(g.edge_count(), 31);
        assert_eq!(g.min_degree(), Some(2));
        assert_eq!(g.max_degree(), Some(4));
        assert!(traversal::is_connected(&g));
        g.assert_consistent();
    }

    #[test]
    fn torus_mesh_is_4_regular() {
        let g = mesh_2d(MeshConfig::torus(5, 6)).unwrap();
        assert_eq!(g.node_count(), 30);
        assert_eq!(g.edge_count(), 60);
        assert_eq!(g.min_degree(), Some(4));
        assert_eq!(g.max_degree(), Some(4));
        assert!(traversal::is_connected(&g));
        g.assert_consistent();
    }

    #[test]
    fn single_row_mesh_is_a_path() {
        let g = mesh_2d(MeshConfig::new(1, 7)).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), Some(2));
        assert_eq!(g.min_degree(), Some(1));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(mesh_2d(MeshConfig::new(0, 5)).is_err());
        assert!(mesh_2d(MeshConfig::new(5, 0)).is_err());
        assert!(mesh_2d(MeshConfig::torus(2, 5)).is_err());
        assert!(mesh_2d(MeshConfig::torus(5, 2)).is_err());
    }

    #[test]
    fn node_count_helper_matches_generated_graph() {
        let config = MeshConfig::new(3, 9);
        assert_eq!(config.node_count(), mesh_2d(config).unwrap().node_count());
    }
}
