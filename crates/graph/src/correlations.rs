//! Degree correlations: average neighbor degree `k_nn(k)` and the rich-club coefficient.
//!
//! The configuration-model literature the paper builds on (refs. \[50\], \[59\]) distinguishes
//! networks by whether high-degree nodes preferentially link to each other. Two standard
//! summaries are provided here:
//!
//! * `k_nn(k)` — the mean degree of the neighbors of degree-`k` nodes. A rising `k_nn(k)`
//!   means assortative mixing (hubs attach to hubs), a falling one means disassortative
//!   mixing (hubs attach to satellites, the typical scale-free pattern), and a flat one
//!   means no degree correlations (the UCM target).
//! * the rich-club coefficient `φ(k)` — the edge density among nodes of degree greater
//!   than `k`. Super-hub formation (HAPA without a cutoff) shows up as a rich club; hard
//!   cutoffs dissolve it.

use crate::metrics::degree_histogram;
use crate::{GraphView, NodeId};
use serde::{Deserialize, Serialize};

/// Average degree of each node's neighbors, indexed by node id (`0.0` for isolated nodes).
pub fn average_neighbor_degree<G: GraphView + ?Sized>(graph: &G) -> Vec<f64> {
    graph
        .nodes()
        .map(|v| {
            let k = graph.degree(v);
            if k == 0 {
                0.0
            } else {
                let sum: usize = graph.neighbors(v).iter().map(|&u| graph.degree(u)).sum();
                sum as f64 / k as f64
            }
        })
        .collect()
}

/// One point of the `k_nn(k)` curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnnPoint {
    /// Node degree `k`.
    pub degree: usize,
    /// Mean over degree-`k` nodes of the average degree of their neighbors.
    pub average_neighbor_degree: f64,
    /// Number of nodes of degree `k` that contributed.
    pub nodes: usize,
}

/// Computes the degree-dependent average neighbor degree `k_nn(k)`.
///
/// Degrees with no nodes are omitted; isolated nodes (degree 0) are skipped because they
/// have no neighbors to average over.
///
/// # Example
///
/// ```
/// use sfo_graph::{correlations, generators::complete_graph};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let g = complete_graph(5)?;
/// let knn = correlations::knn_by_degree(&g);
/// assert_eq!(knn.len(), 1);
/// assert_eq!(knn[0].degree, 4);
/// assert!((knn[0].average_neighbor_degree - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn knn_by_degree<G: GraphView + ?Sized>(graph: &G) -> Vec<KnnPoint> {
    let per_node = average_neighbor_degree(graph);
    let max_degree = graph.max_degree().unwrap_or(0);
    let mut sums = vec![0.0f64; max_degree + 1];
    let mut counts = vec![0usize; max_degree + 1];
    for v in graph.nodes() {
        let k = graph.degree(v);
        if k == 0 {
            continue;
        }
        sums[k] += per_node[v.index()];
        counts[k] += 1;
    }
    (1..=max_degree)
        .filter(|&k| counts[k] > 0)
        .map(|k| KnnPoint {
            degree: k,
            average_neighbor_degree: sums[k] / counts[k] as f64,
            nodes: counts[k],
        })
        .collect()
}

/// One point of the rich-club curve `φ(k)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RichClubPoint {
    /// Degree threshold `k`: the club contains nodes with degree strictly greater than `k`.
    pub degree: usize,
    /// Number of nodes in the club.
    pub club_size: usize,
    /// Edges among club members.
    pub internal_edges: usize,
    /// `φ(k)` = internal edges divided by the maximum possible `club_size·(club_size-1)/2`,
    /// or 0 when the club has fewer than two members.
    pub coefficient: f64,
}

/// Computes the rich-club coefficient `φ(k)` for every degree threshold `k` present in the
/// graph (from 0 up to the maximum degree minus one).
pub fn rich_club_coefficients<G: GraphView>(graph: &G) -> Vec<RichClubPoint> {
    let max_degree = graph.max_degree().unwrap_or(0);
    if max_degree == 0 {
        return Vec::new();
    }
    let degrees = graph.degrees();
    (0..max_degree)
        .map(|k| {
            let members: Vec<NodeId> = graph.nodes().filter(|v| degrees[v.index()] > k).collect();
            let club_size = members.len();
            let in_club = |v: NodeId| degrees[v.index()] > k;
            let internal_edges = graph
                .edges()
                .filter(|&(a, b)| in_club(a) && in_club(b))
                .count();
            let possible = club_size.saturating_sub(1) * club_size / 2;
            let coefficient = if possible == 0 {
                0.0
            } else {
                internal_edges as f64 / possible as f64
            };
            RichClubPoint {
                degree: k,
                club_size,
                internal_edges,
                coefficient,
            }
        })
        .collect()
}

/// Summary of the degree-correlation structure of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationReport {
    /// The `k_nn(k)` curve.
    pub knn: Vec<KnnPoint>,
    /// Pearson degree assortativity (same value as
    /// [`crate::metrics::degree_assortativity`]), if defined.
    pub assortativity: Option<f64>,
    /// Fraction of all edges that connect two nodes whose degree is at least the mean
    /// degree ("hub-hub" edges in a loose sense).
    pub high_high_edge_fraction: f64,
}

/// Computes a combined degree-correlation report.
pub fn correlation_report<G: GraphView>(graph: &G) -> CorrelationReport {
    let knn = knn_by_degree(graph);
    let assortativity = crate::metrics::degree_assortativity(graph);
    let mean_degree = graph.average_degree();
    let mut high_high = 0usize;
    let mut total = 0usize;
    for (a, b) in graph.edges() {
        total += 1;
        if graph.degree(a) as f64 >= mean_degree && graph.degree(b) as f64 >= mean_degree {
            high_high += 1;
        }
    }
    let high_high_edge_fraction = if total == 0 {
        0.0
    } else {
        high_high as f64 / total as f64
    };
    CorrelationReport {
        knn,
        assortativity,
        high_high_edge_fraction,
    }
}

/// Returns the fraction of nodes whose degree equals the histogram mode (the most common
/// degree), a crude measure of how strongly a hard cutoff piles nodes up at one value.
pub fn modal_degree_fraction<G: GraphView + ?Sized>(graph: &G) -> f64 {
    let hist = degree_histogram(graph);
    match hist.counts.iter().max() {
        Some(&max_count) if hist.node_count > 0 => max_count as f64 / hist.node_count as f64,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, ring_graph};
    use crate::Graph;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Star with center 0 and 4 leaves.
    fn star5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(n(0), n(i)).unwrap();
        }
        g
    }

    #[test]
    fn average_neighbor_degree_of_a_star() {
        let per_node = average_neighbor_degree(&star5());
        assert!(
            (per_node[0] - 1.0).abs() < 1e-12,
            "center's neighbors are all leaves"
        );
        for value in &per_node[1..5] {
            assert!(
                (value - 4.0).abs() < 1e-12,
                "each leaf's only neighbor is the hub"
            );
        }
    }

    #[test]
    fn isolated_nodes_have_zero_neighbor_degree() {
        let g = Graph::with_nodes(3);
        assert_eq!(average_neighbor_degree(&g), vec![0.0, 0.0, 0.0]);
        assert!(knn_by_degree(&g).is_empty());
    }

    #[test]
    fn knn_of_a_star_is_disassortative() {
        let knn = knn_by_degree(&star5());
        // Degree-1 nodes (leaves) have neighbor degree 4; the degree-4 node has neighbor
        // degree 1. A falling knn(k) curve is the disassortative signature.
        assert_eq!(knn.len(), 2);
        assert_eq!(knn[0].degree, 1);
        assert!((knn[0].average_neighbor_degree - 4.0).abs() < 1e-12);
        assert_eq!(knn[0].nodes, 4);
        assert_eq!(knn[1].degree, 4);
        assert!((knn[1].average_neighbor_degree - 1.0).abs() < 1e-12);
        assert!(knn[0].average_neighbor_degree > knn[1].average_neighbor_degree);
    }

    #[test]
    fn knn_of_a_regular_graph_is_flat() {
        let g = ring_graph(12, 2).unwrap();
        let knn = knn_by_degree(&g);
        assert_eq!(knn.len(), 1);
        assert_eq!(knn[0].degree, 4);
        assert!((knn[0].average_neighbor_degree - 4.0).abs() < 1e-12);
        assert_eq!(knn[0].nodes, 12);
    }

    #[test]
    fn rich_club_of_a_complete_graph_is_one() {
        let g = complete_graph(6).unwrap();
        let points = rich_club_coefficients(&g);
        // Thresholds 0..4; every club is the full clique.
        assert_eq!(points.len(), 5);
        for p in &points {
            assert_eq!(p.club_size, 6);
            assert_eq!(p.internal_edges, 15);
            assert!((p.coefficient - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rich_club_of_a_star_has_no_internal_edges_above_threshold_one() {
        let points = rich_club_coefficients(&star5());
        // Threshold 1: club = {center}; no pair, coefficient 0.
        let p1 = points.iter().find(|p| p.degree == 1).unwrap();
        assert_eq!(p1.club_size, 1);
        assert_eq!(p1.internal_edges, 0);
        assert_eq!(p1.coefficient, 0.0);
        // Threshold 0: club = everyone; 4 of the 10 possible edges exist.
        let p0 = points.iter().find(|p| p.degree == 0).unwrap();
        assert_eq!(p0.club_size, 5);
        assert!((p0.coefficient - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rich_club_is_empty_for_edgeless_graphs() {
        assert!(rich_club_coefficients(&Graph::with_nodes(4)).is_empty());
        assert!(rich_club_coefficients(&Graph::new()).is_empty());
    }

    #[test]
    fn correlation_report_on_a_ring() {
        let g = ring_graph(10, 1).unwrap();
        let report = correlation_report(&g);
        assert_eq!(report.knn.len(), 1);
        // Every edge joins two degree-2 nodes, and the mean degree is 2.
        assert!((report.high_high_edge_fraction - 1.0).abs() < 1e-12);
        // A regular ring has zero degree variance, so assortativity is undefined.
        assert!(report.assortativity.is_none() || report.assortativity.unwrap().is_finite());
    }

    #[test]
    fn modal_degree_fraction_detects_regularity() {
        let ring = ring_graph(10, 1).unwrap();
        assert!((modal_degree_fraction(&ring) - 1.0).abs() < 1e-12);
        let star = star5();
        assert!((modal_degree_fraction(&star) - 0.8).abs() < 1e-12);
        assert_eq!(modal_degree_fraction(&Graph::new()), 0.0);
    }
}
