//! Topological metrics: degree distributions, path lengths, diameter, clustering,
//! assortativity.
//!
//! Every figure in the paper is computed from one of these quantities: the degree
//! distribution `P(k)` (Figs. 1-4), the average shortest path / diameter (Table I), and the
//! reachability counts that underlie the search-efficiency plots (Figs. 6-12).

use crate::traversal::bfs_distances;
use crate::{GraphView, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Histogram of node degrees: `counts[k]` is the number of nodes with degree exactly `k`.
///
/// # Example
///
/// ```
/// use sfo_graph::{Graph, NodeId, metrics};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// let hist = metrics::degree_histogram(&g);
/// assert_eq!(hist.counts, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    /// `counts[k]` is the number of nodes of degree `k`; the vector extends to the maximum
    /// degree present in the graph.
    pub counts: Vec<usize>,
    /// Total number of nodes the histogram was computed over.
    pub node_count: usize,
}

impl DegreeHistogram {
    /// Returns the empirical degree distribution `P(k)` as `(k, probability)` pairs,
    /// omitting degrees with zero count.
    pub fn distribution(&self) -> Vec<(usize, f64)> {
        if self.node_count == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k, c as f64 / self.node_count as f64))
            .collect()
    }

    /// Returns the maximum degree present, or `None` for an empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Returns the number of nodes whose degree equals `k` (0 if `k` exceeds the histogram).
    pub fn count(&self, k: usize) -> usize {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Returns the fraction of nodes whose degree equals `k`.
    pub fn fraction(&self, k: usize) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.count(k) as f64 / self.node_count as f64
        }
    }
}

/// Computes the degree histogram of `graph`.
pub fn degree_histogram<G: GraphView + ?Sized>(graph: &G) -> DegreeHistogram {
    let max_degree = graph.max_degree().unwrap_or(0);
    let mut counts = vec![0usize; max_degree + 1];
    for node in graph.nodes() {
        counts[graph.degree(node)] += 1;
    }
    if graph.node_count() == 0 {
        counts.clear();
    }
    DegreeHistogram {
        counts,
        node_count: graph.node_count(),
    }
}

/// Summary statistics of shortest-path lengths within the giant component of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathStatistics {
    /// Mean hop distance between sampled reachable node pairs.
    pub average_shortest_path: f64,
    /// Largest hop distance observed among sampled pairs (a lower bound on the true
    /// diameter when sampling).
    pub diameter: u32,
    /// Number of source nodes the BFS sweep was run from.
    pub sources_sampled: usize,
    /// Number of (source, destination) pairs that contributed to the average.
    pub pairs_counted: usize,
}

/// Computes shortest-path statistics by running BFS from every node.
///
/// Unreachable pairs are ignored (the statistics describe the connected portions of the
/// graph). Cost is O(N·(N+E)); prefer [`path_statistics_sampled`] for graphs beyond a few
/// thousand nodes.
pub fn path_statistics_exact<G: GraphView + ?Sized>(graph: &G) -> PathStatistics {
    let sources: Vec<NodeId> = graph.nodes().collect();
    path_statistics_from_sources(graph, &sources)
}

/// Computes shortest-path statistics from `samples` BFS sources chosen uniformly at random.
///
/// This is the estimator used for Table I style diameter-scaling measurements on large
/// topologies: the mean shortest path converges quickly with the number of sources, while
/// the reported diameter is a lower bound.
pub fn path_statistics_sampled<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    samples: usize,
    rng: &mut R,
) -> PathStatistics {
    let mut sources: Vec<NodeId> = graph.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(samples.max(1).min(graph.node_count()));
    path_statistics_from_sources(graph, &sources)
}

fn path_statistics_from_sources<G: GraphView + ?Sized>(
    graph: &G,
    sources: &[NodeId],
) -> PathStatistics {
    let mut total = 0u64;
    let mut pairs = 0usize;
    let mut diameter = 0u32;
    for &source in sources {
        let dist = bfs_distances(graph, source);
        for (i, d) in dist.iter().enumerate() {
            if i == source.index() {
                continue;
            }
            if let Some(d) = d {
                total += u64::from(*d);
                pairs += 1;
                diameter = diameter.max(*d);
            }
        }
    }
    PathStatistics {
        average_shortest_path: if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        },
        diameter,
        sources_sampled: sources.len(),
        pairs_counted: pairs,
    }
}

/// Computes the average local clustering coefficient of the graph.
///
/// For each node of degree at least 2 the local coefficient is the fraction of neighbor
/// pairs that are themselves connected; nodes of degree 0 or 1 contribute 0, following the
/// usual convention. Returns 0.0 for the empty graph.
pub fn average_clustering_coefficient<G: GraphView + ?Sized>(graph: &G) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for node in graph.nodes() {
        let neighbors = graph.neighbors(node);
        let k = neighbors.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if graph.contains_edge(a, b) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k * (k - 1)) as f64;
    }
    total / graph.node_count() as f64
}

/// Computes the degree assortativity coefficient (Pearson correlation of the degrees at the
/// two ends of each edge).
///
/// Returns `None` when the graph has no edges or when every node has the same degree (the
/// correlation is undefined in those cases).
pub fn degree_assortativity<G: GraphView>(graph: &G) -> Option<f64> {
    if graph.edge_count() == 0 {
        return None;
    }
    let m = graph.edge_count() as f64;
    let mut sum_prod = 0.0;
    let mut sum_half = 0.0;
    let mut sum_sq_half = 0.0;
    for (a, b) in graph.edges() {
        let ka = graph.degree(a) as f64;
        let kb = graph.degree(b) as f64;
        sum_prod += ka * kb;
        sum_half += 0.5 * (ka + kb);
        sum_sq_half += 0.5 * (ka * ka + kb * kb);
    }
    let numerator = sum_prod / m - (sum_half / m).powi(2);
    let denominator = sum_sq_half / m - (sum_half / m).powi(2);
    if denominator.abs() < 1e-15 {
        None
    } else {
        Some(numerator / denominator)
    }
}

/// Counts the nodes reachable from `source` within `ttl` hops, excluding the source.
///
/// This is exactly the quantity an ideal flood with time-to-live `ttl` can hit, and serves
/// as the upper bound the search-efficiency figures compare against.
pub fn reachable_within<G: GraphView + ?Sized>(graph: &G, source: NodeId, ttl: u32) -> usize {
    crate::traversal::bfs_distances_bounded(graph, source, ttl)
        .iter()
        .enumerate()
        .filter(|(i, d)| *i != source.index() && d.is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn star_graph(leaves: usize) -> Graph {
        let mut g = Graph::with_nodes(leaves + 1);
        for i in 1..=leaves {
            g.add_edge(n(0), n(i)).unwrap();
        }
        g
    }

    fn cycle_graph(len: usize) -> Graph {
        let mut g = Graph::with_nodes(len);
        for i in 0..len {
            g.add_edge(n(i), n((i + 1) % len)).unwrap();
        }
        g
    }

    #[test]
    fn histogram_of_star_graph() {
        let g = star_graph(4);
        let hist = degree_histogram(&g);
        assert_eq!(hist.count(1), 4);
        assert_eq!(hist.count(4), 1);
        assert_eq!(hist.count(2), 0);
        assert_eq!(hist.max_degree(), Some(4));
        assert_eq!(hist.node_count, 5);
        let dist = hist.distribution();
        assert_eq!(dist, vec![(1, 0.8), (4, 0.2)]);
        assert!((hist.fraction(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn histogram_of_empty_graph() {
        let hist = degree_histogram(&Graph::new());
        assert!(hist.counts.is_empty());
        assert!(hist.distribution().is_empty());
        assert_eq!(hist.max_degree(), None);
        assert_eq!(hist.fraction(0), 0.0);
    }

    #[test]
    fn path_statistics_of_cycle() {
        // A cycle of 6 nodes: distances from any node are 1,2,3,2,1 -> mean 1.8, diameter 3.
        let g = cycle_graph(6);
        let stats = path_statistics_exact(&g);
        assert!((stats.average_shortest_path - 1.8).abs() < 1e-12);
        assert_eq!(stats.diameter, 3);
        assert_eq!(stats.sources_sampled, 6);
        assert_eq!(stats.pairs_counted, 30);
    }

    #[test]
    fn sampled_path_statistics_match_exact_on_small_graph() {
        let g = cycle_graph(8);
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = path_statistics_sampled(&g, 8, &mut rng);
        let exact = path_statistics_exact(&g);
        assert!((sampled.average_shortest_path - exact.average_shortest_path).abs() < 1e-12);
        assert_eq!(sampled.diameter, exact.diameter);
    }

    #[test]
    fn sampled_path_statistics_clamp_sample_count() {
        let g = cycle_graph(5);
        let mut rng = StdRng::seed_from_u64(3);
        let stats = path_statistics_sampled(&g, 100, &mut rng);
        assert_eq!(stats.sources_sampled, 5);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let mut triangle = Graph::with_nodes(3);
        triangle.add_edge(n(0), n(1)).unwrap();
        triangle.add_edge(n(1), n(2)).unwrap();
        triangle.add_edge(n(2), n(0)).unwrap();
        assert!((average_clustering_coefficient(&triangle) - 1.0).abs() < 1e-12);
        assert_eq!(average_clustering_coefficient(&star_graph(5)), 0.0);
        assert_eq!(average_clustering_coefficient(&Graph::new()), 0.0);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        let r = degree_assortativity(&star_graph(6)).expect("star has varying degrees");
        assert!(r < 0.0, "hub-and-spoke graphs are disassortative, got {r}");
    }

    #[test]
    fn assortativity_of_regular_graph_is_undefined() {
        assert_eq!(degree_assortativity(&cycle_graph(5)), None);
        assert_eq!(degree_assortativity(&Graph::with_nodes(3)), None);
    }

    #[test]
    fn reachable_within_counts_exclude_source() {
        let g = cycle_graph(8);
        assert_eq!(reachable_within(&g, n(0), 1), 2);
        assert_eq!(reachable_within(&g, n(0), 2), 4);
        assert_eq!(reachable_within(&g, n(0), 10), 7);
        assert_eq!(reachable_within(&g, n(0), 0), 0);
    }
}
