//! Degree-preserving randomization (double-edge swaps) and degree-sequence graphicality.
//!
//! Whenever a structural observation is made about a generated overlay — "HAPA without a
//! cutoff has a rich club", "PA is disassortative" — the standard control is to compare
//! against a *null model*: a graph with exactly the same degree sequence but otherwise
//! random wiring. [`randomize_preserving_degrees`] produces that null model in place by
//! repeatedly applying double-edge swaps (`(a,b), (c,d) → (a,d), (c,b)`), which keep every
//! node's degree fixed while destroying all higher-order correlations. The
//! [`is_graphical`] check (Erdős-Gallai) answers the complementary question for the
//! configuration model: can a prescribed degree sequence be realized by a simple graph at
//! all?

use crate::{Graph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Report of a degree-preserving randomization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewireReport {
    /// Number of swaps that were attempted.
    pub attempted_swaps: usize,
    /// Number of swaps that were applied (the rest would have created self-loops or
    /// parallel edges and were skipped).
    pub applied_swaps: usize,
}

impl RewireReport {
    /// Fraction of attempted swaps that could be applied.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempted_swaps == 0 {
            0.0
        } else {
            self.applied_swaps as f64 / self.attempted_swaps as f64
        }
    }
}

/// Randomizes `graph` in place by `attempts` double-edge swaps, preserving every node's
/// degree exactly. Returns how many swaps were applied.
///
/// A common choice for `attempts` is 10-20 times the edge count, after which the edge set
/// is statistically indistinguishable from a uniform sample of simple graphs with the same
/// degree sequence.
///
/// # Example
///
/// ```
/// use sfo_graph::{generators::star_graph, rewire};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = star_graph(10)?;
/// let before = g.degrees();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// rewire::randomize_preserving_degrees(&mut g, 100, &mut rng);
/// assert_eq!(g.degrees(), before); // degrees never change
/// # Ok(())
/// # }
/// ```
pub fn randomize_preserving_degrees<R: Rng + ?Sized>(
    graph: &mut Graph,
    attempts: usize,
    rng: &mut R,
) -> RewireReport {
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let mut report = RewireReport {
        attempted_swaps: 0,
        applied_swaps: 0,
    };
    if edges.len() < 2 {
        return report;
    }
    for _ in 0..attempts {
        report.attempted_swaps += 1;
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Orient the second edge randomly so both rewirings (a-d, c-b) and (a-c, b-d) are
        // reachable.
        let (c, d) = if rng.gen::<bool>() { (c, d) } else { (d, c) };
        // The swap replaces a-b, c-d with a-d, c-b.
        if a == d || c == b || a == c || b == d {
            continue;
        }
        if graph.contains_edge(a, d) || graph.contains_edge(c, b) {
            continue;
        }
        graph.remove_edge(a, b).expect("edge list tracks the graph");
        graph.remove_edge(c, d).expect("edge list tracks the graph");
        graph.add_edge(a, d).expect("absence checked above");
        graph.add_edge(c, b).expect("absence checked above");
        edges[i] = (a, d);
        edges[j] = (c, b);
        report.applied_swaps += 1;
    }
    report
}

/// Erdős-Gallai test: returns `true` if the degree sequence can be realized by a simple
/// undirected graph.
///
/// The sequence does not need to be sorted; an empty sequence is graphical (the empty
/// graph).
pub fn is_graphical(degrees: &[usize]) -> bool {
    if degrees.is_empty() {
        return true;
    }
    let n = degrees.len();
    if degrees.iter().any(|&d| d >= n) {
        return false;
    }
    let sum: usize = degrees.iter().sum();
    if !sum.is_multiple_of(2) {
        return false;
    }
    let mut sorted: Vec<usize> = degrees.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Prefix sums of the sorted sequence for the Erdős-Gallai inequalities.
    let mut prefix = vec![0usize; n + 1];
    for (i, &d) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + d;
    }
    for k in 1..=n {
        let lhs = prefix[k];
        let mut rhs = k * (k - 1);
        for &d in &sorted[k..] {
            rhs += d.min(k);
        }
        if lhs > rhs {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlations::rich_club_coefficients;
    use crate::generators::{complete_graph, ring_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn randomization_preserves_degrees_and_consistency() {
        let mut g = ring_graph(60, 3).unwrap();
        let before = g.degrees();
        let report = randomize_preserving_degrees(&mut g, 2_000, &mut rng(1));
        assert_eq!(g.degrees(), before);
        assert!(report.applied_swaps > 0);
        assert!(report.applied_swaps <= report.attempted_swaps);
        assert!(report.acceptance_rate() > 0.0 && report.acceptance_rate() <= 1.0);
        g.assert_consistent();
    }

    #[test]
    fn randomization_actually_changes_the_wiring() {
        let mut g = ring_graph(80, 2).unwrap();
        let original: Vec<_> = g.edges().collect();
        randomize_preserving_degrees(&mut g, 3_000, &mut rng(2));
        let rewired: Vec<_> = g.edges().collect();
        assert_eq!(original.len(), rewired.len());
        let preserved = rewired.iter().filter(|e| original.contains(e)).count();
        assert!(
            preserved < original.len(),
            "after thousands of swaps at least one edge must have moved"
        );
    }

    #[test]
    fn complete_graphs_admit_no_swaps() {
        let mut g = complete_graph(6).unwrap();
        let report = randomize_preserving_degrees(&mut g, 500, &mut rng(3));
        assert_eq!(
            report.applied_swaps, 0,
            "every candidate swap creates a parallel edge"
        );
        assert_eq!(g, complete_graph(6).unwrap());
    }

    #[test]
    fn tiny_graphs_are_returned_untouched() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let report = randomize_preserving_degrees(&mut g, 100, &mut rng(4));
        assert_eq!(report.attempted_swaps, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn null_model_dissolves_engineered_structure() {
        // Build a graph with an engineered "rich club": a clique of 5 hubs, each also
        // holding pendant leaves. After randomization the same degree sequence should show
        // a weaker club at the same threshold.
        let mut g = complete_graph(5).unwrap();
        for hub in 0..5usize {
            for _ in 0..6 {
                let leaf = g.add_node();
                g.add_edge(NodeId::new(hub), leaf).unwrap();
            }
        }
        let threshold = 5usize;
        let before = rich_club_coefficients(&g)
            .into_iter()
            .find(|p| p.degree == threshold)
            .map(|p| p.coefficient)
            .unwrap_or(0.0);
        randomize_preserving_degrees(&mut g, 5_000, &mut rng(5));
        let after = rich_club_coefficients(&g)
            .into_iter()
            .find(|p| p.degree == threshold)
            .map(|p| p.coefficient)
            .unwrap_or(0.0);
        assert!(
            after <= before,
            "randomization should not strengthen the rich club ({after} vs {before})"
        );
        g.assert_consistent();
    }

    #[test]
    fn erdos_gallai_accepts_realizable_sequences() {
        assert!(is_graphical(&[]));
        assert!(is_graphical(&[0, 0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[2, 2, 2]));
        assert!(is_graphical(&[3, 3, 3, 3]));
        assert!(is_graphical(&[4, 1, 1, 1, 1]));
        // Degree sequence of the ring with k = 2.
        assert!(is_graphical(&[4; 10]));
    }

    #[test]
    fn erdos_gallai_rejects_impossible_sequences() {
        assert!(!is_graphical(&[1]), "odd degree sum");
        assert!(!is_graphical(&[3, 1]), "degree exceeds n - 1");
        assert!(!is_graphical(&[2, 2, 1]), "odd degree sum");
        assert!(
            !is_graphical(&[4, 4, 4, 1, 1]),
            "fails the Erdős-Gallai inequality at k = 3"
        );
    }

    #[test]
    fn generated_graph_degree_sequences_are_graphical() {
        let g = ring_graph(30, 2).unwrap();
        assert!(is_graphical(&g.degrees()));
        let k = complete_graph(7).unwrap();
        assert!(is_graphical(&k.degrees()));
    }
}
