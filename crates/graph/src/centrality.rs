//! Node centrality measures: degree, closeness, betweenness, and eccentricity.
//!
//! Scale-free overlays concentrate both links *and* traffic on their hubs — that is the
//! load-imbalance problem that motivates hard cutoffs in the first place (paper, §I and
//! §III). Centrality measures make that concentration quantitative:
//!
//! * **degree centrality** — the fraction of peers a node is directly linked to; hubs by
//!   definition dominate it.
//! * **closeness centrality** — how few hops a node needs to reach everyone else; high for
//!   hubs, it collapses for peers left on the fringe by restrictive cutoffs.
//! * **betweenness centrality** — the fraction of shortest paths passing through a node, a
//!   direct proxy for the forwarding load a peer carries in flooding and random-walk
//!   searches. Removing the top-betweenness peers is what "attacks targeted to hubs" means
//!   in the robustness discussion.
//! * **eccentricity** — a node's distance to its farthest reachable peer; its maximum is
//!   the diameter of Table I.
//!
//! Betweenness uses Brandes' algorithm (`O(N·E)` for unweighted graphs); both betweenness
//! and closeness have sampled estimators for large topologies.

use crate::traversal::bfs_distances;
use crate::{GraphView, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-node centrality scores, indexed by node id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralityScores {
    /// Score of every node, indexed by node id.
    pub scores: Vec<f64>,
}

impl CentralityScores {
    /// Returns the score of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn score(&self, node: NodeId) -> f64 {
        self.scores[node.index()]
    }

    /// Returns the node with the highest score, or `None` for an empty graph.
    pub fn most_central(&self) -> Option<NodeId> {
        self.scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("centrality scores are finite"))
            .map(|(i, _)| NodeId::new(i))
    }

    /// Returns the node ids sorted by descending score.
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("centrality scores are finite")
        });
        order.into_iter().map(NodeId::new).collect()
    }

    /// Returns the mean score (0 for an empty graph).
    pub fn mean(&self) -> f64 {
        if self.scores.is_empty() {
            0.0
        } else {
            self.scores.iter().sum::<f64>() / self.scores.len() as f64
        }
    }

    /// Returns the maximum score (0 for an empty graph).
    pub fn max(&self) -> f64 {
        self.scores.iter().copied().fold(0.0, f64::max)
    }
}

/// Computes degree centrality: `degree / (N - 1)` for every node.
pub fn degree_centrality<G: GraphView + ?Sized>(graph: &G) -> CentralityScores {
    let n = graph.node_count();
    let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
    let scores = graph
        .degrees()
        .into_iter()
        .map(|d| d as f64 / denom)
        .collect();
    CentralityScores { scores }
}

/// Computes closeness centrality for every node by running a BFS from each of them.
///
/// The harmonic variant is used — `C(v) = Σ_{u ≠ v} 1 / d(v, u)`, normalized by `N - 1` —
/// because it remains well-defined on disconnected graphs (unreachable peers simply
/// contribute zero), which matters for CM topologies with `m = 1`.
pub fn closeness_centrality<G: GraphView + ?Sized>(graph: &G) -> CentralityScores {
    let sources: Vec<NodeId> = graph.nodes().collect();
    closeness_from_sources(graph, &sources)
}

/// Estimates closeness centrality from `samples` random BFS sources.
///
/// Each sampled BFS contributes `1 / d(source, v)` to every other node's score; the result
/// is scaled so that it estimates the same quantity as [`closeness_centrality`].
pub fn closeness_centrality_sampled<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    samples: usize,
    rng: &mut R,
) -> CentralityScores {
    let mut sources: Vec<NodeId> = graph.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(samples.max(1).min(graph.node_count()));
    let mut result = closeness_from_sources(graph, &sources);
    // Scale the partial sums up to the full-sweep estimate: a full sweep uses N - 1 other
    // sources per node, the sampled sweep used |sources| of them.
    if !sources.is_empty() && graph.node_count() > 1 {
        let scale = (graph.node_count() - 1) as f64 / sources.len() as f64;
        for score in &mut result.scores {
            *score *= scale;
        }
    }
    result
}

fn closeness_from_sources<G: GraphView + ?Sized>(
    graph: &G,
    sources: &[NodeId],
) -> CentralityScores {
    let n = graph.node_count();
    let mut scores = vec![0.0f64; n];
    if n <= 1 {
        return CentralityScores { scores };
    }
    for &source in sources {
        let distances = bfs_distances(graph, source);
        for v in graph.nodes() {
            if v == source {
                continue;
            }
            if let Some(d) = distances[v.index()] {
                if d > 0 {
                    scores[v.index()] += 1.0 / d as f64;
                }
            }
        }
    }
    let denom = (n - 1) as f64;
    for score in &mut scores {
        *score /= denom;
    }
    CentralityScores { scores }
}

/// Computes exact betweenness centrality with Brandes' algorithm.
///
/// Scores are normalized by `(N - 1)(N - 2) / 2`, so a node through which every shortest
/// path passes scores 1. Cost is `O(N·E)`; use [`betweenness_centrality_sampled`] beyond a
/// few thousand nodes.
pub fn betweenness_centrality<G: GraphView + ?Sized>(graph: &G) -> CentralityScores {
    let sources: Vec<NodeId> = graph.nodes().collect();
    let mut scores = betweenness_from_sources(graph, &sources);
    normalize_betweenness(&mut scores, graph.node_count(), sources.len());
    CentralityScores { scores }
}

/// Estimates betweenness centrality by accumulating Brandes' dependencies from `samples`
/// random source nodes, scaled to estimate the exact normalized score.
pub fn betweenness_centrality_sampled<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    samples: usize,
    rng: &mut R,
) -> CentralityScores {
    let mut sources: Vec<NodeId> = graph.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(samples.max(1).min(graph.node_count()));
    let mut scores = betweenness_from_sources(graph, &sources);
    normalize_betweenness(&mut scores, graph.node_count(), sources.len());
    CentralityScores { scores }
}

fn normalize_betweenness(scores: &mut [f64], node_count: usize, sources_used: usize) {
    if node_count < 3 || sources_used == 0 {
        return;
    }
    // Undirected graphs double-count each pair; scale partial sweeps up to a full sweep.
    let pair_normalization = (node_count - 1) as f64 * (node_count - 2) as f64;
    let sweep_scale = node_count as f64 / sources_used as f64;
    for score in scores.iter_mut() {
        *score *= sweep_scale / pair_normalization;
    }
}

fn betweenness_from_sources<G: GraphView + ?Sized>(graph: &G, sources: &[NodeId]) -> Vec<f64> {
    let n = graph.node_count();
    let mut centrality = vec![0.0f64; n];
    // Reusable per-sweep buffers.
    let mut sigma = vec![0.0f64; n];
    let mut distance = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut predecessors: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    for &source in sources {
        for v in 0..n {
            sigma[v] = 0.0;
            distance[v] = -1;
            delta[v] = 0.0;
            predecessors[v].clear();
        }
        sigma[source.index()] = 1.0;
        distance[source.index()] = 0;

        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let dv = distance[v.index()];
            for &w in graph.neighbors(v) {
                if distance[w.index()] < 0 {
                    distance[w.index()] = dv + 1;
                    queue.push_back(w);
                }
                if distance[w.index()] == dv + 1 {
                    sigma[w.index()] += sigma[v.index()];
                    predecessors[w.index()].push(v);
                }
            }
        }

        for &w in order.iter().rev() {
            for &v in &predecessors[w.index()] {
                delta[v.index()] += sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
            }
            if w != source {
                centrality[w.index()] += delta[w.index()];
            }
        }
    }
    centrality
}

/// Returns the eccentricity of every node (its hop distance to the farthest reachable
/// node), plus the graph's diameter and radius over the reachable pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccentricityReport {
    /// Eccentricity of every node, indexed by node id (0 for isolated nodes).
    pub eccentricities: Vec<u32>,
    /// Maximum eccentricity (the diameter of the reachable portion).
    pub diameter: u32,
    /// Minimum eccentricity over nodes with at least one neighbor (the radius), or 0.
    pub radius: u32,
}

/// Computes the eccentricity of every node by running a BFS from each of them.
pub fn eccentricities<G: GraphView + ?Sized>(graph: &G) -> EccentricityReport {
    let n = graph.node_count();
    let mut ecc = vec![0u32; n];
    for v in graph.nodes() {
        let distances = bfs_distances(graph, v);
        ecc[v.index()] = distances.iter().filter_map(|d| *d).max().unwrap_or(0);
    }
    let diameter = ecc.iter().copied().max().unwrap_or(0);
    let radius = graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .map(|v| ecc[v.index()])
        .min()
        .unwrap_or(0);
    EccentricityReport {
        eccentricities: ecc,
        diameter,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, ring_graph};
    use crate::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Path graph 0 - 1 - 2 - 3 - 4.
    fn path5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(n(i), n(i + 1)).unwrap();
        }
        g
    }

    /// Star with center 0 and 4 leaves.
    fn star5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(n(0), n(i)).unwrap();
        }
        g
    }

    #[test]
    fn degree_centrality_of_star() {
        let scores = degree_centrality(&star5());
        assert!((scores.score(n(0)) - 1.0).abs() < 1e-12);
        assert!((scores.score(n(1)) - 0.25).abs() < 1e-12);
        assert_eq!(scores.most_central(), Some(n(0)));
        assert_eq!(scores.ranking()[0], n(0));
    }

    #[test]
    fn closeness_prefers_the_center_of_a_path() {
        let scores = closeness_centrality(&path5());
        assert_eq!(scores.most_central(), Some(n(2)));
        assert!(scores.score(n(2)) > scores.score(n(0)));
        // Symmetric ends have equal scores.
        assert!((scores.score(n(0)) - scores.score(n(4))).abs() < 1e-12);
    }

    #[test]
    fn harmonic_closeness_handles_disconnected_graphs() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        let scores = closeness_centrality(&g);
        // Each node reaches exactly one other node at distance 1 out of N - 1 = 3.
        for v in g.nodes() {
            assert!((scores.score(v) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_of_a_path_peaks_in_the_middle() {
        let scores = betweenness_centrality(&path5());
        assert_eq!(scores.most_central(), Some(n(2)));
        // Ends lie on no shortest path between other nodes.
        assert!(scores.score(n(0)).abs() < 1e-12);
        assert!(scores.score(n(4)).abs() < 1e-12);
        // Middle node lies on all paths between {0,1} and {3,4}: 4 of the 6 pairs.
        assert!((scores.score(n(2)) - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_of_a_star_center_is_one() {
        let scores = betweenness_centrality(&star5());
        assert!((scores.score(n(0)) - 1.0).abs() < 1e-9);
        for i in 1..5 {
            assert!(scores.score(n(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_of_a_complete_graph_is_zero() {
        let scores = betweenness_centrality(&complete_graph(6).unwrap());
        assert!(scores.scores.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn ring_nodes_are_interchangeable() {
        let g = ring_graph(8, 1).unwrap();
        let closeness = closeness_centrality(&g);
        let betweenness = betweenness_centrality(&g);
        for v in g.nodes() {
            assert!((closeness.score(v) - closeness.score(n(0))).abs() < 1e-9);
            assert!((betweenness.score(v) - betweenness.score(n(0))).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_betweenness_tracks_exact_on_a_star() {
        let g = star5();
        let mut rng = StdRng::seed_from_u64(3);
        let sampled = betweenness_centrality_sampled(&g, 5, &mut rng);
        let exact = betweenness_centrality(&g);
        assert_eq!(sampled.most_central(), exact.most_central());
        assert!((sampled.score(n(0)) - exact.score(n(0))).abs() < 1e-9);
    }

    #[test]
    fn sampled_closeness_identifies_the_hub() {
        let g = star5();
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = closeness_centrality_sampled(&g, 3, &mut rng);
        assert_eq!(sampled.most_central(), Some(n(0)));
    }

    #[test]
    fn eccentricity_of_path_and_star() {
        let path = eccentricities(&path5());
        assert_eq!(path.diameter, 4);
        assert_eq!(path.radius, 2);
        assert_eq!(path.eccentricities[0], 4);
        assert_eq!(path.eccentricities[2], 2);

        let star = eccentricities(&star5());
        assert_eq!(star.diameter, 2);
        assert_eq!(star.radius, 1);
        assert_eq!(star.eccentricities[0], 1);
    }

    #[test]
    fn scores_helpers_on_empty_graph() {
        let scores = degree_centrality(&Graph::new());
        assert_eq!(scores.most_central(), None);
        assert_eq!(scores.mean(), 0.0);
        assert_eq!(scores.max(), 0.0);
        assert!(scores.ranking().is_empty());
    }

    #[test]
    fn mean_and_max_are_consistent() {
        let scores = degree_centrality(&star5());
        assert!(scores.max() >= scores.mean());
        assert!((scores.max() - 1.0).abs() < 1e-12);
    }
}
