//! # sfo-graph
//!
//! Undirected graph substrate used by the scale-free overlay topology generators,
//! search algorithms, and the unstructured peer-to-peer simulator in the `sfoverlay`
//! workspace.
//!
//! The crate provides two graph backends behind one read interface:
//!
//! * [`Graph`]: a simple undirected graph (no self-loops, no parallel edges) stored as
//!   mutable adjacency lists — the representation every overlay topology is *built and
//!   rewired* on (generators, churn, repair).
//! * [`CsrGraph`]: an immutable compressed-sparse-row snapshot produced by
//!   [`Graph::freeze`] in O(V + E) — the representation read-heavy phases *query*:
//!   flat `offsets`/`targets` arrays make searches and metric sweeps cache-linear.
//!   [`CsrGraph::thaw`] converts back, round-tripping exactly.
//! * [`GraphView`]: the shared read trait (counts, degrees, neighbor slices) both
//!   backends implement. Everything downstream that only reads — the search algorithms
//!   in `sfo-search`, [`traversal`], [`metrics`], [`centrality`], [`correlations`] — is
//!   generic over it, and both backends report neighbors in the same order, so a fixed
//!   seed produces identical results on either one.
//! * [`MultiGraph`]: an undirected multigraph permitting self-loops and parallel edges,
//!   needed by the configuration model which wires stubs at random and only afterwards
//!   deletes self-loops and duplicate links (paper, Alg. 2).
//! * [`traversal`]: breadth-first search, connected components, and giant-component
//!   extraction.
//! * [`metrics`]: degree distributions, shortest-path statistics, diameter estimation,
//!   clustering and assortativity — everything the paper's figures are computed from.
//! * [`generators`]: substrate-network generators — the geometric random network (GRN)
//!   and the two-dimensional mesh used as the DAPA substrate, plus classic random graphs
//!   used in tests and baselines.
//! * [`centrality`], [`kcore`], [`correlations`]: load and embeddedness measures (degree /
//!   closeness / betweenness centrality, core numbers, `k_nn(k)`, rich-club coefficients)
//!   used to quantify how hard cutoffs redistribute hub load.
//! * [`io`]: plain-text edge-list serialization for replaying topologies across tools.
//! * [`snapshot`]: the binary `SFOS` snapshot codec — versioned, checksummed CSR
//!   topology files ([`CsrGraph::save`]/[`CsrGraph::load`]) with optional shard
//!   manifests and provenance, the persistence and wire format of the workspace
//!   (byte layout in `docs/FORMATS.md`).
//! * [`percolation`]: the Molloy-Reed giant-component criterion and random-removal
//!   thresholds behind the paper's connectivity and robustness observations.
//! * [`rewire`]: degree-preserving double-edge-swap randomization (null models) and the
//!   Erdős-Gallai graphicality test for prescribed degree sequences.
//!
//! # Example
//!
//! ```
//! use sfo_graph::{Graph, NodeId};
//!
//! # fn main() -> Result<(), sfo_graph::GraphError> {
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(NodeId::new(0), NodeId::new(1))?;
//! g.add_edge(NodeId::new(1), NodeId::new(2))?;
//! g.add_edge(NodeId::new(2), NodeId::new(3))?;
//! assert_eq!(g.degree(NodeId::new(1)), 2);
//! assert!(sfo_graph::traversal::is_connected(&g));
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `mmap` module below is the one place in the
// workspace allowed to use `unsafe` (the mmap syscall shim and the alignment-checked
// byte-slice reinterpretation behind zero-copy snapshot loads). Everything else in this
// crate — and every crate above it — still refuses unsafe code outright.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
mod graph;
#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
mod mmap;
mod multigraph;
mod node;
mod slice;
mod view;

pub mod centrality;
pub mod correlations;
pub mod generators;
pub mod io;
pub mod kcore;
pub mod metrics;
pub mod percolation;
pub mod resilience;
pub mod rewire;
pub mod snapshot;
pub mod traversal;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::{EdgeIter, Graph, NeighborIter};
pub use multigraph::{MultiGraph, SimplifyReport};
pub use node::NodeId;
pub use slice::{CsrSlice, ShardView};
pub use view::{GraphView, NodeIds, ViewEdges};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;
