//! Plain-text edge-list serialization.
//!
//! Experiment outputs in this workspace are CSV time-series, but the topologies themselves
//! are often worth keeping too — for plotting with external tools, for replaying the exact
//! same overlay across search algorithms, or for importing traces of real Gnutella
//! snapshots. The format is the simplest one every graph tool understands: one `a b` pair
//! of node indices per line, `#`-prefixed comment lines ignored, node count implied by the
//! largest index (isolated trailing nodes can be preserved with an explicit
//! `# nodes: <N>` header, which [`write_edge_list`] always emits).

use crate::{Graph, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeListError {
    /// A line did not contain exactly two whitespace-separated fields.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A field could not be parsed as a node index.
    InvalidIndex {
        /// 1-based line number.
        line: usize,
    },
    /// The edge list contained a self-loop, which simple graphs reject.
    SelfLoop {
        /// 1-based line number.
        line: usize,
    },
    /// The edge list contained the same edge twice.
    DuplicateEdge {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::MalformedLine { line } => {
                write!(
                    f,
                    "line {line}: expected two whitespace-separated node indices"
                )
            }
            EdgeListError::InvalidIndex { line } => {
                write!(
                    f,
                    "line {line}: node index is not a valid non-negative integer"
                )
            }
            EdgeListError::SelfLoop { line } => {
                write!(
                    f,
                    "line {line}: self-loops are not allowed in a simple graph"
                )
            }
            EdgeListError::DuplicateEdge { line } => {
                write!(f, "line {line}: duplicate edge")
            }
        }
    }
}

impl Error for EdgeListError {}

/// Serializes `graph` as a plain-text edge list.
///
/// The output starts with a `# nodes: <N>` header (so isolated nodes survive a round
/// trip), followed by one `a b` line per edge with `a < b`.
///
/// # Example
///
/// ```
/// use sfo_graph::{io, Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(2))?;
/// let text = io::write_edge_list(&g);
/// let parsed = io::parse_edge_list(&text)?;
/// assert_eq!(parsed, g);
/// # Ok(())
/// # }
/// ```
pub fn write_edge_list(graph: &Graph) -> String {
    let mut out = String::with_capacity(16 + 12 * graph.edge_count());
    out.push_str(&format!("# nodes: {}\n", graph.node_count()));
    for (a, b) in graph.edges() {
        out.push_str(&format!("{} {}\n", a.index(), b.index()));
    }
    out
}

/// Parses a plain-text edge list produced by [`write_edge_list`] (or by any external tool
/// using the same `a b` per-line convention).
///
/// Lines starting with `#` are treated as comments; a `# nodes: <N>` comment sets the
/// minimum node count. Node indices may appear in any order; the graph grows to cover the
/// largest index seen.
///
/// # Errors
///
/// Returns an [`EdgeListError`] identifying the offending line if the input is malformed,
/// contains a self-loop, or repeats an edge.
pub fn parse_edge_list(text: &str) -> Result<Graph, EdgeListError> {
    let mut graph = Graph::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(count) = comment.trim().strip_prefix("nodes:") {
                if let Ok(n) = count.trim().parse::<usize>() {
                    if n > graph.node_count() {
                        graph.add_nodes(n - graph.node_count());
                    }
                }
            }
            continue;
        }
        let mut fields = line.split_whitespace();
        let (a, b) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => return Err(EdgeListError::MalformedLine { line: line_no }),
        };
        let a: usize = a
            .parse()
            .map_err(|_| EdgeListError::InvalidIndex { line: line_no })?;
        let b: usize = b
            .parse()
            .map_err(|_| EdgeListError::InvalidIndex { line: line_no })?;
        if a == b {
            return Err(EdgeListError::SelfLoop { line: line_no });
        }
        let needed = a.max(b) + 1;
        if needed > graph.node_count() {
            graph.add_nodes(needed - graph.node_count());
        }
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        match graph.add_edge_if_absent(a, b) {
            Ok(true) => {}
            Ok(false) => return Err(EdgeListError::DuplicateEdge { line: line_no }),
            Err(_) => unreachable!("nodes were grown to cover both endpoints"),
        }
    }
    Ok(graph)
}

/// Serializes the degree sequence of `graph` as one degree per line, in node-id order.
///
/// This is the input format expected by external degree-distribution fitting scripts.
pub fn write_degree_sequence(graph: &Graph) -> String {
    let mut out = String::with_capacity(4 * graph.node_count());
    for d in graph.degrees() {
        out.push_str(&format!("{d}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, ring_graph};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn round_trip_preserves_the_edge_set() {
        let g = ring_graph(12, 2).unwrap();
        let text = write_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed.node_count(), g.node_count());
        assert_eq!(parsed.edge_count(), g.edge_count());
        let mut original: Vec<_> = g.edges().collect();
        let mut reparsed: Vec<_> = parsed.edges().collect();
        original.sort_unstable();
        reparsed.sort_unstable();
        assert_eq!(original, reparsed);
        parsed.assert_consistent();
    }

    #[test]
    fn round_trip_preserves_isolated_trailing_nodes() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(n(0), n(1)).unwrap();
        // Nodes 2..4 are isolated; without the header they would be lost.
        let text = write_edge_list(&g);
        let parsed = parse_edge_list(&text).unwrap();
        assert_eq!(parsed.node_count(), 5);
        assert_eq!(parsed, g);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let parsed = parse_edge_list(&write_edge_list(&g)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parses_whitespace_variants() {
        let text = "0\t1\n  2   3  \n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(n(2), n(3)));
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        assert_eq!(
            parse_edge_list("0 1\n0 1 2\n"),
            Err(EdgeListError::MalformedLine { line: 2 })
        );
        assert_eq!(
            parse_edge_list("0\n"),
            Err(EdgeListError::MalformedLine { line: 1 })
        );
        assert_eq!(
            parse_edge_list("0 x\n"),
            Err(EdgeListError::InvalidIndex { line: 1 })
        );
        assert_eq!(
            parse_edge_list("0 1\n3 3\n"),
            Err(EdgeListError::SelfLoop { line: 2 })
        );
        assert_eq!(
            parse_edge_list("0 1\n1 0\n"),
            Err(EdgeListError::DuplicateEdge { line: 2 })
        );
    }

    #[test]
    fn error_messages_name_the_line() {
        assert!(EdgeListError::MalformedLine { line: 7 }
            .to_string()
            .contains("line 7"));
        assert!(EdgeListError::InvalidIndex { line: 3 }
            .to_string()
            .contains("line 3"));
        assert!(EdgeListError::SelfLoop { line: 9 }
            .to_string()
            .contains("line 9"));
        assert!(EdgeListError::DuplicateEdge { line: 2 }
            .to_string()
            .contains("line 2"));
    }

    #[test]
    fn degree_sequence_output_matches_degrees() {
        let g = complete_graph(4).unwrap();
        let text = write_degree_sequence(&g);
        let parsed: Vec<usize> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(parsed, g.degrees());
    }

    #[test]
    fn nodes_header_never_shrinks_the_graph() {
        let text = "0 5\n# nodes: 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 6);
    }
}
