//! Frozen compressed-sparse-row (CSR) graph snapshots.
//!
//! The read-heavy phases of this workspace — flooding and random-walk searches over
//! 10^4–10^5-node hard-cutoff topologies, structural metrics, the figure harness — never
//! mutate the graph they traverse. [`CsrGraph`] is the build-once/query-many counterpart
//! to the mutable [`Graph`]: all adjacency lists are packed back to back into one flat
//! `targets` array, with a per-node `offsets` index. Neighbor lookup is two array reads
//! and traversals walk memory linearly instead of chasing one heap allocation per node.
//!
//! [`Graph::freeze`] builds a snapshot in O(V + E) preserving the per-node neighbor
//! order, so any algorithm generic over [`GraphView`] consumes identical RNG streams and
//! returns identical results on either backend. [`CsrGraph::thaw`] converts back for
//! phases that need mutation again (churn, rewiring).

use crate::{Graph, GraphView, NodeId};
use serde::{Deserialize, Serialize};

/// An immutable undirected simple graph in compressed-sparse-row form.
///
/// Node ids are the same dense indices as in [`Graph`]; the neighbor order of every node
/// is exactly the order the source graph reported at freeze time.
///
/// # Example
///
/// ```
/// use sfo_graph::{Graph, GraphView, NodeId};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2))?;
/// let frozen = g.freeze();
/// assert_eq!(frozen.node_count(), 3);
/// assert_eq!(frozen.neighbors(NodeId::new(1)), g.neighbors(NodeId::new(1)));
/// assert_eq!(frozen.thaw(), g);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    storage: CsrStorage,
}

/// Where a snapshot's `offsets`/`targets` arrays live.
///
/// Every traversal goes through the [`CsrGraph::offsets`]/[`CsrGraph::targets`]
/// accessors, so the two variants are indistinguishable to callers — same values, same
/// neighbor order, same RNG streams. `Owned` is the universal case; `Mapped` borrows the
/// arrays out of a checksum-verified `SFOS` file mapping (see [`crate::mmap`]) and only
/// exists on targets where that reinterpretation is sound.
#[derive(Clone, Serialize, Deserialize)]
enum CsrStorage {
    Owned {
        /// `offsets[v] .. offsets[v + 1]` indexes the neighbor block of node `v` in
        /// `targets`; length is `node_count + 1`. `u32` halves the index footprint: the
        /// workspace bounds graphs by `u32::MAX` nodes and directed-edge entries.
        offsets: Vec<u32>,
        /// All adjacency lists, concatenated in node order; length is `2 * edge_count`.
        targets: Vec<NodeId>,
    },
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    Mapped(crate::mmap::MappedCsr),
}

impl CsrGraph {
    /// The `offsets` array, wherever it lives. All reads in this impl go through here.
    #[inline]
    fn offsets(&self) -> &[u32] {
        match &self.storage {
            CsrStorage::Owned { offsets, .. } => offsets,
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            CsrStorage::Mapped(mapped) => mapped.offsets(),
        }
    }

    /// The `targets` array, wherever it lives.
    #[inline]
    fn targets(&self) -> &[NodeId] {
        match &self.storage {
            CsrStorage::Owned { targets, .. } => targets,
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            CsrStorage::Mapped(mapped) => mapped.targets(),
        }
    }

    /// Builds a CSR snapshot of `graph` in O(V + E), preserving neighbor order.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` directed adjacency entries (twice
    /// the edge count), which cannot happen for the `u32`-indexed graphs this workspace
    /// builds.
    pub fn from_graph(graph: &Graph) -> Self {
        Self::from_neighbor_lists(graph.node_count(), |node| {
            graph.neighbors(NodeId::new(node)).iter().copied()
        })
    }

    /// Builds a snapshot directly from per-node neighbor lists in O(V + E), without an
    /// intermediate [`Graph`]. `neighbors_of(v)` is called once per node, in node order,
    /// and its iteration order becomes the frozen neighbor order of `v`.
    ///
    /// The lists must describe a valid simple undirected graph: mirrored entries, no
    /// self-loops, no duplicates, all targets below `node_count`. This is checked with a
    /// full consistency pass in debug builds only; callers (like the overlay snapshot,
    /// whose adjacency is mirrored by construction) are trusted in release builds.
    ///
    /// # Panics
    ///
    /// Panics if the lists hold more than `u32::MAX` directed adjacency entries.
    pub fn from_neighbor_lists<I, F>(node_count: usize, mut neighbors_of: F) -> Self
    where
        F: FnMut(usize) -> I,
        I: IntoIterator<Item = NodeId>,
    {
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for node in 0..node_count {
            targets.extend(neighbors_of(node));
            let end = u32::try_from(targets.len())
                .expect("directed adjacency entries exceed the u32 CSR index");
            offsets.push(end);
        }
        let csr = CsrGraph {
            storage: CsrStorage::Owned { offsets, targets },
        };
        debug_assert!({
            csr.thaw().assert_consistent();
            true
        });
        csr
    }

    /// Decomposes the snapshot into its raw `(offsets, targets)` arrays, for layers
    /// that build their own storage over the same layout (the sharded store in
    /// `sfo-engine` takes ownership this way). Owned storage moves without copying; a
    /// mapped snapshot copies its borrowed sections into fresh vectors, since the
    /// caller is asking for ownership. The inverse is
    /// [`CsrGraph::from_neighbor_lists`]; the arrays uphold the invariants documented
    /// on the storage fields: `offsets` has `node_count + 1` monotone entries indexing
    /// `targets`, whose blocks are the per-node neighbor lists in frozen order.
    pub fn into_parts(self) -> (Vec<u32>, Vec<NodeId>) {
        match self.storage {
            CsrStorage::Owned { offsets, targets } => (offsets, targets),
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            CsrStorage::Mapped(mapped) => (mapped.offsets().to_vec(), mapped.targets().to_vec()),
        }
    }

    /// Borrows the raw `(offsets, targets)` arrays without consuming the snapshot — the
    /// read-side counterpart of [`CsrGraph::into_parts`], used by the binary snapshot
    /// codec to serialize the arrays verbatim.
    pub fn raw_parts(&self) -> (&[u32], &[NodeId]) {
        (self.offsets(), self.targets())
    }

    /// Assembles a snapshot directly from raw arrays the caller has already proven
    /// consistent. Only the snapshot codec constructs graphs this way, after its full
    /// structural validation pass; everything else goes through
    /// [`CsrGraph::from_neighbor_lists`].
    pub(crate) fn from_raw_parts(offsets: Vec<u32>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        CsrGraph {
            storage: CsrStorage::Owned { offsets, targets },
        }
    }

    /// Assembles a snapshot over sections borrowed from a checksum-verified file
    /// mapping. Only the snapshot codec's mmap loader constructs graphs this way, after
    /// running the same structural validation pass as [`CsrGraph::from_raw_parts`]
    /// callers.
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    pub(crate) fn from_mapped(mapped: crate::mmap::MappedCsr) -> Self {
        debug_assert!(!mapped.offsets().is_empty());
        CsrGraph {
            storage: CsrStorage::Mapped(mapped),
        }
    }

    /// Returns `true` when this snapshot's arrays are borrowed from a file mapping
    /// rather than owned by the heap. Purely observational — the two storages behave
    /// identically — but useful to assert which path a load actually took.
    pub fn is_mapped(&self) -> bool {
        match &self.storage {
            CsrStorage::Owned { .. } => false,
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            CsrStorage::Mapped(_) => true,
        }
    }

    /// Writes the snapshot to `path` in the binary `SFOS` format (no shard manifest, no
    /// provenance — see [`crate::snapshot`] for the sectioned writers).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`](crate::snapshot::SnapshotError::Io) when the file
    /// cannot be written.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        crate::snapshot::write_bytes(path.as_ref(), &crate::snapshot::encode(self, None, None))
    }

    /// Reads a topology from an `SFOS` snapshot file, verifying its checksum and full
    /// structural consistency.
    ///
    /// Any valid snapshot is accepted: a file written by a sharded store or by
    /// `sfo snapshot build` yields the same topology, with the extra sections ignored.
    /// Use [`crate::snapshot::SnapshotFile::load`] to keep them.
    ///
    /// # Errors
    ///
    /// Returns every decoding error of
    /// [`SnapshotFile::load`](crate::snapshot::SnapshotFile::load).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(crate::snapshot::SnapshotFile::load(path)?.csr)
    }

    /// Like [`CsrGraph::load`], but borrows the topology arrays out of a read-only file
    /// mapping instead of copying them into the heap — the checksum and full structural
    /// validation run once against the mapped bytes, after which traversals read the
    /// page cache directly.
    ///
    /// Falls back to [`CsrGraph::load`] (same result, owned storage) on targets without
    /// mmap support, when the mapping cannot be established, or when the file's array
    /// sections are not 4-byte aligned; see `docs/FORMATS.md` for the contract. Decoding
    /// errors — bad magic, checksum mismatch, structural corruption — are never masked
    /// by the fallback.
    ///
    /// # Errors
    ///
    /// Returns every decoding error of
    /// [`SnapshotFile::load_mmap`](crate::snapshot::SnapshotFile::load_mmap).
    pub fn load_mmap(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(crate::snapshot::SnapshotFile::load_mmap(path)?.csr)
    }

    /// Rebuilds a mutable [`Graph`] from this snapshot in O(V + E).
    ///
    /// Neighbor order is preserved, so `graph.freeze().thaw() == graph` for any graph.
    pub fn thaw(&self) -> Graph {
        let adjacency: Vec<Vec<NodeId>> = self
            .nodes()
            .map(|node| self.neighbors(node).to_vec())
            .collect();
        Graph::from_adjacency(adjacency, self.edge_count())
    }

    /// Returns the number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets().len() - 1
    }

    /// Returns the number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets().len() / 2
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Returns `true` if `node` refers to a node present in the graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// Returns the degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        let offsets = self.offsets();
        (offsets[i + 1] - offsets[i]) as usize
    }

    /// Returns the neighbors of `node` as a slice, in frozen order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        let offsets = self.offsets();
        &self.targets()[offsets[i] as usize..offsets[i + 1] as usize]
    }

    /// Returns an iterator over all node ids.
    #[inline]
    pub fn nodes(&self) -> crate::view::NodeIds {
        GraphView::nodes(self)
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    ///
    /// The check scans the adjacency block of the lower-degree endpoint.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        GraphView::contains_edge(self, a, b)
    }
}

impl Default for CsrGraph {
    /// An empty snapshot, equal to `Graph::new().freeze()`.
    fn default() -> Self {
        CsrGraph {
            storage: CsrStorage::Owned {
                offsets: vec![0],
                targets: Vec::new(),
            },
        }
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("mapped", &self.is_mapped())
            .field("offsets", &self.offsets())
            .field("targets", &self.targets())
            .finish()
    }
}

/// Equality is semantic — same topology, same neighbor order — regardless of whether
/// either side owns or borrows its arrays, so a mapped load compares equal to the
/// read-based load of the same file.
impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        self.raw_parts() == other.raw_parts()
    }
}

impl Eq for CsrGraph {}

impl GraphView for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    #[inline]
    fn degree(&self, node: NodeId) -> usize {
        CsrGraph::degree(self, node)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, node)
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

impl From<&CsrGraph> for Graph {
    fn from(csr: &CsrGraph) -> Self {
        csr.thaw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> Graph {
        let mut g = Graph::with_nodes(5);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.add_edge(n(3), n(0)).unwrap();
        g
    }

    #[test]
    fn freeze_preserves_counts_and_order() {
        let g = sample();
        let frozen = g.freeze();
        assert_eq!(frozen.node_count(), g.node_count());
        assert_eq!(frozen.edge_count(), g.edge_count());
        for node in g.nodes() {
            assert_eq!(frozen.neighbors(node), g.neighbors(node), "node {node}");
            assert_eq!(frozen.degree(node), g.degree(node));
        }
    }

    #[test]
    fn thaw_round_trips_exactly() {
        let g = sample();
        assert_eq!(g.freeze().thaw(), g);
        let empty = Graph::new();
        assert_eq!(empty.freeze().thaw(), empty);
        let isolated = Graph::with_nodes(3);
        assert_eq!(isolated.freeze().thaw(), isolated);
    }

    #[test]
    fn contains_edge_matches_source() {
        let g = sample();
        let frozen = g.freeze();
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(frozen.contains_edge(a, b), g.contains_edge(a, b), "{a}-{b}");
            }
        }
        assert!(!frozen.contains_edge(n(0), n(9)));
    }

    #[test]
    fn view_edges_match_source_edges() {
        let g = sample();
        let frozen = g.freeze();
        let from_frozen: Vec<_> = GraphView::edges(&frozen).collect();
        let from_graph: Vec<_> = g.edges().collect();
        assert_eq!(from_frozen, from_graph);
    }

    #[test]
    fn isolated_nodes_have_empty_blocks() {
        let frozen = Graph::with_nodes(4).freeze();
        assert_eq!(frozen.node_count(), 4);
        assert_eq!(frozen.edge_count(), 0);
        for node in frozen.nodes() {
            assert!(frozen.neighbors(node).is_empty());
        }
    }

    #[test]
    fn conversion_impls_mirror_freeze_and_thaw() {
        let g = sample();
        let frozen = CsrGraph::from(&g);
        assert_eq!(frozen, g.freeze());
        assert_eq!(Graph::from(&frozen), g);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_neighbors_panic() {
        let frozen = sample().freeze();
        let _ = frozen.neighbors(n(40));
    }

    #[test]
    fn owned_snapshots_report_unmapped() {
        assert!(!sample().freeze().is_mapped());
        assert!(!CsrGraph::default().is_mapped());
    }

    #[test]
    fn default_is_empty() {
        let d = CsrGraph::default();
        assert_eq!(d.node_count(), 0);
        assert!(d.is_empty());
        assert_eq!(d, Graph::new().freeze());
    }
}
