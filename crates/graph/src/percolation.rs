//! Molloy-Reed percolation criterion and random-removal thresholds.
//!
//! The paper's configuration-model observations — `m = 1` networks fall apart into
//! disconnected clusters while `m ≥ 2` networks are "almost surely connected having one
//! giant component" (§III-C), and scale-free networks tolerate random failures but not hub
//! attacks (§III) — are both instances of the Molloy-Reed criterion: a random graph with a
//! given degree distribution has a giant component exactly when
//!
//! ```text
//! κ = ⟨k²⟩ / ⟨k⟩ > 2.
//! ```
//!
//! The same ratio gives the random-removal (site percolation) threshold
//! `f_c = 1 − 1 / (κ − 1)`: removing more than a fraction `f_c` of the nodes uniformly at
//! random destroys the giant component. For scale-free networks with `γ < 3`, `⟨k²⟩`
//! diverges with the cutoff, so `f_c → 1` ("robust"); a hard cutoff keeps `⟨k²⟩` finite and
//! pulls the threshold back down — the resilience price of fairness that the `resilience`
//! experiment measures empirically.

use crate::GraphView;
use serde::{Deserialize, Serialize};

/// Degree-moment summary used by the percolation criteria.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PercolationReport {
    /// Mean degree `⟨k⟩`.
    pub mean_degree: f64,
    /// Second moment `⟨k²⟩`.
    pub second_moment: f64,
    /// The Molloy-Reed ratio `κ = ⟨k²⟩ / ⟨k⟩` (0 for an edgeless graph).
    pub kappa: f64,
    /// Whether the criterion predicts a giant component (`κ > 2`).
    pub predicts_giant_component: bool,
    /// Predicted random-removal threshold `f_c = 1 − 1/(κ − 1)`, clamped to `[0, 1]`;
    /// 0 when no giant component is predicted in the first place.
    pub random_removal_threshold: f64,
}

/// Computes the Molloy-Reed percolation report of a graph's degree sequence.
///
/// The criterion is exact for uncorrelated random graphs with the same degree distribution
/// (the configuration model); for grown networks such as PA it is the standard first-order
/// approximation.
///
/// # Example
///
/// ```
/// use sfo_graph::{generators::ring_graph, percolation};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// // Every node of a cycle has degree 2, so kappa = 2: exactly at the threshold.
/// let report = percolation::percolation_report(&ring_graph(50, 1)?);
/// assert!((report.kappa - 2.0).abs() < 1e-12);
/// assert!(!report.predicts_giant_component);
/// # Ok(())
/// # }
/// ```
pub fn percolation_report<G: GraphView + ?Sized>(graph: &G) -> PercolationReport {
    let n = graph.node_count();
    if n == 0 || graph.edge_count() == 0 {
        return PercolationReport {
            mean_degree: 0.0,
            second_moment: 0.0,
            kappa: 0.0,
            predicts_giant_component: false,
            random_removal_threshold: 0.0,
        };
    }
    let degrees = graph.degrees();
    let mean_degree = degrees.iter().sum::<usize>() as f64 / n as f64;
    let second_moment = degrees.iter().map(|&k| (k * k) as f64).sum::<f64>() / n as f64;
    let kappa = second_moment / mean_degree;
    let predicts_giant_component = kappa > 2.0;
    let random_removal_threshold = if predicts_giant_component {
        (1.0 - 1.0 / (kappa - 1.0)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    PercolationReport {
        mean_degree,
        second_moment,
        kappa,
        predicts_giant_component,
        random_removal_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, ring_graph, star_graph};
    use crate::traversal;
    use crate::{Graph, NodeId};

    #[test]
    fn empty_and_edgeless_graphs_have_no_giant_component() {
        let report = percolation_report(&Graph::new());
        assert_eq!(report.kappa, 0.0);
        assert!(!report.predicts_giant_component);
        let report = percolation_report(&Graph::with_nodes(10));
        assert!(!report.predicts_giant_component);
        assert_eq!(report.random_removal_threshold, 0.0);
    }

    #[test]
    fn report_is_identical_on_frozen_snapshots() {
        let g = star_graph(30).unwrap();
        assert_eq!(percolation_report(&g), percolation_report(&g.freeze()));
    }

    #[test]
    fn cycle_sits_exactly_at_the_threshold() {
        let report = percolation_report(&ring_graph(40, 1).unwrap());
        assert!((report.mean_degree - 2.0).abs() < 1e-12);
        assert!((report.second_moment - 4.0).abs() < 1e-12);
        assert!((report.kappa - 2.0).abs() < 1e-12);
        assert!(!report.predicts_giant_component);
    }

    #[test]
    fn cliques_are_deep_inside_the_giant_component_regime() {
        let report = percolation_report(&complete_graph(20).unwrap());
        assert!((report.kappa - 19.0).abs() < 1e-12);
        assert!(report.predicts_giant_component);
        assert!(report.random_removal_threshold > 0.9);
        assert!(report.random_removal_threshold <= 1.0);
    }

    #[test]
    fn hubs_raise_kappa_above_a_regular_graph_of_the_same_mean_degree() {
        // A star and a matching-free pairing have the same mean degree ~1.9 vs 1, but the
        // hub inflates the second moment dramatically.
        let star = percolation_report(&star_graph(50).unwrap());
        let ring = percolation_report(&ring_graph(50, 1).unwrap());
        assert!(star.kappa > ring.kappa);
        assert!(star.predicts_giant_component);
    }

    #[test]
    fn heavier_tails_predict_higher_removal_thresholds() {
        // Hand-built: a hub of degree 20 attached to a long path versus the path alone.
        let mut path = Graph::with_nodes(60);
        for i in 1..40 {
            path.add_edge(NodeId::new(i - 1), NodeId::new(i)).unwrap();
        }
        let plain = percolation_report(&path);
        let mut with_hub = path.clone();
        for i in 40..60 {
            with_hub.add_edge(NodeId::new(0), NodeId::new(i)).unwrap();
        }
        let hubbed = percolation_report(&with_hub);
        assert!(hubbed.kappa > plain.kappa);
        assert!(hubbed.random_removal_threshold >= plain.random_removal_threshold);
    }

    #[test]
    fn criterion_matches_reality_on_reference_graphs() {
        // Where the criterion predicts a giant component, the actual graph (being connected
        // by construction) certainly has one; the interesting direction is that the cycle
        // (kappa = 2) is fragile: removing a single node splits it into a path.
        let clique = complete_graph(12).unwrap();
        assert!(percolation_report(&clique).predicts_giant_component);
        assert!(traversal::is_connected(&clique));

        let mut cycle = ring_graph(12, 1).unwrap();
        cycle.isolate_node(NodeId::new(0)).unwrap();
        assert!(traversal::giant_component_fraction(&cycle) < 1.0);
    }
}
