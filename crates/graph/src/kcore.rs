//! k-core decomposition.
//!
//! The *k-core* of a graph is the maximal subgraph in which every node has degree at least
//! `k`; a node's *core number* is the largest `k` for which it belongs to the k-core. Core
//! numbers are a compact summary of how deeply embedded a peer is in the overlay: in
//! scale-free topologies the hubs populate the innermost cores, while hard cutoffs flatten
//! the core hierarchy by bounding how dense the innermost core can get. The paper's
//! connectedness guideline ("require 2-3 links per peer") is equivalently a statement about
//! the 2-core/3-core: flooding and random-walk searches only circulate well inside them.
//!
//! The decomposition runs in `O(N + E)` using the standard bucket-peeling algorithm
//! (Batagelj & Zaveršnik), and is generic over [`GraphView`], so it runs on a mutable
//! [`Graph`] or on a frozen [`CsrGraph`](crate::CsrGraph) snapshot alike.

use crate::{Graph, GraphView, NodeId};
use serde::{Deserialize, Serialize};

/// Result of a k-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreDecomposition {
    /// Core number of every node, indexed by node id.
    pub core_numbers: Vec<usize>,
    /// The largest core number present (the graph's *degeneracy*); zero for an empty or
    /// edgeless graph.
    pub degeneracy: usize,
}

impl CoreDecomposition {
    /// Returns the core number of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn core_number(&self, node: NodeId) -> usize {
        self.core_numbers[node.index()]
    }

    /// Returns the nodes belonging to the `k`-core (core number at least `k`).
    pub fn core_members(&self, k: usize) -> Vec<NodeId> {
        self.core_numbers
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= k)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Returns the number of nodes in each core: entry `k` is the size of the `k`-core.
    pub fn core_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.degeneracy + 1];
        for &c in &self.core_numbers {
            for size in sizes.iter_mut().take(c + 1) {
                *size += 1;
            }
        }
        sizes
    }
}

/// Computes the core number of every node with the linear-time bucket-peeling algorithm.
///
/// # Example
///
/// ```
/// use sfo_graph::{generators::complete_graph, kcore};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let g = complete_graph(5)?;
/// let decomposition = kcore::core_decomposition(&g);
/// assert_eq!(decomposition.degeneracy, 4);
/// assert!(decomposition.core_numbers.iter().all(|&c| c == 4));
/// # Ok(())
/// # }
/// ```
pub fn core_decomposition<G: GraphView + ?Sized>(graph: &G) -> CoreDecomposition {
    let n = graph.node_count();
    if n == 0 {
        return CoreDecomposition {
            core_numbers: Vec::new(),
            degeneracy: 0,
        };
    }
    let mut degree: Vec<usize> = graph.degrees();
    let max_degree = *degree.iter().max().expect("graph is non-empty");

    // Bucket sort the nodes by degree.
    let mut bin_starts = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin_starts[d + 1] += 1;
    }
    for i in 1..bin_starts.len() {
        bin_starts[i] += bin_starts[i - 1];
    }
    let mut position = vec![0usize; n];
    let mut sorted = vec![0usize; n];
    {
        let mut next = bin_starts.clone();
        for v in 0..n {
            let d = degree[v];
            position[v] = next[d];
            sorted[position[v]] = v;
            next[d] += 1;
        }
    }
    // bin_starts[d] is now the index of the first node with (current) degree d in `sorted`.
    let mut bin = bin_starts;

    let mut core = vec![0usize; n];
    for i in 0..n {
        let v = sorted[i];
        core[v] = degree[v];
        for &u in graph.neighbors(NodeId::new(v)) {
            let u = u.index();
            if degree[u] > degree[v] {
                // Move u to the front of its degree bucket, then shrink its degree by one.
                let du = degree[u];
                let pu = position[u];
                let pw = bin[du];
                let w = sorted[pw];
                if u != w {
                    sorted.swap(pu, pw);
                    position[u] = pw;
                    position[w] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }

    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core_numbers: core,
        degeneracy,
    }
}

/// Returns the subgraph induced by the `k`-core as a new graph over the same node ids
/// (nodes outside the core are kept but left isolated), together with the member list.
///
/// Keeping the node-id space intact means search algorithms and metrics can be applied to
/// the core directly without remapping identifiers.
pub fn k_core_subgraph<G: GraphView + ?Sized>(graph: &G, k: usize) -> (Graph, Vec<NodeId>) {
    let decomposition = core_decomposition(graph);
    let members = decomposition.core_members(k);
    let in_core: Vec<bool> = decomposition.core_numbers.iter().map(|&c| c >= k).collect();
    let mut sub = Graph::with_nodes(graph.node_count());
    for a in graph.nodes() {
        for &b in graph.neighbors(a) {
            if a.index() < b.index() && in_core[a.index()] && in_core[b.index()] {
                sub.add_edge(a, b)
                    .expect("edge endpoints exist and are unique");
            }
        }
    }
    (sub, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, ring_graph};

    #[test]
    fn decomposition_is_identical_on_frozen_snapshots() {
        let mut g = complete_graph(6).unwrap();
        g.add_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(6)).unwrap();
        let frozen = g.freeze();
        assert_eq!(core_decomposition(&g), core_decomposition(&frozen));
        let (sub_g, members_g) = k_core_subgraph(&g, 2);
        let (sub_c, members_c) = k_core_subgraph(&frozen, 2);
        assert_eq!(members_g, members_c);
        assert_eq!(sub_g.edge_count(), sub_c.edge_count());
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph_has_no_cores() {
        let decomposition = core_decomposition(&Graph::new());
        assert_eq!(decomposition.degeneracy, 0);
        assert!(decomposition.core_numbers.is_empty());
    }

    #[test]
    fn isolated_nodes_have_core_number_zero() {
        let g = Graph::with_nodes(4);
        let decomposition = core_decomposition(&g);
        assert_eq!(decomposition.core_numbers, vec![0, 0, 0, 0]);
        assert_eq!(decomposition.degeneracy, 0);
    }

    #[test]
    fn complete_graph_core_numbers() {
        let g = complete_graph(6).unwrap();
        let decomposition = core_decomposition(&g);
        assert!(decomposition.core_numbers.iter().all(|&c| c == 5));
        assert_eq!(decomposition.degeneracy, 5);
        assert_eq!(decomposition.core_members(5).len(), 6);
        assert!(decomposition.core_members(6).is_empty());
    }

    #[test]
    fn ring_is_a_pure_2_core() {
        let g = ring_graph(10, 1).unwrap();
        let decomposition = core_decomposition(&g);
        assert!(decomposition.core_numbers.iter().all(|&c| c == 2));
        assert_eq!(decomposition.degeneracy, 2);
    }

    #[test]
    fn tree_is_a_pure_1_core() {
        // A star: center plus leaves. Every node peels at 1.
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(n(0), n(i)).unwrap();
        }
        let decomposition = core_decomposition(&g);
        assert!(decomposition.core_numbers.iter().all(|&c| c == 1));
        assert_eq!(decomposition.degeneracy, 1);
    }

    #[test]
    fn pendant_attached_to_a_triangle() {
        // Triangle 0-1-2 plus pendant 3 attached to 0: triangle is the 2-core, the pendant
        // has core number 1.
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g.add_edge(n(0), n(3)).unwrap();
        let decomposition = core_decomposition(&g);
        assert_eq!(decomposition.core_number(n(0)), 2);
        assert_eq!(decomposition.core_number(n(1)), 2);
        assert_eq!(decomposition.core_number(n(2)), 2);
        assert_eq!(decomposition.core_number(n(3)), 1);
        assert_eq!(decomposition.degeneracy, 2);
        assert_eq!(decomposition.core_members(2), vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn core_sizes_are_monotone_decreasing() {
        let mut g = complete_graph(5).unwrap();
        let pendant = g.add_node();
        g.add_edge(n(0), pendant).unwrap();
        let decomposition = core_decomposition(&g);
        let sizes = decomposition.core_sizes();
        assert_eq!(sizes[0], 6);
        assert_eq!(sizes[1], 6);
        assert_eq!(sizes[4], 5);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "core sizes must be monotone non-increasing");
        }
    }

    #[test]
    fn k_core_subgraph_drops_edges_outside_the_core() {
        let mut g = complete_graph(4).unwrap();
        let pendant = g.add_node();
        g.add_edge(n(0), pendant).unwrap();
        let (sub, members) = k_core_subgraph(&g, 3);
        assert_eq!(members, vec![n(0), n(1), n(2), n(3)]);
        assert_eq!(sub.node_count(), g.node_count());
        assert_eq!(sub.edge_count(), 6);
        assert_eq!(sub.degree(pendant), 0);
        sub.assert_consistent();
    }

    #[test]
    fn core_numbers_never_exceed_degree() {
        let mut g = ring_graph(30, 2).unwrap();
        g.add_edge(n(0), n(15)).unwrap();
        let decomposition = core_decomposition(&g);
        for node in g.nodes() {
            assert!(decomposition.core_number(node) <= g.degree(node));
        }
    }
}
