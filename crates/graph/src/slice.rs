//! Contiguous shard slices of a frozen CSR snapshot.
//!
//! A [`CsrSlice`] is exactly what one shard host owns under placed execution: the
//! rebased `offsets` column and contiguous `targets` rows of one node range
//! `start..end`, plus the *global* node and edge counts of the snapshot it was cut
//! from. Targets stay global [`NodeId`]s — a slice can tell that a neighbor exists and
//! which node it is, but it can only enumerate the neighbor rows of the nodes it owns.
//!
//! [`ShardView`] is the read interface placed traversals run against: the whole
//! snapshot ([`CsrGraph`] owns every row) and a shard slice implement it identically
//! over the rows they hold, so the same traversal code runs single-host and placed.

use crate::{CsrGraph, GraphError, NodeId};
use std::ops::Range;

/// A read view over some (possibly all) rows of a frozen snapshot.
///
/// The contract mirrors [`CsrGraph`]: neighbor slices are in frozen order and
/// `node_count` is the *global* node count of the underlying snapshot, regardless of
/// how many rows this view owns. Callers must check [`ShardView::owns`] before asking
/// for a row a shard view might not hold.
pub trait ShardView {
    /// Global node count of the underlying snapshot.
    fn node_count(&self) -> usize;

    /// Global undirected edge count of the underlying snapshot.
    fn edge_count(&self) -> usize;

    /// Whether this view holds the neighbor row of node `index`.
    fn owns(&self, index: usize) -> bool;

    /// The neighbor row of an owned node, in frozen order.
    ///
    /// # Panics
    ///
    /// Panics if the view does not own `node` (see [`ShardView::owns`]).
    fn neighbors(&self, node: NodeId) -> &[NodeId];
}

impl ShardView for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    #[inline]
    fn owns(&self, index: usize) -> bool {
        index < CsrGraph::node_count(self)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, node)
    }
}

/// One contiguous node range of a CSR snapshot: the rebased offsets and row block a
/// shard host owns, plus the global shape of the snapshot it was cut from.
///
/// Built locally by [`CsrGraph::extract_slice`] or remotely from a decoded `LoadShard`
/// payload via [`CsrSlice::from_parts`]; both paths produce the identical value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrSlice {
    /// First owned node (global id).
    start: usize,
    /// One past the last owned node (global id).
    end: usize,
    /// Global node count of the source snapshot.
    node_count: usize,
    /// Global undirected edge count of the source snapshot.
    edge_count: usize,
    /// Rebased row offsets: `offsets[i]` is where owned node `start + i`'s row begins
    /// in `targets`; length `end - start + 1`.
    offsets: Vec<u32>,
    /// The owned rows, concatenated. Entries are global node ids.
    targets: Vec<NodeId>,
}

impl CsrSlice {
    /// Assembles a slice from its raw columns, validating every structural invariant:
    /// a sane range, a rebased offsets column of the right length starting at zero and
    /// nondecreasing up to `targets.len()`, and every target inside the global id
    /// space.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] naming the violated invariant.
    pub fn from_parts(
        range: Range<usize>,
        node_count: usize,
        edge_count: usize,
        offsets: Vec<u32>,
        targets: Vec<NodeId>,
    ) -> Result<Self, GraphError> {
        let invalid = |reason: &'static str| GraphError::InvalidParameter { reason };
        if range.start > range.end || range.end > node_count {
            return Err(invalid("shard slice range out of bounds"));
        }
        if offsets.len() != range.end - range.start + 1 {
            return Err(invalid(
                "shard slice offsets length does not match its range",
            ));
        }
        if offsets[0] != 0 {
            return Err(invalid("shard slice offsets must start at zero"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("shard slice offsets must be nondecreasing"));
        }
        if *offsets.last().expect("nonempty offsets") as usize != targets.len() {
            return Err(invalid("shard slice offsets do not cover its targets"));
        }
        if targets.iter().any(|t| t.index() >= node_count) {
            return Err(invalid("shard slice target outside the global id space"));
        }
        if targets.len() > edge_count.saturating_mul(2) {
            return Err(invalid("shard slice holds more entries than the snapshot"));
        }
        Ok(CsrSlice {
            start: range.start,
            end: range.end,
            node_count,
            edge_count,
            offsets,
            targets,
        })
    }

    /// First owned node (global id).
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last owned node (global id).
    #[inline]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of nodes this slice owns.
    #[inline]
    pub fn owned_count(&self) -> usize {
        self.end - self.start
    }

    /// Number of directed adjacency entries (row cells) this slice owns.
    #[inline]
    pub fn owned_entries(&self) -> usize {
        self.targets.len()
    }

    /// The slice's raw columns: rebased offsets and global-id targets.
    pub fn raw_parts(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.targets)
    }

    /// Degree of an owned node.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not own `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        ShardView::neighbors(self, node).len()
    }
}

impl ShardView for CsrSlice {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    #[inline]
    fn owns(&self, index: usize) -> bool {
        (self.start..self.end).contains(&index)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        assert!(
            self.owns(node.index()),
            "node {node} is not owned by shard slice {}..{}",
            self.start,
            self.end
        );
        let local = node.index() - self.start;
        &self.targets[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }
}

impl CsrGraph {
    /// Cuts the contiguous node range `range` out of the snapshot as a [`CsrSlice`]:
    /// the range's row block is copied once and its offsets rebased to start at zero.
    /// This is exactly the per-host shipment of placed execution — pair it with the
    /// matching shard manifest record to know the range, and with
    /// `ShardedCsr::shard_targets` to see the same rows in place.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not a valid node range of the snapshot.
    pub fn extract_slice(&self, range: Range<usize>) -> CsrSlice {
        assert!(
            range.start <= range.end && range.end <= self.node_count(),
            "range {range:?} out of bounds for a {}-node snapshot",
            self.node_count()
        );
        let (offsets, targets) = self.raw_parts();
        let base = offsets[range.start];
        let rebased: Vec<u32> = offsets[range.start..=range.end]
            .iter()
            .map(|&o| o - base)
            .collect();
        let block = targets[offsets[range.start] as usize..offsets[range.end] as usize].to_vec();
        CsrSlice::from_parts(range, self.node_count(), self.edge_count(), rebased, block)
            .expect("a slice cut from a valid snapshot is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path_graph(n: usize) -> CsrGraph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1)).unwrap();
        }
        g.freeze()
    }

    #[test]
    fn extracted_slices_reproduce_the_snapshot_rows() {
        let csr = path_graph(10);
        for (start, end) in [(0usize, 4usize), (4, 7), (7, 10), (0, 10), (3, 3)] {
            let slice = csr.extract_slice(start..end);
            assert_eq!(ShardView::node_count(&slice), 10);
            assert_eq!(ShardView::edge_count(&slice), 9);
            assert_eq!(slice.owned_count(), end - start);
            for node in 0..10 {
                assert_eq!(slice.owns(node), (start..end).contains(&node));
            }
            for node in start..end {
                assert_eq!(
                    ShardView::neighbors(&slice, NodeId::new(node)),
                    csr.neighbors(NodeId::new(node)),
                    "row {node} of slice {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn slices_round_trip_through_their_raw_parts() {
        let csr = path_graph(8);
        let slice = csr.extract_slice(2..6);
        let (offsets, targets) = slice.raw_parts();
        let back = CsrSlice::from_parts(
            2..6,
            ShardView::node_count(&slice),
            ShardView::edge_count(&slice),
            offsets.to_vec(),
            targets.to_vec(),
        )
        .unwrap();
        assert_eq!(back, slice);
    }

    #[test]
    fn malformed_parts_are_typed_errors() {
        let csr = path_graph(6);
        let slice = csr.extract_slice(1..4);
        let (offsets, targets) = slice.raw_parts();
        let (offsets, targets) = (offsets.to_vec(), targets.to_vec());
        // Reversed (deliberately malformed) and out-of-bounds ranges.
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 5..3;
        assert!(CsrSlice::from_parts(reversed, 6, 5, offsets.clone(), targets.clone()).is_err());
        assert!(CsrSlice::from_parts(1..9, 6, 5, offsets.clone(), targets.clone()).is_err());
        // Offsets column the wrong length / not rebased / decreasing / not covering.
        assert!(CsrSlice::from_parts(1..4, 6, 5, vec![0, 2], targets.clone()).is_err());
        let mut shifted = offsets.clone();
        shifted[0] = 1;
        assert!(CsrSlice::from_parts(1..4, 6, 5, shifted, targets.clone()).is_err());
        let mut decreasing = offsets.clone();
        decreasing[1] = u32::MAX;
        assert!(CsrSlice::from_parts(1..4, 6, 5, decreasing, targets.clone()).is_err());
        let mut short = offsets.clone();
        *short.last_mut().unwrap() -= 1;
        assert!(CsrSlice::from_parts(1..4, 6, 5, short, targets.clone()).is_err());
        // A target outside the global id space.
        let mut wild = targets.clone();
        wild[0] = NodeId::new(6);
        assert!(CsrSlice::from_parts(1..4, 6, 5, offsets.clone(), wild).is_err());
        // More entries than the snapshot has.
        assert!(CsrSlice::from_parts(1..4, 6, 2, offsets, targets).is_err());
    }

    #[test]
    fn the_whole_graph_is_a_shard_view_owning_everything() {
        let csr = path_graph(5);
        assert!(ShardView::owns(&csr, 4));
        assert!(!ShardView::owns(&csr, 5));
        assert_eq!(
            ShardView::neighbors(&csr, NodeId::new(2)),
            csr.neighbors(NodeId::new(2))
        );
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn asking_a_slice_for_a_foreign_row_panics() {
        let csr = path_graph(6);
        let slice = csr.extract_slice(0..3);
        let _ = ShardView::neighbors(&slice, NodeId::new(5));
    }
}
