//! Breadth-first search, connected components, and horizon queries.
//!
//! The topology generators and search algorithms in this workspace are all built on
//! breadth-first traversals: DAPA discovers the peers within a local time-to-live
//! `τ_sub` of a joining node (its *horizon*), flooding reaches all nodes within `τ` hops,
//! and the figures that report connectivity rely on component extraction.

use crate::{GraphView, NodeId};
use std::collections::VecDeque;

/// Hop distance from a breadth-first source to a node, `None` when unreachable.
pub type Distances = Vec<Option<u32>>;

/// Computes the hop distance from `source` to every node of `graph`.
///
/// Unreachable nodes get `None`. The source itself has distance `Some(0)`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Example
///
/// ```
/// use sfo_graph::{Graph, NodeId, traversal};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2))?;
/// let dist = traversal::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(dist[2], Some(2));
/// assert_eq!(dist[3], None);
/// # Ok(())
/// # }
/// ```
pub fn bfs_distances<G: GraphView + ?Sized>(graph: &G, source: NodeId) -> Distances {
    bfs_distances_bounded(graph, source, u32::MAX)
}

/// Computes hop distances from `source`, abandoning the traversal beyond `max_depth` hops.
///
/// Nodes farther than `max_depth` (or unreachable) get `None`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_distances_bounded<G: GraphView + ?Sized>(
    graph: &G,
    source: NodeId,
    max_depth: u32,
) -> Distances {
    assert!(
        graph.contains_node(source),
        "bfs source {source} out of bounds"
    );
    let mut dist: Distances = vec![None; graph.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have distances");
        if d >= max_depth {
            continue;
        }
        for &next in graph.neighbors(node) {
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Returns the nodes within `max_depth` hops of `source`, excluding the source itself,
/// together with their hop distances.
///
/// This is the *horizon* query used by the DAPA join procedure (paper, Alg. 4, lines 4-10):
/// a joining node floods a discovery query `τ_sub` hops into the substrate and collects the
/// peers it can see.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn horizon<G: GraphView + ?Sized>(
    graph: &G,
    source: NodeId,
    max_depth: u32,
) -> Vec<(NodeId, u32)> {
    let dist = bfs_distances_bounded(graph, source, max_depth);
    dist.iter()
        .enumerate()
        .filter_map(|(i, d)| match d {
            Some(d) if *d > 0 => Some((NodeId::new(i), *d)),
            _ => None,
        })
        .collect()
}

/// Returns the connected components of `graph`, each as a sorted list of node ids.
///
/// Components are reported in order of their smallest node id.
pub fn connected_components<G: GraphView + ?Sized>(graph: &G) -> Vec<Vec<NodeId>> {
    let mut visited = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for start in graph.nodes() {
        if visited[start.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            component.push(node);
            for &next in graph.neighbors(node) {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Returns the number of nodes in the largest connected component, or 0 for an empty graph.
pub fn giant_component_size<G: GraphView + ?Sized>(graph: &G) -> usize {
    connected_components(graph)
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
}

/// Returns the node set of the largest connected component, or an empty vector for an empty
/// graph. Ties are broken in favor of the component containing the smallest node id.
pub fn giant_component<G: GraphView + ?Sized>(graph: &G) -> Vec<NodeId> {
    connected_components(graph)
        .into_iter()
        .max_by(|a, b| a.len().cmp(&b.len()).then_with(|| b[0].cmp(&a[0])))
        .unwrap_or_default()
}

/// Returns `true` if the graph is connected (every node reachable from every other).
///
/// The empty graph and the single-node graph are considered connected.
pub fn is_connected<G: GraphView + ?Sized>(graph: &G) -> bool {
    if graph.node_count() <= 1 {
        return true;
    }
    let dist = bfs_distances(graph, NodeId::new(0));
    dist.iter().all(Option::is_some)
}

/// Returns the fraction of nodes contained in the largest connected component.
///
/// Returns `0.0` for an empty graph. The paper uses this to explain why flooding on
/// configuration-model topologies with minimum degree 1 never reaches the full system size.
pub fn giant_component_fraction<G: GraphView + ?Sized>(graph: &G) -> f64 {
    if graph.node_count() == 0 {
        0.0
    } else {
        giant_component_size(graph) as f64 / graph.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, GraphError};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn path_graph(len: usize) -> Graph {
        let mut g = Graph::with_nodes(len);
        for i in 1..len {
            g.add_edge(n(i - 1), n(i)).unwrap();
        }
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let dist = bfs_distances(&g, n(0));
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_distances_unreachable_nodes_are_none() {
        let mut g = path_graph(3);
        g.add_nodes(2);
        let dist = bfs_distances(&g, n(0));
        assert_eq!(dist[3], None);
        assert_eq!(dist[4], None);
    }

    #[test]
    fn bounded_bfs_stops_at_depth() {
        let g = path_graph(6);
        let dist = bfs_distances_bounded(&g, n(0), 2);
        assert_eq!(dist[2], Some(2));
        assert_eq!(dist[3], None);
    }

    #[test]
    fn horizon_excludes_source_and_respects_ttl() {
        let g = path_graph(6);
        let mut h = horizon(&g, n(2), 2);
        h.sort_unstable();
        assert_eq!(h, vec![(n(0), 2), (n(1), 1), (n(3), 1), (n(4), 2)]);
    }

    #[test]
    fn horizon_of_isolated_node_is_empty() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(1), n(2)).unwrap();
        assert!(horizon(&g, n(0), 5).is_empty());
    }

    #[test]
    fn components_of_disconnected_graph() -> Result<(), GraphError> {
        let mut g = Graph::with_nodes(6);
        g.add_edge(n(0), n(1))?;
        g.add_edge(n(1), n(2))?;
        g.add_edge(n(3), n(4))?;
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![n(0), n(1), n(2)]);
        assert_eq!(comps[1], vec![n(3), n(4)]);
        assert_eq!(comps[2], vec![n(5)]);
        assert_eq!(giant_component_size(&g), 3);
        assert_eq!(giant_component(&g), vec![n(0), n(1), n(2)]);
        assert!((giant_component_fraction(&g) - 0.5).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&Graph::with_nodes(1)));
        assert!(is_connected(&path_graph(4)));
        let mut g = path_graph(4);
        g.add_node();
        assert!(!is_connected(&g));
    }

    #[test]
    fn giant_component_of_empty_graph_is_empty() {
        assert_eq!(giant_component_size(&Graph::new()), 0);
        assert!(giant_component(&Graph::new()).is_empty());
        assert_eq!(giant_component_fraction(&Graph::new()), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bfs_panics_on_bad_source() {
        let g = Graph::with_nodes(2);
        let _ = bfs_distances(&g, n(7));
    }
}
