//! Simple undirected graph stored as adjacency lists.

use crate::{CsrGraph, GraphError, GraphView, NodeId, Result};
use serde::{Deserialize, Serialize};

/// A simple undirected graph: no self-loops, no parallel edges.
///
/// This is the representation every overlay topology in the workspace is built on.
/// Nodes are identified by dense [`NodeId`] indices; adjacency is stored as one
/// `Vec<NodeId>` per node, so `neighbors` is a cheap slice borrow and degree lookups are
/// O(1). Edge existence checks are O(min-degree) which is appropriate for the sparse,
/// cutoff-bounded graphs this workspace manipulates.
///
/// # Example
///
/// ```
/// use sfo_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_edge(a, b)?;
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.neighbors(a), &[b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph with no nodes.
    pub fn new() -> Self {
        Graph {
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Graph {
            adjacency: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Creates a graph containing `nodes` isolated nodes with ids `0..nodes`.
    pub fn with_nodes(nodes: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); nodes],
            edge_count: 0,
        }
    }

    /// Builds a graph directly from adjacency lists known to describe a valid simple
    /// graph (mirrored entries, no self-loops or duplicates). Used by
    /// [`CsrGraph::thaw`] to reproduce the frozen neighbor order exactly.
    pub(crate) fn from_adjacency(adjacency: Vec<Vec<NodeId>>, edge_count: usize) -> Self {
        let graph = Graph {
            adjacency,
            edge_count,
        };
        debug_assert!({
            graph.assert_consistent();
            true
        });
        graph
    }

    /// Materializes a mutable adjacency copy of any read-only [`GraphView`] in O(V + E).
    ///
    /// This is the bridge from frozen snapshots back to the mutable world: analyses that
    /// need to degrade a topology (for example `resilience::degrade`) accept any view and
    /// copy it through here before mutating. Neighbor lists come out sorted by node id
    /// (not necessarily in the view's order), which no mutation-based analysis depends
    /// on; use [`CsrGraph::thaw`] when the exact frozen order must be preserved.
    pub fn from_view<G: GraphView + ?Sized>(view: &G) -> Self {
        let mut graph = Graph::with_nodes(view.node_count());
        for a in view.nodes() {
            for &b in view.neighbors(a) {
                if a.index() < b.index() {
                    graph
                        .add_edge(a, b)
                        .expect("a simple-graph view has no self-loops or duplicates");
                }
            }
        }
        graph
    }

    /// Freezes the graph into an immutable [`CsrGraph`] snapshot in O(V + E).
    ///
    /// The snapshot preserves per-node neighbor order, so any algorithm generic over
    /// [`GraphView`] behaves identically on the graph and on its frozen form.
    /// [`CsrGraph::thaw`] converts back.
    pub fn freeze(&self) -> CsrGraph {
        CsrGraph::from_graph(self)
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adjacency.len());
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `count` new isolated nodes, returning the id of the first one added.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId::new(self.adjacency.len());
        self.adjacency
            .extend(std::iter::repeat_with(Vec::new).take(count));
        first
    }

    /// Returns the number of nodes in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns the number of undirected edges in the graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Returns `true` if `node` refers to a node present in the graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.adjacency.len()
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if self.contains_node(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        }
    }

    /// Returns the degree (number of neighbors) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Returns the neighbors of `node` as a slice, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Returns `true` if an edge between `a` and `b` exists.
    ///
    /// The check scans the adjacency list of the lower-degree endpoint.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        GraphView::contains_edge(self, a, b)
    }

    /// Adds an undirected edge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not exist,
    /// [`GraphError::SelfLoop`] if `a == b`, and [`GraphError::DuplicateEdge`] if the edge
    /// already exists.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        if self.contains_edge(a, b) {
            return Err(GraphError::DuplicateEdge { a, b });
        }
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        self.edge_count += 1;
        Ok(())
    }

    /// Adds an undirected edge between `a` and `b` if it is not already present.
    ///
    /// Returns `true` if the edge was added, `false` if it already existed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not exist and
    /// [`GraphError::SelfLoop`] if `a == b`.
    pub fn add_edge_if_absent(&mut self, a: NodeId, b: NodeId) -> Result<bool> {
        match self.add_edge(a, b) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the undirected edge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if either endpoint does not exist and
    /// [`GraphError::MissingEdge`] if the edge is not present.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !self.contains_edge(a, b) {
            return Err(GraphError::MissingEdge { a, b });
        }
        let adj_a = &mut self.adjacency[a.index()];
        if let Some(pos) = adj_a.iter().position(|&n| n == b) {
            adj_a.swap_remove(pos);
        }
        let adj_b = &mut self.adjacency[b.index()];
        if let Some(pos) = adj_b.iter().position(|&n| n == a) {
            adj_b.swap_remove(pos);
        }
        self.edge_count -= 1;
        Ok(())
    }

    /// Removes every edge incident to `node`, leaving the node isolated in place.
    ///
    /// This is the operation used to model a peer leaving the overlay: node ids stay
    /// dense and stable while the departed peer keeps no links.
    ///
    /// Returns the neighbors the node had before isolation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if `node` does not exist.
    pub fn isolate_node(&mut self, node: NodeId) -> Result<Vec<NodeId>> {
        self.check_node(node)?;
        let neighbors = std::mem::take(&mut self.adjacency[node.index()]);
        for &n in &neighbors {
            let adj = &mut self.adjacency[n.index()];
            if let Some(pos) = adj.iter().position(|&x| x == node) {
                adj.swap_remove(pos);
            }
        }
        self.edge_count -= neighbors.len();
        Ok(neighbors)
    }

    /// Returns an iterator over all node ids in the graph.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(NodeId::new)
    }

    /// Returns an iterator over all undirected edges, each reported once as `(a, b)` with
    /// `a < b`.
    pub fn edges(&self) -> EdgeIter<'_> {
        GraphView::edges(self)
    }

    /// Returns an iterator over the neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbor_iter(&self, node: NodeId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.adjacency[node.index()].iter(),
        }
    }

    /// Returns the degrees of all nodes, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(Vec::len).collect()
    }

    /// Returns the sum of all node degrees (twice the edge count).
    pub fn total_degree(&self) -> usize {
        2 * self.edge_count
    }

    /// Returns the minimum degree over all nodes, or `None` for an empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.adjacency.iter().map(Vec::len).min()
    }

    /// Returns the maximum degree over all nodes, or `None` for an empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.adjacency.iter().map(Vec::len).max()
    }

    /// Returns the average degree, `2E / N`, or `0.0` for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            self.total_degree() as f64 / self.node_count() as f64
        }
    }

    /// Asserts internal consistency of the adjacency structure.
    ///
    /// Checks that every adjacency entry is mirrored, that no self-loops or duplicate
    /// entries exist, and that the cached edge count matches the adjacency lists. Intended
    /// for tests and debugging; cost is O(N + E log E).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency found.
    pub fn assert_consistent(&self) {
        let mut seen_edges = 0usize;
        for (i, adj) in self.adjacency.iter().enumerate() {
            let node = NodeId::new(i);
            let mut sorted = adj.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(
                    w[0] != w[1],
                    "duplicate adjacency entry {} on node {}",
                    w[0],
                    node
                );
            }
            for &n in adj {
                assert!(n != node, "self-loop on node {node}");
                assert!(
                    self.adjacency[n.index()].contains(&node),
                    "edge {node}-{n} is not mirrored"
                );
                if node < n {
                    seen_edges += 1;
                }
            }
        }
        assert_eq!(seen_edges, self.edge_count, "edge count cache out of sync");
    }
}

impl GraphView for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    #[inline]
    fn degree(&self, node: NodeId) -> usize {
        Graph::degree(self, node)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        Graph::neighbors(self, node)
    }
}

/// Iterator over the undirected edges of a [`Graph`], produced by [`Graph::edges`].
///
/// Each edge is yielded exactly once as `(a, b)` with `a < b`. This is the shared
/// [`ViewEdges`](crate::ViewEdges) iterator instantiated for the adjacency-list backend,
/// so both backends iterate edges through one implementation.
pub type EdgeIter<'a> = crate::ViewEdges<'a, Graph>;

/// Iterator over the neighbors of a node, produced by [`Graph::neighbor_iter`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, NodeId>,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a> ExactSizeIterator for NeighborIter<'a> {}

impl Extend<(NodeId, NodeId)> for Graph {
    /// Extends the graph with edges, growing the node set as needed and ignoring
    /// duplicate edges and self-loops.
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (a, b) in iter {
            let needed = a.index().max(b.index()) + 1;
            if needed > self.node_count() {
                self.add_nodes(needed - self.node_count());
            }
            if a != b {
                let _ = self.add_edge_if_absent(a, b);
            }
        }
    }
}

impl FromIterator<(NodeId, NodeId)> for Graph {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn new_graph_is_empty() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_degree(), None);
        assert_eq!(g.max_degree(), None);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn add_nodes_returns_first_id() {
        let mut g = Graph::new();
        assert_eq!(g.add_node(), n(0));
        assert_eq!(g.add_nodes(3), n(1));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn add_edge_and_query() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(n(0), n(1)));
        assert!(g.contains_edge(n(1), n(0)));
        assert!(!g.contains_edge(n(0), n(2)));
        assert_eq!(g.degree(n(1)), 2);
        assert_eq!(g.neighbors(n(1)), &[n(0), n(2)]);
        g.assert_consistent();
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(
            g.add_edge(n(1), n(1)),
            Err(GraphError::SelfLoop { node: n(1) })
        );
    }

    #[test]
    fn add_edge_rejects_duplicate() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(n(0), n(1)).unwrap();
        assert_eq!(
            g.add_edge(n(1), n(0)),
            Err(GraphError::DuplicateEdge { a: n(1), b: n(0) })
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_edge_rejects_out_of_bounds() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(
            g.add_edge(n(0), n(5)),
            Err(GraphError::NodeOutOfBounds {
                node: n(5),
                node_count: 2
            })
        );
    }

    #[test]
    fn add_edge_if_absent_reports_presence() {
        let mut g = Graph::with_nodes(2);
        assert!(g.add_edge_if_absent(n(0), n(1)).unwrap());
        assert!(!g.add_edge_if_absent(n(0), n(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_edge_updates_both_endpoints() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.remove_edge(n(0), n(1)).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.contains_edge(n(0), n(1)));
        assert_eq!(g.degree(n(0)), 0);
        assert_eq!(g.degree(n(1)), 1);
        g.assert_consistent();
    }

    #[test]
    fn remove_missing_edge_is_error() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(
            g.remove_edge(n(0), n(1)),
            Err(GraphError::MissingEdge { a: n(0), b: n(1) })
        );
    }

    #[test]
    fn isolate_node_removes_incident_edges() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        let mut former = g.isolate_node(n(0)).unwrap();
        former.sort_unstable();
        assert_eq!(former, vec![n(1), n(2)]);
        assert_eq!(g.degree(n(0)), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.contains_edge(n(2), n(3)));
        g.assert_consistent();
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.add_edge(n(3), n(0)).unwrap();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(
            edges,
            vec![(n(0), n(1)), (n(0), n(3)), (n(1), n(2)), (n(2), n(3))]
        );
    }

    #[test]
    fn degree_statistics() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(0), n(3)).unwrap();
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(g.total_degree(), 6);
        assert_eq!(g.min_degree(), Some(1));
        assert_eq!(g.max_degree(), Some(3));
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn extend_and_collect_grow_node_set() {
        let g: Graph = vec![(n(0), n(1)), (n(1), n(4)), (n(1), n(4)), (n(2), n(2))]
            .into_iter()
            .collect();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
        g.assert_consistent();
    }

    #[test]
    fn neighbor_iter_matches_slice() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        let via_iter: Vec<_> = g.neighbor_iter(n(0)).collect();
        assert_eq!(via_iter, g.neighbors(n(0)).to_vec());
        assert_eq!(g.neighbor_iter(n(0)).len(), 2);
    }

    #[test]
    fn clone_preserves_structure() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        let copy = g.clone();
        assert_eq!(copy, g);
        assert_eq!(copy.edge_count(), 2);
        copy.assert_consistent();
    }
}
