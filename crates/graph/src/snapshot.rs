//! The `SFOS` binary snapshot format: CSR topologies on disk.
//!
//! A frozen [`CsrGraph`] is two flat arrays, which makes it the natural wire and mmap
//! format for handing topologies between processes — the ROADMAP's build-once /
//! persist / query-many workload. This module is the codec for that hand-off: a
//! versioned, checksummed, little-endian container holding the `offsets`/`targets`
//! arrays verbatim, plus two optional sections:
//!
//! * a **shard manifest** — the contiguous node ranges and per-shard cross-shard
//!   boundary tables of a sharded store (`sfo-engine`'s `ShardedCsr` writes and reads
//!   it; a per-host shard placement ships exactly one shard's rows plus its table), and
//! * a **provenance record** — which scenario curve generated the topology (`label`,
//!   `m`, cutoff, seed, realization) and the `sweep_seed` drawn from the generation
//!   stream right after the topology was built, so a search sweep run against the file
//!   continues the *identical* RNG discipline as one run against the inline generator.
//!
//! The full byte layout is documented in `docs/FORMATS.md` at the workspace root (and
//! in [`SnapshotFile`]'s docs). Readers are strict: wrong magic, unknown versions or
//! flags, truncation, trailing bytes, checksum mismatches, and structurally invalid
//! topologies (non-monotone offsets, out-of-range targets, self-loops, unmirrored
//! adjacency) all yield a typed [`SnapshotError`] — never a panic, and never a silently
//! wrong graph.

use crate::{CsrGraph, NodeId};
use std::error::Error;
use std::fmt;
use std::io::Read;
use std::ops::Range;
use std::path::Path;

/// The four magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SFOS";

/// The format version this build writes and the only one it accepts.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Header flag bit: the file carries a shard manifest section.
const FLAG_SHARD_MANIFEST: u16 = 1 << 0;
/// Header flag bit: the file carries a provenance section.
const FLAG_PROVENANCE: u16 = 1 << 1;
/// Header flag bit: the provenance section ends with an origin tag. Requires
/// [`FLAG_PROVENANCE`]; older files never set it and keep loading unchanged.
const FLAG_ORIGIN: u16 = 1 << 2;
/// All flag bits this version understands; anything else is a corrupt or future file.
const KNOWN_FLAGS: u16 = FLAG_SHARD_MANIFEST | FLAG_PROVENANCE | FLAG_ORIGIN;

/// Fixed-size prefix of the file before any variable-length section.
const HEADER_LEN: usize = 32;
/// Size of the trailing checksum.
const TRAILER_LEN: usize = 8;

/// Errors produced while reading or writing a snapshot file.
///
/// Every variant is a hard error: a snapshot is either exactly what was written or it is
/// rejected. There is no partial or best-effort decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The operating-system error message.
        message: String,
    },
    /// The file does not start with the `SFOS` magic — it is not a snapshot at all.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file is a snapshot, but of a format version this build does not understand.
    UnsupportedVersion {
        /// The version stored in the file.
        found: u16,
    },
    /// The file ended before the section being decoded was complete.
    Truncated {
        /// The section that could not be read in full.
        section: &'static str,
    },
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// The checksum stored in the trailer.
        stored: u64,
        /// The checksum computed over the file contents.
        computed: u64,
    },
    /// The file decodes but violates a format or graph invariant.
    Corrupt {
        /// The violated invariant.
        reason: String,
    },
    /// A section the caller requires is not present in the file.
    MissingSection {
        /// The absent section (`"shard manifest"` or `"provenance"`).
        section: &'static str,
    },
}

impl SnapshotError {
    fn corrupt(reason: impl Into<String>) -> Self {
        SnapshotError::Corrupt {
            reason: reason.into(),
        }
    }

    fn io(path: &Path, error: &std::io::Error) -> Self {
        SnapshotError::Io {
            path: path.display().to_string(),
            message: error.to_string(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, message } => write!(f, "snapshot io error ({path}): {message}"),
            SnapshotError::BadMagic { found } => write!(
                f,
                "not a snapshot file: expected magic \"SFOS\", found {found:?}"
            ),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated inside the {section} section")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: trailer says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            SnapshotError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot has no {section} section")
            }
        }
    }
}

impl Error for SnapshotError {}

/// FNV-1a over `bytes`: the trailer checksum.
///
/// Not cryptographic — it guards against truncation, bit rot, and concatenation
/// mistakes, which is what a local topology store needs. The whole file except the
/// 8-byte trailer is hashed.
///
/// Public because it is the workspace's one checksum: the `SFNF` wire frames of
/// `sfo-net` use the identical function (via [`fnv1a64_update`] for streaming over
/// non-contiguous sections), so the cross-format "same function, same constants"
/// guarantee is enforced by sharing code, not by keeping copies in sync.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a fold from `hash` over `bytes` — `fnv1a64(a ++ b)` equals
/// `fnv1a64_update(fnv1a64(a), b)`, so callers can checksum non-contiguous sections
/// without concatenating them.
pub fn fnv1a64_update(hash: u64, bytes: &[u8]) -> u64 {
    let mut hash = hash;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The decoded fixed-size header of a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version (currently always [`SNAPSHOT_VERSION`]).
    pub version: u16,
    /// Number of nodes in the stored topology.
    pub node_count: u64,
    /// Number of undirected edges in the stored topology.
    pub edge_count: u64,
    /// Number of shards in the manifest (0 when the file has no manifest).
    pub shard_count: u32,
    /// Whether a shard manifest section is present.
    pub has_shard_manifest: bool,
    /// Whether a provenance section is present.
    pub has_provenance: bool,
    /// Whether the provenance section ends with an origin tag (absent in older files).
    pub has_origin: bool,
}

/// One directed cross-shard adjacency entry of a stored shard manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryRecord {
    /// The node inside the shard that owns this record.
    pub source: u32,
    /// Its neighbor in another shard.
    pub target: u32,
    /// The shard that owns `target`.
    pub target_shard: u32,
}

/// One shard of a stored manifest: a contiguous node range plus its boundary table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// First global node id of the shard.
    pub start: u64,
    /// One past the last global node id of the shard.
    pub end: u64,
    /// The directed adjacency entries leaving the shard, in frozen adjacency order.
    pub boundary: Vec<BoundaryRecord>,
}

/// How a snapshot's topology came to exist: drawn offline by a generator, or frozen
/// from a live overlay-protocol run.
///
/// The distinction matters downstream: a generator file's label names a closed-form
/// topology family, while a live-overlay file's degrees *emerged* from peers following
/// a local attachment rule — `params` records the protocol knobs (active-view cap,
/// attachment walks, churn model) that shaped it. Older files carry no tag and decode
/// to `origin: None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotOrigin {
    /// Drawn by an offline topology generator (`sfo snapshot build`).
    Generator,
    /// Frozen from a live membership-protocol run (`DynamicsSpec::Live` or
    /// `sfo overlay`).
    LiveOverlay {
        /// Human-readable protocol parameters, e.g. `"k_c=20, walks=2, peers=1000"`.
        params: String,
    },
}

impl fmt::Display for SnapshotOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotOrigin::Generator => write!(f, "generator"),
            SnapshotOrigin::LiveOverlay { params } => write!(f, "live-overlay ({params})"),
        }
    }
}

/// Where a snapshot came from and how to continue its RNG stream.
///
/// Written by `sfo snapshot build`, read by the scenario runner: `label` is the curve
/// label (and therefore the stream-family salt) of the generating topology spec, and
/// `sweep_seed` is the `next_u64()` drawn from the generation stream immediately after
/// the topology was built — exactly the value the engine-batched sweep path uses as its
/// batch seed, so a sweep against the file is byte-identical to one against the inline
/// generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Curve label of the generating topology spec (doubles as the stream-family salt).
    pub label: String,
    /// Stub count `m` of the generating spec (resolves `k_min: None` searches).
    pub m: u64,
    /// Hard cutoff of the generating spec (`None` = unbounded).
    pub cutoff: Option<u64>,
    /// Master seed of the generating scenario.
    pub seed: u64,
    /// Which realization of the generating scenario this topology is.
    pub realization: u64,
    /// The generation stream's next `u64` after the topology was drawn — the batch seed
    /// of a snapshot-backed sweep.
    pub sweep_seed: u64,
    /// How the topology came to exist (`None` in files written before the origin tag).
    pub origin: Option<SnapshotOrigin>,
}

/// A decoded snapshot: the topology plus its optional sections.
///
/// # On-disk layout (version 1, all integers little-endian)
///
/// | offset | size | field |
/// |-------:|-----:|-------|
/// | 0      | 4    | magic `"SFOS"` |
/// | 4      | 2    | version (`u16`, = 1) |
/// | 6      | 2    | flags (`u16`: bit 0 shard manifest, bit 1 provenance, bit 2 origin) |
/// | 8      | 8    | `node_count` (`u64`) |
/// | 16     | 8    | `edge_count` (`u64`, undirected) |
/// | 24     | 4    | `shard_count` (`u32`, 0 without a manifest) |
/// | 28     | 4    | reserved, must be 0 |
/// | 32     | …    | provenance section, if flagged |
/// | …      | …    | `offsets`: `(node_count + 1) × u32` |
/// | …      | …    | `targets`: `2 × edge_count × u32` |
/// | …      | …    | shard manifest, if flagged |
/// | end−8  | 8    | FNV-1a 64 checksum of every preceding byte |
///
/// The provenance section is `label_len (u32)`, the UTF-8 label bytes, zero padding to
/// the next 4-byte boundary (0–3 bytes; readers require it to be zero), then `m`,
/// `cutoff` (`u64::MAX` = unbounded), `seed`, `realization`, `sweep_seed`, each `u64`.
/// When the origin flag (bit 2) is set, the provenance section continues with an origin
/// tag: `kind (u32`, 0 = generator, 1 = live-overlay`)`, `params_len (u32)`, the UTF-8
/// params bytes, and zero padding to the next 4-byte boundary — so the arrays stay
/// 4-aligned. The origin flag requires the provenance flag; files without it decode to
/// `origin: None`, which keeps every pre-origin snapshot loading unchanged.
/// The shard manifest is `shard_count` records of `start (u64)`, `end (u64)`,
/// `boundary_len (u64)` and `boundary_len` boundary entries of `source`, `target`,
/// `target_shard` (each `u32`). Placing provenance *before* the arrays keeps
/// [`read_meta`] a small prefix read; padding the label keeps the `offsets`/`targets`
/// sections on 4-byte file offsets, which is what lets the zero-copy mmap loader
/// ([`SnapshotFile::load_mmap`]) borrow them in place (see `docs/FORMATS.md`).
///
/// # Example
///
/// ```
/// use sfo_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("sfos-doc-example");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("ring.sfos");
/// let mut g = Graph::with_nodes(4);
/// for i in 0..4 {
///     g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 4))?;
/// }
/// let frozen = g.freeze();
/// frozen.save(&path)?;
/// assert_eq!(sfo_graph::CsrGraph::load(&path)?, frozen);
/// # std::fs::remove_file(&path)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// The stored topology.
    pub csr: CsrGraph,
    /// The shard manifest, when the file was written by a sharded store.
    pub shards: Option<Vec<ShardRecord>>,
    /// The provenance record, when the file was written by `sfo snapshot build`.
    pub provenance: Option<Provenance>,
}

impl SnapshotFile {
    /// Wraps a plain topology with no optional sections.
    pub fn plain(csr: CsrGraph) -> Self {
        SnapshotFile {
            csr,
            shards: None,
            provenance: None,
        }
    }

    /// Returns the header this snapshot encodes to.
    pub fn header(&self) -> SnapshotHeader {
        SnapshotHeader {
            version: SNAPSHOT_VERSION,
            node_count: self.csr.node_count() as u64,
            edge_count: self.csr.edge_count() as u64,
            shard_count: self.shards.as_ref().map_or(0, |s| s.len() as u32),
            has_shard_manifest: self.shards.is_some(),
            has_provenance: self.provenance.is_some(),
            has_origin: self.provenance.as_ref().is_some_and(|p| p.origin.is_some()),
        }
    }

    /// Encodes the snapshot to its on-disk byte representation, including the trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(&self.csr, self.shards.as_deref(), self.provenance.as_ref())
    }

    /// Writes the snapshot to `path`, replacing any existing file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        write_bytes(path.as_ref(), &self.to_bytes())
    }

    /// Reads and fully validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be read, and every decoding
    /// error of [`SnapshotFile::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, &e))?;
        SnapshotFile::from_bytes(&bytes)
    }

    /// Like [`SnapshotFile::load`], but borrows the `offsets`/`targets` arrays straight
    /// out of a read-only file mapping instead of copying them into the heap.
    ///
    /// Verify once, then borrow: the checksum and the full structural validation pass
    /// run against the mapped bytes exactly as the read-based loader runs them against
    /// a heap copy, after which the returned [`CsrGraph`] traverses the page cache in
    /// place ([`CsrGraph::is_mapped`] reports which storage a load produced). The
    /// fallbacks, in order:
    ///
    /// * the mapping cannot be established (unsupported filesystem, empty file, …) —
    ///   retry as [`SnapshotFile::load`], so callers see the reader's usual errors;
    /// * the array sections are not 4-byte-aligned in the file (files written by this
    ///   build always are, via label padding; see `docs/FORMATS.md`) — decode an owned
    ///   copy from the *same* mapped bytes, no second read of the file.
    ///
    /// Decoding errors — bad magic, checksum mismatch, structural corruption — are
    /// never masked by either fallback.
    ///
    /// # Errors
    ///
    /// The same errors as [`SnapshotFile::load`].
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        use std::sync::Arc;
        let path = path.as_ref();
        let file = match crate::mmap::MappedFile::map(path) {
            Ok(file) => Arc::new(file),
            Err(_) => return Self::load(path),
        };
        let bytes = file.bytes();
        let layout = decode_layout(bytes)?;
        match crate::mmap::MappedCsr::new(
            Arc::clone(&file),
            layout.offsets.clone(),
            layout.targets.clone(),
        ) {
            Some(mapped) => {
                validate_topology(mapped.offsets(), mapped.targets())?;
                if let Some(shards) = &layout.shards {
                    validate_manifest(shards, mapped.offsets(), mapped.targets())?;
                }
                Ok(SnapshotFile {
                    csr: CsrGraph::from_mapped(mapped),
                    shards: layout.shards,
                    provenance: layout.provenance,
                })
            }
            None => build_owned(bytes, layout),
        }
    }

    /// Read-based stand-in on targets without mmap support: same validation, same
    /// result, owned storage.
    #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::load(path)
    }
}

/// Writes `bytes` to `path`, mapping failures to [`SnapshotError::Io`].
pub(crate) fn write_bytes(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    std::fs::write(path, bytes).map_err(|e| SnapshotError::io(path, &e))
}

/// Number of zero bytes written after a provenance label so the section that follows
/// starts on a 4-byte boundary. Readers require the pad to be zero.
fn label_pad(label_len: usize) -> usize {
    (4 - label_len % 4) % 4
}

/// Encodes a topology plus optional sections to the on-disk byte representation —
/// the borrowing core behind [`SnapshotFile::to_bytes`] and [`CsrGraph::save`].
pub fn encode(
    csr: &CsrGraph,
    shards: Option<&[ShardRecord]>,
    provenance: Option<&Provenance>,
) -> Vec<u8> {
    let node_count = csr.node_count();
    let edge_count = csr.edge_count();
    let mut flags = 0u16;
    if shards.is_some() {
        flags |= FLAG_SHARD_MANIFEST;
    }
    if provenance.is_some() {
        flags |= FLAG_PROVENANCE;
    }
    if provenance.is_some_and(|p| p.origin.is_some()) {
        flags |= FLAG_ORIGIN;
    }

    let mut out =
        Vec::with_capacity(HEADER_LEN + TRAILER_LEN + 4 * (node_count + 1) + 8 * edge_count + 256);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(node_count as u64).to_le_bytes());
    out.extend_from_slice(&(edge_count as u64).to_le_bytes());
    let shard_count = shards.map_or(0u32, |s| s.len() as u32);
    out.extend_from_slice(&shard_count.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());

    if let Some(provenance) = provenance {
        let label = provenance.label.as_bytes();
        out.extend_from_slice(&(label.len() as u32).to_le_bytes());
        out.extend_from_slice(label);
        // Zero-pad the label so the offsets/targets arrays that follow start on a
        // 4-byte file offset — the precondition for borrowing them out of a mapping.
        out.extend_from_slice(&[0u8; 3][..label_pad(label.len())]);
        out.extend_from_slice(&provenance.m.to_le_bytes());
        out.extend_from_slice(&provenance.cutoff.unwrap_or(u64::MAX).to_le_bytes());
        out.extend_from_slice(&provenance.seed.to_le_bytes());
        out.extend_from_slice(&provenance.realization.to_le_bytes());
        out.extend_from_slice(&provenance.sweep_seed.to_le_bytes());
        if let Some(origin) = &provenance.origin {
            let (kind, params) = match origin {
                SnapshotOrigin::Generator => (0u32, ""),
                SnapshotOrigin::LiveOverlay { params } => (1u32, params.as_str()),
            };
            let params = params.as_bytes();
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&(params.len() as u32).to_le_bytes());
            out.extend_from_slice(params);
            // The origin tail is padded like the label, so the arrays stay 4-aligned.
            out.extend_from_slice(&[0u8; 3][..label_pad(params.len())]);
        }
    }

    let (offsets, targets) = csr.raw_parts();
    for &offset in offsets {
        out.extend_from_slice(&offset.to_le_bytes());
    }
    for &target in targets {
        out.extend_from_slice(&target.as_u32().to_le_bytes());
    }

    if let Some(shards) = shards {
        for shard in shards {
            out.extend_from_slice(&shard.start.to_le_bytes());
            out.extend_from_slice(&shard.end.to_le_bytes());
            out.extend_from_slice(&(shard.boundary.len() as u64).to_le_bytes());
            for edge in &shard.boundary {
                out.extend_from_slice(&edge.source.to_le_bytes());
                out.extend_from_slice(&edge.target.to_le_bytes());
                out.extend_from_slice(&edge.target_shard.to_le_bytes());
            }
        }
    }

    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

impl SnapshotFile {
    /// Decodes a snapshot from its on-disk byte representation.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on wrong magic, an unsupported version, unknown
    /// flags, truncation, trailing bytes, a checksum mismatch, or any structural
    /// inconsistency between the header, the arrays, and the manifest.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let layout = decode_layout(bytes)?;
        build_owned(bytes, layout)
    }
}

/// The fully-verified shape of a snapshot body, before the arrays are materialized.
///
/// [`decode_layout`] is the single parse both loaders share; it records *where* the
/// `offsets`/`targets` sections live rather than copying them, so
/// [`SnapshotFile::from_bytes`] can collect them into owned vectors while the mmap
/// loader borrows the same ranges in place.
struct DecodedLayout {
    provenance: Option<Provenance>,
    /// Absolute byte range of the `offsets` section within the input bytes.
    offsets: Range<usize>,
    /// Absolute byte range of the `targets` section within the input bytes.
    targets: Range<usize>,
    shards: Option<Vec<ShardRecord>>,
}

/// Verifies the checksum and decodes everything except the arrays themselves: header,
/// provenance, array section bounds, shard manifest, and the no-trailing-bytes
/// invariant. The topology/manifest *content* validation runs in the caller once the
/// arrays are materialized (owned) or borrowed (mapped).
fn decode_layout(bytes: &[u8]) -> Result<DecodedLayout, SnapshotError> {
    let header = decode_header(bytes)?;
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        // decode_header only needs the fixed prefix; a file cut between the header
        // and the trailer still has to be rejected before the checksum is "read".
        return Err(SnapshotError::Truncated { section: "trailer" });
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - TRAILER_LEN..]
            .try_into()
            .expect("trailer is 8 bytes"),
    );
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut cursor = Cursor::new(&body[HEADER_LEN..]);
    let provenance = if header.has_provenance {
        Some(cursor.provenance(header.has_origin)?)
    } else {
        None
    };

    let node_count = usize::try_from(header.node_count)
        .ok()
        .filter(|&n| n < u32::MAX as usize)
        .ok_or_else(|| SnapshotError::corrupt("node count exceeds the u32 index space"))?;
    let entry_count = header
        .edge_count
        .checked_mul(2)
        .and_then(|n| usize::try_from(n).ok())
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or_else(|| SnapshotError::corrupt("edge count exceeds the u32 index space"))?;

    // The array sections are bounds-checked as whole byte ranges, never element-wise:
    // `take` proves the body holds them before anything downstream allocates, so the
    // untrusted header counts can never size an allocation the file cannot back.
    let array_len = |elements: usize, section: &'static str| {
        elements
            .checked_mul(4)
            .ok_or(SnapshotError::Truncated { section })
    };
    let offsets_len = array_len(node_count + 1, "offsets")?;
    let offsets_start = HEADER_LEN + cursor.position();
    cursor.take(offsets_len, "offsets")?;
    let targets_len = array_len(entry_count, "targets")?;
    let targets_start = HEADER_LEN + cursor.position();
    cursor.take(targets_len, "targets")?;

    let shards = if header.has_shard_manifest {
        // Every record is at least 24 bytes, so a shard count the remaining bytes
        // cannot possibly hold is rejected *before* sizing any allocation by it —
        // lengths read from the file are untrusted until proven affordable.
        if header.shard_count as u64 > (cursor.remaining() / 24) as u64 {
            return Err(SnapshotError::Truncated {
                section: "shard manifest",
            });
        }
        let mut shards = Vec::with_capacity(header.shard_count as usize);
        for _ in 0..header.shard_count {
            let start = cursor.u64("shard manifest")?;
            let end = cursor.u64("shard manifest")?;
            let boundary_len = cursor.u64("shard manifest")?;
            let boundary_len = usize::try_from(boundary_len)
                .ok()
                .filter(|&n| n <= entry_count)
                .ok_or_else(|| {
                    SnapshotError::corrupt("shard boundary table longer than the adjacency itself")
                })?;
            let mut boundary = Vec::with_capacity(boundary_len);
            for _ in 0..boundary_len {
                boundary.push(BoundaryRecord {
                    source: cursor.u32("shard manifest")?,
                    target: cursor.u32("shard manifest")?,
                    target_shard: cursor.u32("shard manifest")?,
                });
            }
            shards.push(ShardRecord {
                start,
                end,
                boundary,
            });
        }
        Some(shards)
    } else {
        None
    };

    if !cursor.is_empty() {
        return Err(SnapshotError::corrupt(format!(
            "{} undeclared bytes between the last section and the trailer",
            cursor.remaining()
        )));
    }

    Ok(DecodedLayout {
        provenance,
        offsets: offsets_start..offsets_start + offsets_len,
        targets: targets_start..targets_start + targets_len,
        shards,
    })
}

/// Materializes a verified layout into an owned snapshot: collect the arrays from
/// contiguous chunks (loading must stay cheaper than regenerating — see the
/// snapshot_io bench), then run the full structural validation over them.
fn build_owned(bytes: &[u8], layout: DecodedLayout) -> Result<SnapshotFile, SnapshotError> {
    let offsets: Vec<u32> = bytes[layout.offsets.clone()]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let targets: Vec<NodeId> = bytes[layout.targets.clone()]
        .chunks_exact(4)
        .map(|c| NodeId::from(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
        .collect();
    validate_topology(&offsets, &targets)?;
    if let Some(shards) = &layout.shards {
        validate_manifest(shards, &offsets, &targets)?;
    }
    Ok(SnapshotFile {
        csr: CsrGraph::from_raw_parts(offsets, targets),
        shards: layout.shards,
        provenance: layout.provenance,
    })
}

/// Reads only the header and (if present) provenance of a snapshot file — a small
/// prefix read that touches none of the arrays and does **not** verify the checksum.
///
/// This is what spec validation and `sfo snapshot inspect` use to answer "what is this
/// file?" without paying for a full load; anything that will traverse the topology goes
/// through [`SnapshotFile::load`], which verifies everything.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the file cannot be opened and the header or
/// provenance decoding errors of the full reader.
pub fn read_meta(
    path: impl AsRef<Path>,
) -> Result<(SnapshotHeader, Option<Provenance>), SnapshotError> {
    let path = path.as_ref();
    let mut file = std::fs::File::open(path).map_err(|e| SnapshotError::io(path, &e))?;
    let mut header_bytes = [0u8; HEADER_LEN];
    file.read_exact(&mut header_bytes)
        .map_err(|_| SnapshotError::Truncated { section: "header" })?;
    let header = decode_header(&header_bytes)?;
    if !header.has_provenance {
        return Ok((header, None));
    }
    let mut len_bytes = [0u8; 4];
    file.read_exact(&mut len_bytes)
        .map_err(|_| SnapshotError::Truncated {
            section: "provenance",
        })?;
    let label_len = u32::from_le_bytes(len_bytes) as usize;
    // label_len is untrusted: bound it by the actual file size before allocating, so a
    // corrupt length field cannot request a multi-gigabyte buffer.
    let file_len = file
        .metadata()
        .map_err(|e| SnapshotError::io(path, &e))?
        .len();
    let body_len = label_len + label_pad(label_len) + 5 * 8;
    if body_len as u64 > file_len.saturating_sub((HEADER_LEN + 4) as u64) {
        return Err(SnapshotError::Truncated {
            section: "provenance",
        });
    }
    let mut rest = vec![0u8; body_len];
    file.read_exact(&mut rest)
        .map_err(|_| SnapshotError::Truncated {
            section: "provenance",
        })?;
    let mut cursor = Cursor::new(&rest);
    let mut provenance = cursor.provenance_body(label_len)?;
    if header.has_origin {
        // The origin tail: kind + params_len, then params bounded by the file size
        // (params_len is as untrusted as label_len above).
        let mut prefix = [0u8; 8];
        file.read_exact(&mut prefix)
            .map_err(|_| SnapshotError::Truncated { section: "origin" })?;
        let params_len = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes")) as usize;
        let tail_len = params_len + label_pad(params_len);
        let consumed = (HEADER_LEN + 4 + body_len + 8) as u64;
        if tail_len as u64 > file_len.saturating_sub(consumed) {
            return Err(SnapshotError::Truncated { section: "origin" });
        }
        let mut origin_bytes = prefix.to_vec();
        origin_bytes.resize(8 + tail_len, 0);
        file.read_exact(&mut origin_bytes[8..])
            .map_err(|_| SnapshotError::Truncated { section: "origin" })?;
        provenance.origin = Some(Cursor::new(&origin_bytes).origin()?);
    }
    Ok((header, Some(provenance)))
}

/// Reads the identity hash of a snapshot file: the FNV-1a 64 checksum stored in its
/// trailer, which (for files that pass verification) is a content hash of everything
/// before it — two valid snapshots share an identity exactly when they are byte-for-byte
/// the same file.
///
/// This is the value `sfo-net` workers echo in their `Hello` frame and dispatchers
/// compare against the snapshot a scenario names, refusing to split work across a worker
/// that serves a different realization. Only the header prefix and the trailer are read;
/// like [`read_meta`], this does **not** verify the checksum against the arrays —
/// the serving process does that once at load time via [`SnapshotFile::load`].
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the file cannot be opened, the header errors of
/// the full reader (wrong magic, unsupported version, unknown flags), and
/// [`SnapshotError::Truncated`] when the file is too short to hold a trailer.
pub fn read_identity(path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
    let path = path.as_ref();
    let mut file = std::fs::File::open(path).map_err(|e| SnapshotError::io(path, &e))?;
    let mut header_bytes = Vec::with_capacity(HEADER_LEN);
    file.by_ref()
        .take(HEADER_LEN as u64)
        .read_to_end(&mut header_bytes)
        .map_err(|e| SnapshotError::io(path, &e))?;
    decode_header(&header_bytes)?;
    let len = file
        .metadata()
        .map_err(|e| SnapshotError::io(path, &e))?
        .len();
    if len < (HEADER_LEN + TRAILER_LEN) as u64 {
        return Err(SnapshotError::Truncated { section: "trailer" });
    }
    use std::io::{Seek, SeekFrom};
    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
        .map_err(|e| SnapshotError::io(path, &e))?;
    let mut trailer = [0u8; TRAILER_LEN];
    file.read_exact(&mut trailer)
        .map_err(|_| SnapshotError::Truncated { section: "trailer" })?;
    Ok(u64::from_le_bytes(trailer))
}

/// Absolute byte ranges of every section of a snapshot file.
///
/// Built by [`section_layout`] from a prefix read — header plus (when flagged) the
/// 4-byte provenance label length — and the file size; the arrays are never read and
/// the checksum is not verified. This is what `sfo snapshot inspect` prints to answer
/// "where does each section live and how big is it" in O(header) time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionLayout {
    /// The decoded fixed-size header.
    pub header: SnapshotHeader,
    /// Byte range of the fixed-size header (always `0..32`).
    pub header_bytes: Range<u64>,
    /// Byte range of the provenance section, when flagged.
    pub provenance_bytes: Option<Range<u64>>,
    /// Byte range of the `offsets` array: `(node_count + 1) × u32`.
    pub offsets_bytes: Range<u64>,
    /// Byte range of the `targets` array: `2 × edge_count × u32`.
    pub targets_bytes: Range<u64>,
    /// Byte range of the shard manifest, when flagged. Its internal record boundaries
    /// are variable-length, so only the section extent is computable from the prefix.
    pub manifest_bytes: Option<Range<u64>>,
    /// Byte range of the checksum trailer (the last 8 bytes).
    pub trailer_bytes: Range<u64>,
    /// Total file size in bytes.
    pub file_len: u64,
}

impl SectionLayout {
    /// `true` when both array sections sit on 4-byte file offsets — the structural
    /// precondition for [`SnapshotFile::load_mmap`] to borrow them in place instead of
    /// taking the owned fallback. Files written by this build always qualify.
    pub fn zero_copy_eligible(&self) -> bool {
        self.offsets_bytes.start.is_multiple_of(4) && self.targets_bytes.start.is_multiple_of(4)
    }
}

/// Computes the [`SectionLayout`] of a snapshot file from a prefix read.
///
/// Like [`read_meta`], this touches none of the arrays and does **not** verify the
/// checksum; anything that will traverse the topology goes through
/// [`SnapshotFile::load`] or [`SnapshotFile::load_mmap`], which verify everything.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the file cannot be opened, the header errors of
/// the full reader, and [`SnapshotError::Truncated`]/[`SnapshotError::Corrupt`] when
/// the file size cannot hold the sections the header declares.
pub fn section_layout(path: impl AsRef<Path>) -> Result<SectionLayout, SnapshotError> {
    let path = path.as_ref();
    let mut file = std::fs::File::open(path).map_err(|e| SnapshotError::io(path, &e))?;
    let mut header_bytes = [0u8; HEADER_LEN];
    file.read_exact(&mut header_bytes)
        .map_err(|_| SnapshotError::Truncated { section: "header" })?;
    let header = decode_header(&header_bytes)?;
    let file_len = file
        .metadata()
        .map_err(|e| SnapshotError::io(path, &e))?
        .len();

    let provenance_bytes = if header.has_provenance {
        let mut len_bytes = [0u8; 4];
        file.read_exact(&mut len_bytes)
            .map_err(|_| SnapshotError::Truncated {
                section: "provenance",
            })?;
        let label_len = u32::from_le_bytes(len_bytes) as usize;
        let mut section_len = (4 + label_len + label_pad(label_len) + 5 * 8) as u64;
        if header.has_origin {
            // The origin tail is variable-length too: skip to its kind/params_len
            // prefix and fold its extent into the provenance section.
            use std::io::{Seek, SeekFrom};
            file.seek(SeekFrom::Current(
                (label_len + label_pad(label_len) + 5 * 8) as i64,
            ))
            .map_err(|e| SnapshotError::io(path, &e))?;
            let mut origin_prefix = [0u8; 8];
            file.read_exact(&mut origin_prefix)
                .map_err(|_| SnapshotError::Truncated { section: "origin" })?;
            let params_len =
                u32::from_le_bytes(origin_prefix[4..8].try_into().expect("4 bytes")) as usize;
            section_len += (8 + params_len + label_pad(params_len)) as u64;
        }
        Some(HEADER_LEN as u64..HEADER_LEN as u64 + section_len)
    } else {
        None
    };

    let truncated = |section: &'static str| SnapshotError::Truncated { section };
    let offsets_start = provenance_bytes
        .as_ref()
        .map_or(HEADER_LEN as u64, |p| p.end);
    let offsets_end = header
        .node_count
        .checked_add(1)
        .and_then(|n| n.checked_mul(4))
        .and_then(|len| offsets_start.checked_add(len))
        .ok_or_else(|| truncated("offsets"))?;
    let targets_end = header
        .edge_count
        .checked_mul(8)
        .and_then(|len| offsets_end.checked_add(len))
        .ok_or_else(|| truncated("targets"))?;
    if targets_end + TRAILER_LEN as u64 > file_len {
        return Err(truncated("targets"));
    }
    let trailer_start = file_len - TRAILER_LEN as u64;

    let manifest_bytes = if header.has_shard_manifest {
        // Each of the shard_count records is at least 24 bytes.
        if trailer_start - targets_end < header.shard_count as u64 * 24 {
            return Err(truncated("shard manifest"));
        }
        Some(targets_end..trailer_start)
    } else if targets_end != trailer_start {
        return Err(SnapshotError::corrupt(format!(
            "{} undeclared bytes between the last section and the trailer",
            trailer_start - targets_end
        )));
    } else {
        None
    };

    Ok(SectionLayout {
        header,
        header_bytes: 0..HEADER_LEN as u64,
        provenance_bytes,
        offsets_bytes: offsets_start..offsets_end,
        targets_bytes: offsets_end..targets_end,
        manifest_bytes,
        trailer_bytes: trailer_start..file_len,
        file_len,
    })
}

/// Decodes and sanity-checks the fixed-size header prefix.
fn decode_header(bytes: &[u8]) -> Result<SnapshotHeader, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() < 4 {
            return Err(SnapshotError::Truncated { section: "header" });
        }
        let found: [u8; 4] = bytes[..4].try_into().expect("4-byte slice");
        if found != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found });
        }
        return Err(SnapshotError::Truncated { section: "header" });
    }
    let found: [u8; 4] = bytes[..4].try_into().expect("4-byte slice");
    if found != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic { found });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if flags & !KNOWN_FLAGS != 0 {
        return Err(SnapshotError::corrupt(format!(
            "unknown flag bits {:#06x} for version {SNAPSHOT_VERSION}",
            flags & !KNOWN_FLAGS
        )));
    }
    let node_count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let edge_count = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let shard_count = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let reserved = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
    if reserved != 0 {
        return Err(SnapshotError::corrupt("reserved header bytes are not zero"));
    }
    let has_shard_manifest = flags & FLAG_SHARD_MANIFEST != 0;
    if has_shard_manifest && shard_count == 0 {
        return Err(SnapshotError::corrupt(
            "shard manifest flagged but shard count is zero",
        ));
    }
    if !has_shard_manifest && shard_count != 0 {
        return Err(SnapshotError::corrupt(
            "shard count set but no shard manifest flagged",
        ));
    }
    let has_provenance = flags & FLAG_PROVENANCE != 0;
    let has_origin = flags & FLAG_ORIGIN != 0;
    if has_origin && !has_provenance {
        return Err(SnapshotError::corrupt(
            "origin tag flagged but no provenance section",
        ));
    }
    Ok(SnapshotHeader {
        version,
        node_count,
        edge_count,
        shard_count,
        has_shard_manifest,
        has_provenance,
        has_origin,
    })
}

/// Structural validation of the decoded CSR arrays: everything `CsrGraph` assumes must
/// be proven here, so a loaded snapshot can never panic downstream.
fn validate_topology(offsets: &[u32], targets: &[NodeId]) -> Result<(), SnapshotError> {
    let node_count = offsets.len() - 1;
    if offsets[0] != 0 {
        return Err(SnapshotError::corrupt("offsets do not start at zero"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::corrupt("offsets are not monotone"));
    }
    if offsets[node_count] as usize != targets.len() {
        return Err(SnapshotError::corrupt(
            "final offset does not match the target array length",
        ));
    }
    // One sorted copy of every row serves all remaining checks: range and self-loop
    // scans, duplicate detection (adjacent equals), and mirror symmetry (for every
    // entry (u, v), binary-search u in v's sorted row). Hard-cutoff topologies keep
    // rows short, so this is O(E log k_max) — far cheaper than sorting the global
    // directed edge list, and load time must stay below regeneration time.
    let mut sorted_rows = targets.to_vec();
    for node in 0..node_count {
        let row = &mut sorted_rows[offsets[node] as usize..offsets[node + 1] as usize];
        row.sort_unstable();
        for &neighbor in row.iter() {
            if neighbor.index() >= node_count {
                return Err(SnapshotError::corrupt(format!(
                    "node {node} lists out-of-range neighbor {neighbor}"
                )));
            }
            if neighbor.index() == node {
                return Err(SnapshotError::corrupt(format!(
                    "node {node} has a self-loop"
                )));
            }
        }
        if row.windows(2).any(|w| w[0] == w[1]) {
            return Err(SnapshotError::corrupt(format!(
                "node {node} lists a neighbor twice (parallel edge)"
            )));
        }
    }
    for node in 0..node_count {
        for &neighbor in &targets[offsets[node] as usize..offsets[node + 1] as usize] {
            let i = neighbor.index();
            let mirror_row = &sorted_rows[offsets[i] as usize..offsets[i + 1] as usize];
            if mirror_row.binary_search(&NodeId::new(node)).is_err() {
                return Err(SnapshotError::corrupt(format!(
                    "adjacency is not mirrored: n{node} lists {neighbor} but not vice versa"
                )));
            }
        }
    }
    Ok(())
}

/// Validates a shard manifest against the topology it ships with: the ranges must tile
/// `0..node_count` contiguously, and every shard's boundary table must be *exactly* the
/// cross-shard adjacency entries its node range produces, in frozen adjacency order.
///
/// The recomputation makes the manifest trustworthy on its own: `sfo snapshot inspect`
/// and a shard-host deployment can read boundary fractions and routing tables straight
/// from the file without re-deriving the partition.
fn validate_manifest(
    shards: &[ShardRecord],
    offsets: &[u32],
    targets: &[NodeId],
) -> Result<(), SnapshotError> {
    let node_count = offsets.len() - 1;
    let mut expected_start = 0u64;
    for (s, shard) in shards.iter().enumerate() {
        if shard.start != expected_start || shard.end < shard.start {
            return Err(SnapshotError::corrupt(format!(
                "shard {s} range [{}, {}) does not tile the node ids contiguously",
                shard.start, shard.end
            )));
        }
        expected_start = shard.end;
    }
    if expected_start != node_count as u64 {
        return Err(SnapshotError::corrupt(
            "shard ranges do not cover every node",
        ));
    }
    // Ranges tile 0..node_count, so the owner of a node is findable by binary search on
    // the shard starts; validate_topology has already proven every target in range.
    let owner_of = |node: u32| -> u32 {
        shards.partition_point(|shard| shard.start <= node as u64) as u32 - 1
    };
    for (s, shard) in shards.iter().enumerate() {
        let mut stored = shard.boundary.iter();
        for node in shard.start..shard.end {
            let node = node as usize;
            for &neighbor in &targets[offsets[node] as usize..offsets[node + 1] as usize] {
                let target_shard = owner_of(neighbor.as_u32());
                if target_shard as usize == s {
                    continue;
                }
                let expected = BoundaryRecord {
                    source: node as u32,
                    target: neighbor.as_u32(),
                    target_shard,
                };
                if stored.next() != Some(&expected) {
                    return Err(SnapshotError::corrupt(format!(
                        "shard {s} boundary table does not list the cross-shard entry \
                         n{node}->{neighbor} its rows produce"
                    )));
                }
            }
        }
        if stored.next().is_some() {
            return Err(SnapshotError::corrupt(format!(
                "shard {s} boundary table lists entries its rows do not produce"
            )));
        }
    }
    Ok(())
}

/// A bounds-checked little-endian reader over one section of the body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize, section: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(SnapshotError::Truncated { section })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, section)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().expect("8 bytes"),
        ))
    }

    fn provenance(&mut self, with_origin: bool) -> Result<Provenance, SnapshotError> {
        let label_len = self.u32("provenance")? as usize;
        let mut provenance = self.provenance_body(label_len)?;
        if with_origin {
            provenance.origin = Some(self.origin()?);
        }
        Ok(provenance)
    }

    fn origin(&mut self) -> Result<SnapshotOrigin, SnapshotError> {
        let kind = self.u32("origin")?;
        let params_len = self.u32("origin")? as usize;
        let params_bytes = self.take(params_len, "origin")?;
        let params = std::str::from_utf8(params_bytes)
            .map_err(|_| SnapshotError::corrupt("origin params are not valid UTF-8"))?
            .to_string();
        let pad = self.take(label_pad(params_len), "origin")?;
        if pad.iter().any(|&b| b != 0) {
            return Err(SnapshotError::corrupt("origin params padding is not zero"));
        }
        match kind {
            0 if params.is_empty() => Ok(SnapshotOrigin::Generator),
            0 => Err(SnapshotError::corrupt(
                "generator origin carries protocol params",
            )),
            1 => Ok(SnapshotOrigin::LiveOverlay { params }),
            other => Err(SnapshotError::corrupt(format!(
                "unknown origin kind {other}"
            ))),
        }
    }

    fn provenance_body(&mut self, label_len: usize) -> Result<Provenance, SnapshotError> {
        let label_bytes = self.take(label_len, "provenance")?;
        let label = std::str::from_utf8(label_bytes)
            .map_err(|_| SnapshotError::corrupt("provenance label is not valid UTF-8"))?
            .to_string();
        let pad = self.take(label_pad(label_len), "provenance")?;
        if pad.iter().any(|&b| b != 0) {
            return Err(SnapshotError::corrupt(
                "provenance label padding is not zero",
            ));
        }
        let m = self.u64("provenance")?;
        let cutoff = match self.u64("provenance")? {
            u64::MAX => None,
            value => Some(value),
        };
        Ok(Provenance {
            label,
            m,
            cutoff,
            seed: self.u64("provenance")?,
            realization: self.u64("provenance")?,
            sweep_seed: self.u64("provenance")?,
            origin: None,
        })
    }

    fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> CsrGraph {
        let mut g = Graph::with_nodes(6);
        for i in 0..6 {
            g.add_edge(n(i), n((i + 1) % 6)).unwrap();
        }
        g.add_edge(n(0), n(3)).unwrap();
        g.freeze()
    }

    fn provenance() -> Provenance {
        Provenance {
            label: "PA, m=2, k_c=10".to_string(),
            m: 2,
            cutoff: Some(10),
            seed: 42,
            realization: 0,
            sweep_seed: 0xDEAD_BEEF_CAFE_F00D,
            origin: None,
        }
    }

    #[test]
    fn plain_snapshot_round_trips_through_bytes() {
        let csr = sample();
        let bytes = SnapshotFile::plain(csr.clone()).to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.csr, csr);
        assert!(back.shards.is_none());
        assert!(back.provenance.is_none());
    }

    #[test]
    fn empty_and_isolated_graphs_round_trip() {
        for graph in [Graph::new(), Graph::with_nodes(5)] {
            let csr = graph.freeze();
            let bytes = SnapshotFile::plain(csr.clone()).to_bytes();
            assert_eq!(SnapshotFile::from_bytes(&bytes).unwrap().csr, csr);
        }
    }

    #[test]
    fn provenance_and_manifest_round_trip() {
        let csr = sample();
        let shards = vec![
            ShardRecord {
                start: 0,
                end: 3,
                boundary: vec![
                    BoundaryRecord {
                        source: 0,
                        target: 5,
                        target_shard: 1,
                    },
                    BoundaryRecord {
                        source: 0,
                        target: 3,
                        target_shard: 1,
                    },
                    BoundaryRecord {
                        source: 2,
                        target: 3,
                        target_shard: 1,
                    },
                ],
            },
            ShardRecord {
                start: 3,
                end: 6,
                boundary: vec![
                    BoundaryRecord {
                        source: 3,
                        target: 2,
                        target_shard: 0,
                    },
                    BoundaryRecord {
                        source: 3,
                        target: 0,
                        target_shard: 0,
                    },
                    BoundaryRecord {
                        source: 5,
                        target: 0,
                        target_shard: 0,
                    },
                ],
            },
        ];
        let file = SnapshotFile {
            csr,
            shards: Some(shards),
            provenance: Some(provenance()),
        };
        let back = SnapshotFile::from_bytes(&file.to_bytes()).unwrap();
        assert_eq!(back, file);
        let header = back.header();
        assert_eq!(header.shard_count, 2);
        assert!(header.has_shard_manifest);
        assert!(header.has_provenance);
    }

    #[test]
    fn save_load_and_read_meta_work_on_real_files() {
        let dir = std::env::temp_dir().join(format!("sfos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta.sfos");
        let file = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(provenance()),
        };
        file.save(&path).unwrap();
        assert_eq!(SnapshotFile::load(&path).unwrap(), file);
        let (header, meta) = read_meta(&path).unwrap();
        assert_eq!(header.node_count, 6);
        assert_eq!(header.edge_count, 7);
        assert_eq!(meta, Some(provenance()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let missing = std::env::temp_dir().join("sfos-definitely-missing.sfos");
        assert!(matches!(
            SnapshotFile::load(&missing),
            Err(SnapshotError::Io { .. })
        ));
        assert!(matches!(read_meta(&missing), Err(SnapshotError::Io { .. })));
        assert!(matches!(
            read_identity(&missing),
            Err(SnapshotError::Io { .. })
        ));
    }

    #[test]
    fn read_identity_is_the_stored_trailer_and_separates_files() {
        let dir = std::env::temp_dir().join(format!("sfos-identity-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("identity.sfos");
        let file = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(provenance()),
        };
        file.save(&path).unwrap();
        let bytes = file.to_bytes();
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(read_identity(&path).unwrap(), stored);
        assert_eq!(stored, fnv1a64(&bytes[..bytes.len() - 8]));

        // A different topology has a different identity.
        let other_path = dir.join("identity-other.sfos");
        let mut g = Graph::with_nodes(6);
        for i in 0..5 {
            g.add_edge(n(i), n(i + 1)).unwrap();
        }
        SnapshotFile::plain(g.freeze()).save(&other_path).unwrap();
        assert_ne!(
            read_identity(&other_path).unwrap(),
            read_identity(&path).unwrap()
        );

        // Not-a-snapshot and too-short files are typed errors, never garbage values.
        let junk = dir.join("identity-junk.sfos");
        std::fs::write(&junk, b"JUNKJUNKJUNK").unwrap();
        assert!(matches!(
            read_identity(&junk),
            Err(SnapshotError::BadMagic { .. })
        ));
        let short = dir.join("identity-short.sfos");
        std::fs::write(&short, &bytes[..HEADER_LEN]).unwrap();
        assert!(matches!(
            read_identity(&short),
            Err(SnapshotError::Truncated { section: "trailer" })
        ));
        for p in [&path, &other_path, &junk, &short] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = SnapshotFile::plain(sample()).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::BadMagic { found }) if found == *b"XFOS"
        ));
        assert!(matches!(
            SnapshotFile::from_bytes(b"PK\x03\x04 not a snapshot"),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = SnapshotFile::plain(sample()).to_bytes();
        bytes[4] = 0x2A;
        assert_eq!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 42 })
        );
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(provenance()),
        }
        .to_bytes();
        // Chopping the file anywhere must fail loudly — as a truncation before the
        // trailer exists, or as a checksum/structure failure otherwise. Never a panic,
        // never an Ok.
        for len in 0..bytes.len() - 1 {
            let err = SnapshotFile::from_bytes(&bytes[..len]).unwrap_err();
            if len < HEADER_LEN + TRAILER_LEN {
                assert!(
                    matches!(err, SnapshotError::Truncated { .. }),
                    "len {len}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let bytes = SnapshotFile::plain(sample()).to_bytes();
        for &pos in &[8usize, HEADER_LEN + 2, bytes.len() - TRAILER_LEN - 1] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x40;
            assert!(
                matches!(
                    SnapshotFile::from_bytes(&corrupted),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = SnapshotFile::plain(sample()).to_bytes();
        bytes.extend_from_slice(&[0u8; 16]);
        // The appended bytes break the checksum first; that is the correct report.
        assert!(SnapshotFile::from_bytes(&bytes).is_err());
    }

    /// Re-encodes `file` with its checksum fixed up after `mutate` edits the body —
    /// the adversarial case the structural validators exist for.
    fn rehashed(file: &SnapshotFile, mutate: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let mut bytes = file.to_bytes();
        bytes.truncate(bytes.len() - TRAILER_LEN);
        mutate(&mut bytes);
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    #[test]
    fn structurally_invalid_topologies_are_rejected_even_with_valid_checksums() {
        let file = SnapshotFile::plain(sample());
        let entry0 = HEADER_LEN + 4 * (6 + 1);

        // Out-of-range neighbor.
        let bytes = rehashed(&file, |b| {
            b[entry0..entry0 + 4].copy_from_slice(&99u32.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("out-of-range")
        ));

        // Self-loop on node 0.
        let bytes = rehashed(&file, |b| {
            b[entry0..entry0 + 4].copy_from_slice(&0u32.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("self-loop")
        ));

        // Unmirrored adjacency: node 0's first neighbor becomes n2, which does not list n0.
        let bytes = rehashed(&file, |b| {
            b[entry0..entry0 + 4].copy_from_slice(&2u32.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { .. })
        ));

        // Non-monotone offsets.
        let bytes = rehashed(&file, |b| {
            b[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&90u32.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn inconsistent_headers_are_rejected() {
        let file = SnapshotFile::plain(sample());

        // Unknown flag bit.
        let bytes = rehashed(&file, |b| b[6] |= 0x80);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("flag")
        ));

        // Nonzero reserved bytes.
        let bytes = rehashed(&file, |b| b[28] = 1);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("reserved")
        ));

        // Shard count without a manifest flag.
        let bytes = rehashed(&file, |b| b[24] = 3);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("shard count")
        ));
    }

    #[test]
    fn invalid_manifests_are_rejected() {
        let csr = sample();
        let bad_range = SnapshotFile {
            csr: csr.clone(),
            shards: Some(vec![ShardRecord {
                start: 0,
                end: 4,
                boundary: Vec::new(),
            }]),
            provenance: None,
        };
        assert!(matches!(
            SnapshotFile::from_bytes(&bad_range.to_bytes()),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("cover")
        ));

        let bad_owner = SnapshotFile {
            csr,
            shards: Some(vec![
                ShardRecord {
                    start: 0,
                    end: 3,
                    boundary: vec![BoundaryRecord {
                        source: 0,
                        target: 1, // n1 lives in shard 0, not shard 1
                        target_shard: 1,
                    }],
                },
                ShardRecord {
                    start: 3,
                    end: 6,
                    boundary: Vec::new(),
                },
            ]),
            provenance: None,
        };
        assert!(matches!(
            SnapshotFile::from_bytes(&bad_owner.to_bytes()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn lying_boundary_tables_are_rejected_by_recomputation() {
        // Ranges and ownership are consistent, but the tables omit real cross edges /
        // invent fake ones; the codec recomputes the partition's boundary and compares.
        let csr = sample();
        let empty_tables = SnapshotFile {
            csr: csr.clone(),
            shards: Some(vec![
                ShardRecord {
                    start: 0,
                    end: 3,
                    boundary: Vec::new(),
                },
                ShardRecord {
                    start: 3,
                    end: 6,
                    boundary: Vec::new(),
                },
            ]),
            provenance: None,
        };
        assert!(matches!(
            SnapshotFile::from_bytes(&empty_tables.to_bytes()),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("boundary")
        ));

        let mut extra = SnapshotFile::from_bytes(
            &SnapshotFile {
                csr,
                shards: Some(vec![ShardRecord {
                    start: 0,
                    end: 6,
                    boundary: Vec::new(),
                }]),
                provenance: None,
            }
            .to_bytes(),
        )
        .unwrap();
        // One shard has no cross edges; inventing one must fail.
        extra.shards.as_mut().unwrap()[0]
            .boundary
            .push(BoundaryRecord {
                source: 0,
                target: 1,
                target_shard: 0,
            });
        assert!(matches!(
            SnapshotFile::from_bytes(&extra.to_bytes()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn oversized_length_fields_are_rejected_before_allocation() {
        // A shard count the file cannot possibly hold must fail as truncation, not
        // reserve memory for 4 billion records.
        let file = SnapshotFile {
            csr: sample(),
            shards: Some(vec![ShardRecord {
                start: 0,
                end: 6,
                boundary: Vec::new(),
            }]),
            provenance: None,
        };
        let bytes = rehashed(&file, |b| {
            b[24..28].copy_from_slice(&u32::MAX.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));

        // Same for a provenance label length in read_meta (no checksum protection).
        let dir = std::env::temp_dir().join(format!("sfos-bounds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-label.sfos");
        let with_prov = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(provenance()),
        };
        let bytes = rehashed(&with_prov, |b| {
            b[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes())
        });
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_meta(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(SnapshotError::BadMagic { found: *b"ABCD" }
            .to_string()
            .contains("SFOS"));
        assert!(SnapshotError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains("version 9"));
        assert!(SnapshotError::Truncated { section: "targets" }
            .to_string()
            .contains("targets"));
        assert!(SnapshotError::ChecksumMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(SnapshotError::MissingSection {
            section: "shard manifest"
        }
        .to_string()
        .contains("shard manifest"));
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn provenance_labels_of_every_length_keep_the_arrays_4_aligned() {
        // The label pad is what makes the zero-copy borrow the structural common case:
        // whatever the label length, the offsets section must start on a 4-byte file
        // offset, the pad must round-trip invisibly, and a nonzero pad byte must fail.
        for len in 0..9usize {
            let mut prov = provenance();
            prov.label = "x".repeat(len);
            let file = SnapshotFile {
                csr: sample(),
                shards: None,
                provenance: Some(prov.clone()),
            };
            let bytes = file.to_bytes();
            let prov_len = 4 + len + label_pad(len) + 5 * 8;
            assert_eq!((HEADER_LEN + prov_len) % 4, 0, "label len {len}");
            let back = SnapshotFile::from_bytes(&bytes).unwrap();
            assert_eq!(back.provenance, Some(prov));

            if label_pad(len) > 0 {
                let dirty = rehashed(&file, |b| b[HEADER_LEN + 4 + len] = 0xAA);
                assert!(matches!(
                    SnapshotFile::from_bytes(&dirty),
                    Err(SnapshotError::Corrupt { reason }) if reason.contains("padding")
                ));
            }
        }
    }

    fn live_origin() -> SnapshotOrigin {
        SnapshotOrigin::LiveOverlay {
            params: "k_c=10, walks=2".to_string(),
        }
    }

    #[test]
    fn origin_tags_round_trip_and_set_the_flag() {
        for origin in [SnapshotOrigin::Generator, live_origin()] {
            let mut prov = provenance();
            prov.origin = Some(origin.clone());
            let file = SnapshotFile {
                csr: sample(),
                shards: None,
                provenance: Some(prov.clone()),
            };
            let bytes = file.to_bytes();
            assert_eq!(bytes[6] & (FLAG_ORIGIN as u8), FLAG_ORIGIN as u8);
            let back = SnapshotFile::from_bytes(&bytes).unwrap();
            assert_eq!(back.provenance, Some(prov));
            assert!(back.header().has_origin);
        }
    }

    #[test]
    fn origin_params_of_every_length_keep_the_arrays_4_aligned() {
        // The origin tail uses the same pad-to-4 rule as the label, so the offsets
        // section keeps starting on a 4-byte file offset and mmap stays zero-copy.
        for len in 0..9usize {
            let mut prov = provenance();
            prov.origin = Some(SnapshotOrigin::LiveOverlay {
                params: "p".repeat(len.max(1)),
            });
            let params_len = len.max(1);
            let file = SnapshotFile {
                csr: sample(),
                shards: None,
                provenance: Some(prov.clone()),
            };
            let label_len = prov.label.len();
            let prov_len = 4
                + label_len
                + label_pad(label_len)
                + 5 * 8
                + 8
                + params_len
                + label_pad(params_len);
            assert_eq!((HEADER_LEN + prov_len) % 4, 0, "params len {params_len}");
            let back = SnapshotFile::from_bytes(&file.to_bytes()).unwrap();
            assert_eq!(back.provenance, Some(prov));
        }
    }

    #[test]
    fn files_without_origin_encode_exactly_as_before_and_keep_loading() {
        // Version tolerance both ways: a provenance with no origin writes the
        // pre-origin byte layout (flag bit 2 clear, no tail), and decodes to
        // `origin: None` — old files are untouched by the new field.
        let file = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(provenance()),
        };
        let bytes = file.to_bytes();
        assert_eq!(bytes[6] & (FLAG_ORIGIN as u8), 0);
        let label_len = provenance().label.len();
        let prov_len = 4 + label_len + label_pad(label_len) + 5 * 8;
        assert_eq!(
            bytes.len(),
            HEADER_LEN + prov_len + 28 + 56 + TRAILER_LEN,
            "no origin tail is written when the field is None"
        );
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        assert!(!back.header().has_origin);
        assert_eq!(back.provenance.unwrap().origin, None);
    }

    #[test]
    fn corrupt_origin_tags_are_rejected_even_with_valid_checksums() {
        let mut prov = provenance();
        prov.origin = Some(live_origin());
        let file = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(prov),
        };
        let label_len = provenance().label.len();
        let kind_at = HEADER_LEN + 4 + label_len + label_pad(label_len) + 5 * 8;

        // Unknown origin kind.
        let bytes = rehashed(&file, |b| {
            b[kind_at..kind_at + 4].copy_from_slice(&7u32.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("origin kind")
        ));

        // Generator origins carry no params; rewriting the kind alone must fail.
        let bytes = rehashed(&file, |b| {
            b[kind_at..kind_at + 4].copy_from_slice(&0u32.to_le_bytes())
        });
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("params")
        ));

        // Nonzero origin pad byte ("k_c=10, walks=2" is 15 bytes, 1 pad byte).
        let params_len = 15;
        let bytes = rehashed(&file, |b| b[kind_at + 8 + params_len] = 0xAA);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("padding")
        ));

        // The origin flag without a provenance section is an inconsistent header.
        let plain = SnapshotFile::plain(sample());
        let bytes = rehashed(&plain, |b| b[6] |= FLAG_ORIGIN as u8);
        assert!(matches!(
            SnapshotFile::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { reason }) if reason.contains("origin")
        ));
    }

    #[test]
    fn read_meta_and_section_layout_cover_origin_tails() {
        let dir = std::env::temp_dir().join(format!("sfos-origin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("origin.sfos");
        let mut prov = provenance();
        prov.origin = Some(live_origin());
        let file = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(prov.clone()),
        };
        file.save(&path).unwrap();

        let (header, meta) = read_meta(&path).unwrap();
        assert!(header.has_origin);
        assert_eq!(meta, Some(prov.clone()));

        // The provenance extent includes the origin tail, sections still tile the
        // file, and the arrays stay mmap-eligible.
        let layout = section_layout(&path).unwrap();
        let prov_bytes = layout.provenance_bytes.clone().unwrap();
        let label_len = prov.label.len();
        let params_len = 15;
        let expected =
            4 + label_len + label_pad(label_len) + 5 * 8 + 8 + params_len + label_pad(params_len);
        assert_eq!(prov_bytes.end - prov_bytes.start, expected as u64);
        assert_eq!(layout.offsets_bytes.start, prov_bytes.end);
        assert!(layout.zero_copy_eligible());

        let mapped = SnapshotFile::load_mmap(&path).unwrap();
        assert_eq!(mapped.provenance, Some(prov));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn origin_display_is_human_readable() {
        assert_eq!(SnapshotOrigin::Generator.to_string(), "generator");
        assert_eq!(live_origin().to_string(), "live-overlay (k_c=10, walks=2)");
    }

    #[test]
    fn section_layout_tiles_the_file_and_marks_zero_copy_eligibility() {
        let dir = std::env::temp_dir().join(format!("sfos-layout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layout.sfos");
        let file = SnapshotFile {
            csr: sample(),
            shards: Some(vec![ShardRecord {
                start: 0,
                end: 6,
                boundary: Vec::new(),
            }]),
            provenance: Some(provenance()),
        };
        file.save(&path).unwrap();
        let layout = section_layout(&path).unwrap();
        let bytes = file.to_bytes();
        assert_eq!(layout.file_len, bytes.len() as u64);
        assert_eq!(layout.header_bytes, 0..32);
        // Sections tile the file contiguously with nothing unaccounted for.
        let prov = layout.provenance_bytes.clone().unwrap();
        assert_eq!(prov.start, 32);
        assert_eq!(layout.offsets_bytes.start, prov.end);
        assert_eq!(layout.offsets_bytes.end, layout.targets_bytes.start);
        // 7 nodes' worth of offsets (6 + 1) and 14 directed entries.
        assert_eq!(layout.offsets_bytes.end - layout.offsets_bytes.start, 28);
        assert_eq!(layout.targets_bytes.end - layout.targets_bytes.start, 56);
        let manifest = layout.manifest_bytes.clone().unwrap();
        assert_eq!(manifest.start, layout.targets_bytes.end);
        assert_eq!(manifest.end, layout.trailer_bytes.start);
        assert_eq!(layout.trailer_bytes.end, layout.file_len);
        assert!(layout.zero_copy_eligible());

        // Plain files have no optional sections and still tile exactly.
        let plain_path = dir.join("layout-plain.sfos");
        SnapshotFile::plain(sample()).save(&plain_path).unwrap();
        let plain = section_layout(&plain_path).unwrap();
        assert!(plain.provenance_bytes.is_none());
        assert!(plain.manifest_bytes.is_none());
        assert_eq!(plain.offsets_bytes.start, 32);
        assert_eq!(plain.targets_bytes.end, plain.trailer_bytes.start);
        assert!(plain.zero_copy_eligible());

        // A header whose counts the file cannot hold is a typed error.
        let mut truncated = bytes.clone();
        truncated.truncate(48);
        let short_path = dir.join("layout-short.sfos");
        std::fs::write(&short_path, &truncated).unwrap();
        assert!(matches!(
            section_layout(&short_path),
            Err(SnapshotError::Truncated { .. })
        ));
        for p in [&path, &plain_path, &short_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn read_meta_reads_only_the_prefix() {
        // Regression guard for the inspect path's cost model: read_meta must decode the
        // header and provenance from a prefix read and never touch the arrays. The file
        // below *claims* enormous arrays but is truncated right after the provenance —
        // a reader that touched anything past the provenance would fail.
        let full = SnapshotFile {
            csr: sample(),
            shards: None,
            provenance: Some(provenance()),
        }
        .to_bytes();
        let label_len = provenance().label.len();
        let prefix_len = HEADER_LEN + 4 + label_len + label_pad(label_len) + 5 * 8;
        let mut prefix = full[..prefix_len].to_vec();
        // Claim 2^30 nodes and 2^30 edges the file does not hold.
        prefix[8..16].copy_from_slice(&(1u64 << 30).to_le_bytes());
        prefix[16..24].copy_from_slice(&(1u64 << 30).to_le_bytes());

        let dir = std::env::temp_dir().join(format!("sfos-prefix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prefix-only.sfos");
        std::fs::write(&path, &prefix).unwrap();
        let (header, meta) = read_meta(&path).unwrap();
        assert_eq!(header.node_count, 1 << 30);
        assert_eq!(meta, Some(provenance()));
        // The full readers must still reject the same file loudly.
        assert!(SnapshotFile::load(&path).is_err());
        assert!(SnapshotFile::load_mmap(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_load_is_byte_identical_to_the_read_load() {
        let dir = std::env::temp_dir().join(format!("sfos-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped.sfos");
        let file = SnapshotFile {
            csr: sample(),
            shards: Some(vec![ShardRecord {
                start: 0,
                end: 6,
                boundary: Vec::new(),
            }]),
            provenance: Some(provenance()),
        };
        file.save(&path).unwrap();

        let read = SnapshotFile::load(&path).unwrap();
        let mapped = SnapshotFile::load_mmap(&path).unwrap();
        assert_eq!(mapped, read);
        assert_eq!(mapped.shards, read.shards);
        assert_eq!(mapped.provenance, read.provenance);
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        assert!(mapped.csr.is_mapped());
        assert!(!read.csr.is_mapped());
        // The mapped graph is traversable after the loader's locals drop, and owned
        // copies detach from the mapping.
        assert_eq!(mapped.csr.neighbors(n(0)), read.csr.neighbors(n(0)));
        let (offsets, targets) = mapped.csr.clone().into_parts();
        assert_eq!(
            (offsets.as_slice(), targets.as_slice()),
            read.csr.raw_parts()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_load_never_masks_decode_errors() {
        let dir = std::env::temp_dir().join(format!("sfos-mmap-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A bit flip must surface as the checksum mismatch, not as a fallback load.
        let mut bytes = SnapshotFile::plain(sample()).to_bytes();
        bytes[HEADER_LEN + 2] ^= 0x40;
        let flipped = dir.join("flipped.sfos");
        std::fs::write(&flipped, &bytes).unwrap();
        assert!(matches!(
            SnapshotFile::load_mmap(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Not-a-snapshot and empty files produce the reader's usual typed errors.
        let junk = dir.join("junk.sfos");
        std::fs::write(&junk, b"JUNKJUNKJUNKJUNK").unwrap();
        assert!(matches!(
            SnapshotFile::load_mmap(&junk),
            Err(SnapshotError::BadMagic { .. })
        ));
        let empty = dir.join("empty.sfos");
        std::fs::write(&empty, b"").unwrap();
        assert!(matches!(
            SnapshotFile::load_mmap(&empty),
            Err(SnapshotError::Truncated { .. })
        ));
        let missing = dir.join("missing.sfos");
        assert!(matches!(
            SnapshotFile::load_mmap(&missing),
            Err(SnapshotError::Io { .. })
        ));
        for p in [&flipped, &junk, &empty] {
            std::fs::remove_file(p).unwrap();
        }
    }
}
