//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (peer) in a graph.
///
/// `NodeId` is a dense index: graphs hand out ids `0, 1, 2, ...` in the order nodes are
/// added, and all adjacency storage is indexed by this value. The newtype exists so that
/// node identifiers are not silently confused with degrees, counts, or hop distances in
/// the topology-generation and search code.
///
/// # Example
///
/// ```
/// use sfo_graph::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.index(), 7);
/// assert_eq!(format!("{a}"), "n7");
/// ```
/// `#[repr(transparent)]` guarantees `NodeId` has exactly the layout of its `u32`, which
/// is what lets the snapshot mmap loader reinterpret a borrowed little-endian `u32`
/// section as `&[NodeId]` without copying.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
#[repr(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32` (graphs in this workspace are bounded by
    /// `u32::MAX` nodes).
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node, suitable for indexing per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value of this node id.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(value: NodeId) -> Self {
        value.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 42, 65_535, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn conversions() {
        let id = NodeId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(usize::from(id), 9);
        assert_eq!(id.as_u32(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn new_panics_on_overflow() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }
}
