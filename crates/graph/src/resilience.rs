//! Robustness of a topology to random failures and targeted attacks.
//!
//! The paper motivates hard cutoffs partly by the "robust yet fragile" nature of scale-free
//! networks (§III): they tolerate random node failures well because a random victim is
//! almost surely a low-degree satellite, but removing a few hubs shatters them. Capping the
//! degree removes the super-hubs and therefore changes this trade-off; the `resilience`
//! experiment in `sfo-experiments` quantifies it using the primitives in this module.
//!
//! Everything here reads through [`GraphView`], so profiles run on a mutable [`Graph`]
//! or a frozen [`CsrGraph`](crate::CsrGraph) snapshot alike; the degraded copy is
//! materialized per point via [`Graph::from_view`], the original is never touched.

use crate::traversal::giant_component_fraction;
use crate::{Graph, GraphView, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How victims are chosen when degrading a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RemovalStrategy {
    /// Uniformly random victims: models independent peer failures.
    Random,
    /// Highest-degree victims first: models a deliberate attack on the hubs.
    HighestDegree,
}

/// One point of a robustness profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Fraction of nodes removed.
    pub removed_fraction: f64,
    /// Fraction of the *original* node count still contained in the largest connected
    /// component after the removal.
    pub giant_component_fraction: f64,
}

/// Returns the victims a strategy selects when removing `count` nodes from `graph`.
///
/// For [`RemovalStrategy::HighestDegree`] ties are broken by node id so results are
/// deterministic; for [`RemovalStrategy::Random`] the RNG decides.
pub fn select_victims<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    strategy: RemovalStrategy,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let count = count.min(graph.node_count());
    match strategy {
        RemovalStrategy::Random => {
            let mut nodes: Vec<NodeId> = graph.nodes().collect();
            nodes.shuffle(rng);
            nodes.truncate(count);
            nodes
        }
        RemovalStrategy::HighestDegree => {
            let mut nodes: Vec<NodeId> = graph.nodes().collect();
            nodes.sort_by_key(|&n| (std::cmp::Reverse(graph.degree(n)), n));
            nodes.truncate(count);
            nodes
        }
    }
}

/// Removes (isolates) a fraction of nodes chosen by `strategy` and reports the surviving
/// giant-component fraction relative to the original node count.
///
/// The removal isolates nodes in a mutable copy of the view (via [`Graph::from_view`]);
/// the input — a [`Graph`] or a frozen snapshot — is untouched.
///
/// # Panics
///
/// Panics if `fraction` is not within `[0, 1]`.
pub fn degrade<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    strategy: RemovalStrategy,
    fraction: f64,
    rng: &mut R,
) -> RobustnessPoint {
    assert!(
        (0.0..=1.0).contains(&fraction) && fraction.is_finite(),
        "removal fraction must be within [0, 1]"
    );
    if graph.node_count() == 0 {
        return RobustnessPoint {
            removed_fraction: fraction,
            giant_component_fraction: 0.0,
        };
    }
    let count = (fraction * graph.node_count() as f64).round() as usize;
    let victims = select_victims(graph, strategy, count, rng);
    let mut damaged = Graph::from_view(graph);
    for victim in victims {
        damaged
            .isolate_node(victim)
            .expect("victims come from the graph itself");
    }
    // `giant_component_fraction` divides by the node count, which is unchanged because
    // isolation keeps the removed nodes as empty slots; that is exactly the "fraction of the
    // original network still connected" the robustness literature reports.
    RobustnessPoint {
        removed_fraction: fraction,
        giant_component_fraction: giant_component_fraction(&damaged),
    }
}

/// Computes a full robustness profile: the giant-component fraction after removing each of
/// the given fractions of nodes (each point degrades a fresh copy of the original graph).
pub fn robustness_profile<G: GraphView + ?Sized, R: Rng + ?Sized>(
    graph: &G,
    strategy: RemovalStrategy,
    fractions: &[f64],
    rng: &mut R,
) -> Vec<RobustnessPoint> {
    fractions
        .iter()
        .map(|&f| degrade(graph, strategy, f, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn star_graph(leaves: usize) -> Graph {
        let mut g = Graph::with_nodes(leaves + 1);
        for i in 1..=leaves {
            g.add_edge(NodeId::new(0), NodeId::new(i)).unwrap();
        }
        g
    }

    fn ring(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n))
                .unwrap();
        }
        g
    }

    #[test]
    fn victim_selection_respects_strategy() {
        let g = star_graph(9);
        let targeted = select_victims(&g, RemovalStrategy::HighestDegree, 1, &mut rng(1));
        assert_eq!(
            targeted,
            vec![NodeId::new(0)],
            "the hub is the first target"
        );
        let random = select_victims(&g, RemovalStrategy::Random, 4, &mut rng(1));
        assert_eq!(random.len(), 4);
        let over = select_victims(&g, RemovalStrategy::Random, 100, &mut rng(1));
        assert_eq!(over.len(), 10, "requests beyond the node count are clamped");
    }

    #[test]
    fn targeted_attack_on_a_star_shatters_it() {
        let g = star_graph(20);
        let point = degrade(&g, RemovalStrategy::HighestDegree, 0.05, &mut rng(2));
        // Removing ~1 node (the hub) leaves only isolated leaves.
        assert!(point.giant_component_fraction < 0.1);
    }

    #[test]
    fn random_failures_on_a_star_barely_matter() {
        let g = star_graph(100);
        let point = degrade(&g, RemovalStrategy::Random, 0.1, &mut rng(3));
        // With high probability the hub survives a 10% random removal, keeping ~90% connected.
        assert!(point.giant_component_fraction > 0.6);
    }

    #[test]
    fn a_ring_degrades_gracefully_under_both_strategies() {
        let g = ring(200);
        for strategy in [RemovalStrategy::Random, RemovalStrategy::HighestDegree] {
            let profile = robustness_profile(&g, strategy, &[0.0, 0.05, 0.2], &mut rng(4));
            assert_eq!(profile.len(), 3);
            assert!((profile[0].giant_component_fraction - 1.0).abs() < 1e-12);
            // Giant component shrinks monotonically with the removed fraction.
            assert!(profile[1].giant_component_fraction >= profile[2].giant_component_fraction);
        }
    }

    #[test]
    fn zero_and_full_removal_edge_cases() {
        let g = ring(50);
        let none = degrade(&g, RemovalStrategy::Random, 0.0, &mut rng(5));
        assert_eq!(none.giant_component_fraction, 1.0);
        let all = degrade(&g, RemovalStrategy::HighestDegree, 1.0, &mut rng(5));
        assert!(all.giant_component_fraction <= 1.0 / 50.0 + 1e-12);
        let empty = degrade(&Graph::new(), RemovalStrategy::Random, 0.5, &mut rng(5));
        assert_eq!(empty.giant_component_fraction, 0.0);
    }

    #[test]
    fn original_graph_is_untouched() {
        let g = ring(30);
        let edges_before = g.edge_count();
        let _ = degrade(&g, RemovalStrategy::HighestDegree, 0.5, &mut rng(6));
        assert_eq!(g.edge_count(), edges_before);
    }

    #[test]
    fn frozen_snapshots_degrade_identically_to_their_graph() {
        let g = ring(100);
        let frozen = g.freeze();
        for strategy in [RemovalStrategy::Random, RemovalStrategy::HighestDegree] {
            let on_graph = robustness_profile(&g, strategy, &[0.1, 0.3], &mut rng(9));
            let on_csr = robustness_profile(&frozen, strategy, &[0.1, 0.3], &mut rng(9));
            assert_eq!(on_graph, on_csr);
        }
    }

    #[test]
    #[should_panic(expected = "removal fraction")]
    fn out_of_range_fraction_panics() {
        let g = ring(10);
        let _ = degrade(&g, RemovalStrategy::Random, 1.5, &mut rng(7));
    }
}
