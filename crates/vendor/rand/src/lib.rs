//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! This workspace builds in environments with no access to crates.io, so the small slice
//! of the `rand` API the workspace actually uses is vendored here: [`RngCore`], the
//! [`Rng`] extension trait (`gen`, `gen_range`), [`SeedableRng`], a deterministic
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `partial_shuffle`, `choose`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64. It does **not** produce
//! the same stream as upstream `rand`'s ChaCha-based `StdRng`; every reproducibility
//! guarantee in this workspace is "same seed, same binary, same results", which this
//! generator provides. Statistical quality is more than sufficient for the simulation
//! and topology-generation workloads here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
///
/// Object safe, so algorithms can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

mod private {
    /// Seals [`super::SampleUniform`] and [`super::SampleRange`] against downstream impls.
    pub trait Sealed {}
}

/// Types that [`Rng::gen`] can produce from a random word stream.
pub trait Standard: private::Sealed + Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl private::Sealed for f64 {}
impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl private::Sealed for f32 {}
impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl private::Sealed for bool {}
impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl private::Sealed for u32 {}
impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl private::Sealed for u64 {}
impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl private::Sealed for usize {}
impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Integer types that support unbiased range sampling.
pub trait SampleUniform: private::Sealed + Copy {
    /// Samples uniformly from `[low, high)`. Callers guarantee `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`. Callers guarantee `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Unbiased sample from `[0, bound)` via Lemire-style rejection on 64-bit words.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the multiply-shift map unbiased.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let word = rng.next_u64();
        let (hi, lo) = {
            let wide = (word as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(span + 1, rng) as $t)
            }
        }
    )*};
}

impl private::Sealed for u16 {}
impl private::Sealed for u8 {}
impl private::Sealed for isize {}
impl private::Sealed for i64 {}
impl private::Sealed for i32 {}
impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let u = f64::sample_standard(rng);
        low + (high - low) * u
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // The closed upper end has probability ~2^-53; folding it into the half-open
        // formula keeps the draw single-word like upstream rand's inclusive f64 ranges.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        low + (high - low) * u
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T>: private::Sealed {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T> private::Sealed for Range<T> {}
impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T> private::Sealed for RangeInclusive<T> {}
impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Extension methods for random number generators.
///
/// Blanket-implemented for every [`RngCore`], including `dyn RngCore`.
pub trait Rng: RngCore {
    /// Returns a random value of type `T` (`f64` in `[0, 1)`, fair `bool`, full-range
    /// integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must lie in [0, 1], got {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random number generators that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with SplitMix64
    /// so that nearby seeds produce unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl StdRng {
        /// Returns the generator's raw xoshiro256++ state words.
        ///
        /// Together with [`StdRng::from_state_words`] this lets a generator be
        /// suspended, shipped across a process boundary, and resumed mid-stream with
        /// bit-identical continuation — the mechanism behind cross-host frontier
        /// forwarding in `sfo-net`.
        #[inline]
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by [`StdRng::state_words`].
        ///
        /// An all-zero state is a fixed point of xoshiro and can never be produced by
        /// [`SeedableRng::from_seed`] or by stepping a live generator, so it is nudged
        /// to the same nonzero state `from_seed` uses for all-zero seeds.
        #[inline]
        pub fn from_state_words(words: [u64; 4]) -> Self {
            if words == [0; 4] {
                return <StdRng as super::SeedableRng>::from_seed([0; 32]);
            }
            StdRng { s: words }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it to a nonzero one.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related extensions.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements into place, returning the shuffled prefix
        /// and the untouched remainder.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let pick = i + gen_index(rng, self.len() - i);
                self.swap(i, pick);
            }
            self.split_at_mut(amount)
        }
    }

    #[inline]
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        rng.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_f64_mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(4);
        let mean: f64 = (0..20_000).map(|_| r.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.gen_range(3..=5usize);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut r = StdRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let v = r.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
            let w = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(7);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(8);
        let trues = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&trues), "got {trues}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not stay in order"
        );
    }

    #[test]
    fn partial_shuffle_returns_disjoint_prefix() {
        let mut r = StdRng::seed_from_u64(10);
        let mut v: Vec<usize> = (0..20).collect();
        let (head, tail) = v.partial_shuffle(&mut r, 5);
        assert_eq!(head.len(), 5);
        assert_eq!(tail.len(), 15);
        let mut all: Vec<usize> = head.iter().chain(tail.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        // Oversized requests clamp to the slice length.
        let (head, tail) = v.partial_shuffle(&mut r, 100);
        assert_eq!(head.len(), 20);
        assert!(tail.is_empty());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(11);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut r), Some(&42));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut r = StdRng::seed_from_u64(12);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v = dyn_rng.gen_range(0..100usize);
        assert!(v < 100);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
