//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds in environments with no access to crates.io. Nothing in the
//! workspace performs serde-based serialization (all data exports are hand-written
//! CSV/gnuplot text), but the data types derive `Serialize`/`Deserialize` to mark the
//! stable data-exchange surface. This crate keeps those annotations compiling: the
//! derives expand to nothing and the traits carry no methods. Swapping back to upstream
//! serde is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
