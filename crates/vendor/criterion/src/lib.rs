//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in environments with no access to crates.io, so the slice of the
//! Criterion API its benchmarks use is vendored here: [`Criterion`],
//! [`Criterion::benchmark_group`] with `sample_size` / `measurement_time` /
//! `warm_up_time`, [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after a warm-up phase, each benchmark takes
//! `sample_size` wall-clock samples (batches of iterations sized from the warm-up
//! estimate) and reports the min / mean / max per-iteration time. There is no outlier
//! rejection or regression analysis — enough to compare alternatives within one run,
//! which is how this workspace uses benchmarks. Results can be exported as JSON via
//! [`Criterion::export_json`] (a local extension; upstream Criterion writes its own
//! `target/criterion` reports instead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark: a function name plus an optional parameter label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter shown after a slash.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Creates an id carrying only a parameter label.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            full: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full: name }
    }
}

/// Timing statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Group-qualified benchmark id (`group/function/param`).
    pub id: String,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Mean over samples, ns per iteration.
    pub mean_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

/// Measurement configuration shared by a group or a bare `bench_function` call.
#[derive(Debug, Clone, Copy)]
struct MeasurementConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Runs timing loops for one benchmark; handed to the benchmark closure.
pub struct Bencher<'a> {
    config: MeasurementConfig,
    result: &'a mut Option<(f64, f64, f64, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then taking the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, counting iterations so the
        // measurement batches can be sized to fill the measurement budget.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warmup_iters += 1;
        }
        let warmup_elapsed = warmup_start.elapsed().as_nanos().max(1) as f64;
        let est_ns_per_iter = warmup_elapsed / warmup_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let batch = ((budget_ns / samples as f64 / est_ns_per_iter).ceil() as u64).max(1);

        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
            min = min.min(per_iter);
            max = max.max(per_iter);
            sum += per_iter;
            total_iters += batch;
        }
        *self.result = Some((min, sum / samples as f64, max, total_iters));
    }
}

/// Entry point of the harness: collects configuration and accumulates results.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs a standalone benchmark with the default measurement configuration.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let config = MeasurementConfig::default();
        self.run_one(id.to_string(), config, f);
        self
    }

    /// Starts a named group of benchmarks sharing one measurement configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            config: MeasurementConfig::default(),
        }
    }

    /// Returns the results collected so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the collected results to `path` as a JSON array (local extension).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn export_json<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "  {{\"id\": {:?}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"max_ns\": {:.1}, \"iterations\": {}}}{comma}\n",
                r.id, r.min_ns, r.mean_ns, r.max_ns, r.iterations
            ));
        }
        out.push_str("]\n");
        fs::write(path, out)
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: String,
        config: MeasurementConfig,
        mut f: F,
    ) {
        let mut slot = None;
        let mut bencher = Bencher {
            config,
            result: &mut slot,
        };
        f(&mut bencher);
        let (min_ns, mean_ns, max_ns, iterations) =
            slot.expect("benchmark closure must call Bencher::iter");
        println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(min_ns),
            format_ns(mean_ns),
            format_ns(max_ns)
        );
        self.results.push(BenchResult {
            id,
            min_ns,
            mean_ns,
            max_ns,
            iterations,
        });
    }
}

/// A named group of benchmarks sharing a measurement configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasurementConfig,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().full);
        self.criterion.run_one(full, self.config, f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher<'_>, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().full);
        self.criterion.run_one(full, self.config, |b| f(b, input));
        self
    }

    /// Ends the group. (Results are recorded eagerly; this exists for API parity.)
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a function that runs the listed benchmark targets against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares a `main` that runs the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(c: &mut Criterion) -> BenchmarkGroup<'_> {
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        g
    }

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        {
            let mut g = fast_config(&mut c);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "g/noop");
        assert_eq!(c.results()[1].id, "g/param/7");
        for r in c.results() {
            assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
            assert!(r.iterations > 0);
        }
    }

    #[test]
    fn export_json_writes_all_results() {
        let mut c = Criterion::default();
        {
            let mut g = fast_config(&mut c);
            g.bench_function("a", |b| b.iter(|| black_box(0)));
            g.finish();
        }
        let path = std::env::temp_dir().join("sfo_criterion_shim_test.json");
        c.export_json(&path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"id\": \"g/a\""));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
