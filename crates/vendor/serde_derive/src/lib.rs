//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to document which
//! ones form the stable data-exchange surface, but no code path performs serde-based
//! serialization (all exports are hand-written CSV/gnuplot text). These derives accept
//! the same syntax as the real macros — including `#[serde(...)]` helper attributes —
//! and expand to nothing, so the annotations stay source-compatible with upstream serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
