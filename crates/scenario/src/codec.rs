//! JSON codecs for the configuration types owned by `sfo-core`, `sfo-sim`, and
//! `sfo-overlay`.
//!
//! The spec layer embeds the simulator's own configuration structs
//! ([`SimulationConfig`], [`TraceRunConfig`], [`ChurnTraceConfig`], [`LiveConfig`], ...)
//! rather than mirroring them, so a scenario file configures exactly what runs. This
//! module gives those foreign types [`ToJson`]/[`FromJson`] implementations; every codec
//! writes a fixed field order so serialization stays deterministic.

use crate::json::{FromJson, JsonValue, ToJson};
use crate::ScenarioError;
use sfo_core::fitness::FitnessDistribution;
use sfo_overlay::protocol::ProtocolConfig;
use sfo_overlay::sim::LiveConfig;
use sfo_sim::catalog::ItemId;
use sfo_sim::churn::{ChurnTraceConfig, SessionModel};
use sfo_sim::events::Tick;
use sfo_sim::overlay::{JoinStrategy, OverlayConfig};
use sfo_sim::query::QueryMethod;
use sfo_sim::replication::ReplicationStrategy;
use sfo_sim::simulation::{OverlaySample, SimulationConfig};
use sfo_sim::trace_runner::TraceRunConfig;
use sfo_sim::workload::Workload;

// ---------------------------------------------------------------------------------------
// Field-access helpers shared by every codec in the crate.

/// Rejects unknown object members, so a typo in a hand-written spec file ("kmin",
/// "thread", ...) fails loudly instead of silently running a different experiment.
pub(crate) fn check_fields(
    value: &JsonValue,
    ctx: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    if let Some(members) = value.as_object() {
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(ScenarioError::invalid(format!(
                    "{ctx}: unknown field \"{key}\" (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
    }
    Ok(())
}

pub(crate) fn req<'a>(
    value: &'a JsonValue,
    key: &str,
    ctx: &str,
) -> Result<&'a JsonValue, ScenarioError> {
    value
        .get(key)
        .ok_or_else(|| ScenarioError::invalid(format!("{ctx}: missing field \"{key}\"")))
}

pub(crate) fn req_str<'a>(
    value: &'a JsonValue,
    key: &str,
    ctx: &str,
) -> Result<&'a str, ScenarioError> {
    req(value, key, ctx)?
        .as_str()
        .ok_or_else(|| ScenarioError::invalid(format!("{ctx}: field \"{key}\" must be a string")))
}

pub(crate) fn req_bool(value: &JsonValue, key: &str, ctx: &str) -> Result<bool, ScenarioError> {
    req(value, key, ctx)?
        .as_bool()
        .ok_or_else(|| ScenarioError::invalid(format!("{ctx}: field \"{key}\" must be a boolean")))
}

pub(crate) fn req_usize(value: &JsonValue, key: &str, ctx: &str) -> Result<usize, ScenarioError> {
    req(value, key, ctx)?.as_usize().ok_or_else(|| {
        ScenarioError::invalid(format!(
            "{ctx}: field \"{key}\" must be a non-negative integer"
        ))
    })
}

pub(crate) fn req_u64(value: &JsonValue, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    req(value, key, ctx)?.as_u64().ok_or_else(|| {
        ScenarioError::invalid(format!(
            "{ctx}: field \"{key}\" must be a non-negative integer"
        ))
    })
}

pub(crate) fn req_u32(value: &JsonValue, key: &str, ctx: &str) -> Result<u32, ScenarioError> {
    u32::try_from(req_u64(value, key, ctx)?).map_err(|_| {
        ScenarioError::invalid(format!("{ctx}: field \"{key}\" exceeds the 32-bit range"))
    })
}

pub(crate) fn req_f64(value: &JsonValue, key: &str, ctx: &str) -> Result<f64, ScenarioError> {
    req(value, key, ctx)?
        .as_f64()
        .ok_or_else(|| ScenarioError::invalid(format!("{ctx}: field \"{key}\" must be a number")))
}

/// Reads an optional `usize` field: absent or `null` mean `None`.
pub(crate) fn opt_usize(
    value: &JsonValue,
    key: &str,
    ctx: &str,
) -> Result<Option<usize>, ScenarioError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v.as_usize().map(Some).ok_or_else(|| {
            ScenarioError::invalid(format!(
                "{ctx}: field \"{key}\" must be a non-negative integer or null"
            ))
        }),
    }
}

// ---------------------------------------------------------------------------------------
// sfo-core types.

impl ToJson for FitnessDistribution {
    fn to_json(&self) -> JsonValue {
        match *self {
            FitnessDistribution::Uniform => JsonValue::Object(vec![(
                "kind".to_string(),
                JsonValue::from_str_value("uniform"),
            )]),
            FitnessDistribution::UniformRange { min, max } => JsonValue::Object(vec![
                (
                    "kind".to_string(),
                    JsonValue::from_str_value("uniform_range"),
                ),
                ("min".to_string(), JsonValue::from_f64(min)),
                ("max".to_string(), JsonValue::from_f64(max)),
            ]),
            FitnessDistribution::Exponential { rate } => JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::from_str_value("exponential")),
                ("rate".to_string(), JsonValue::from_f64(rate)),
            ]),
        }
    }
}

impl FromJson for FitnessDistribution {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "fitness distribution";
        match req_str(value, "kind", CTX)? {
            "uniform" => {
                check_fields(value, CTX, &["kind"])?;
                Ok(FitnessDistribution::Uniform)
            }
            "uniform_range" => {
                check_fields(value, CTX, &["kind", "min", "max"])?;
                Ok(FitnessDistribution::UniformRange {
                    min: req_f64(value, "min", CTX)?,
                    max: req_f64(value, "max", CTX)?,
                })
            }
            "exponential" => {
                check_fields(value, CTX, &["kind", "rate"])?;
                Ok(FitnessDistribution::Exponential {
                    rate: req_f64(value, "rate", CTX)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown kind \"{other}\" (expected uniform, uniform_range, or exponential)"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------------------
// sfo-sim types.

impl ToJson for JoinStrategy {
    fn to_json(&self) -> JsonValue {
        match *self {
            JoinStrategy::UniformRandom => JsonValue::Object(vec![(
                "strategy".to_string(),
                JsonValue::from_str_value("uniform_random"),
            )]),
            JoinStrategy::DegreePreferential => JsonValue::Object(vec![(
                "strategy".to_string(),
                JsonValue::from_str_value("degree_preferential"),
            )]),
            JoinStrategy::HopAndAttempt { max_hops_per_link } => JsonValue::Object(vec![
                (
                    "strategy".to_string(),
                    JsonValue::from_str_value("hop_and_attempt"),
                ),
                (
                    "max_hops_per_link".to_string(),
                    JsonValue::from_usize(max_hops_per_link),
                ),
            ]),
        }
    }
}

impl FromJson for JoinStrategy {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "join strategy";
        match req_str(value, "strategy", CTX)? {
            "uniform_random" => {
                check_fields(value, CTX, &["strategy"])?;
                Ok(JoinStrategy::UniformRandom)
            }
            "degree_preferential" => {
                check_fields(value, CTX, &["strategy"])?;
                Ok(JoinStrategy::DegreePreferential)
            }
            "hop_and_attempt" => {
                check_fields(value, CTX, &["strategy", "max_hops_per_link"])?;
                Ok(JoinStrategy::HopAndAttempt {
                    max_hops_per_link: req_usize(value, "max_hops_per_link", CTX)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown strategy \"{other}\" \
                 (expected uniform_random, degree_preferential, or hop_and_attempt)"
            ))),
        }
    }
}

impl ToJson for OverlayConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("stubs".to_string(), JsonValue::from_usize(self.stubs)),
            (
                "cutoff".to_string(),
                JsonValue::from_opt_usize(self.cutoff.value()),
            ),
            ("join_strategy".to_string(), self.join_strategy.to_json()),
            (
                "repair_on_leave".to_string(),
                JsonValue::Bool(self.repair_on_leave),
            ),
        ])
    }
}

impl FromJson for OverlayConfig {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "overlay config";
        check_fields(
            value,
            CTX,
            &["stubs", "cutoff", "join_strategy", "repair_on_leave"],
        )?;
        Ok(OverlayConfig {
            stubs: req_usize(value, "stubs", CTX)?,
            cutoff: opt_usize(value, "cutoff", CTX)?.into(),
            join_strategy: JoinStrategy::from_json(req(value, "join_strategy", CTX)?)?,
            repair_on_leave: req_bool(value, "repair_on_leave", CTX)?,
        })
    }
}

impl ToJson for QueryMethod {
    fn to_json(&self) -> JsonValue {
        match *self {
            QueryMethod::Flooding => JsonValue::Object(vec![(
                "method".to_string(),
                JsonValue::from_str_value("flooding"),
            )]),
            QueryMethod::NormalizedFlooding { k_min } => JsonValue::Object(vec![
                (
                    "method".to_string(),
                    JsonValue::from_str_value("normalized_flooding"),
                ),
                ("k_min".to_string(), JsonValue::from_usize(k_min)),
            ]),
            QueryMethod::RandomWalk => JsonValue::Object(vec![(
                "method".to_string(),
                JsonValue::from_str_value("random_walk"),
            )]),
        }
    }
}

impl FromJson for QueryMethod {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "query method";
        match req_str(value, "method", CTX)? {
            "flooding" => {
                check_fields(value, CTX, &["method"])?;
                Ok(QueryMethod::Flooding)
            }
            "normalized_flooding" => {
                check_fields(value, CTX, &["method", "k_min"])?;
                Ok(QueryMethod::NormalizedFlooding {
                    k_min: req_usize(value, "k_min", CTX)?,
                })
            }
            "random_walk" => {
                check_fields(value, CTX, &["method"])?;
                Ok(QueryMethod::RandomWalk)
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown method \"{other}\" \
                 (expected flooding, normalized_flooding, or random_walk)"
            ))),
        }
    }
}

impl ToJson for SimulationConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "initial_peers".to_string(),
                JsonValue::from_usize(self.initial_peers),
            ),
            ("duration".to_string(), JsonValue::from_u64(self.duration)),
            ("join_rate".to_string(), JsonValue::from_f64(self.join_rate)),
            (
                "leave_rate".to_string(),
                JsonValue::from_f64(self.leave_rate),
            ),
            (
                "crash_rate".to_string(),
                JsonValue::from_f64(self.crash_rate),
            ),
            (
                "query_rate".to_string(),
                JsonValue::from_f64(self.query_rate),
            ),
            (
                "query_ttl".to_string(),
                JsonValue::from_u64(u64::from(self.query_ttl)),
            ),
            ("query_method".to_string(), self.query_method.to_json()),
            ("overlay".to_string(), self.overlay.to_json()),
            (
                "catalog_items".to_string(),
                JsonValue::from_usize(self.catalog_items),
            ),
            (
                "catalog_skew".to_string(),
                JsonValue::from_f64(self.catalog_skew),
            ),
            (
                "base_replicas".to_string(),
                JsonValue::from_usize(self.base_replicas),
            ),
            (
                "snapshot_interval".to_string(),
                JsonValue::from_u64(self.snapshot_interval),
            ),
        ])
    }
}

impl FromJson for SimulationConfig {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "churn simulation config";
        check_fields(
            value,
            CTX,
            &[
                "initial_peers",
                "duration",
                "join_rate",
                "leave_rate",
                "crash_rate",
                "query_rate",
                "query_ttl",
                "query_method",
                "overlay",
                "catalog_items",
                "catalog_skew",
                "base_replicas",
                "snapshot_interval",
            ],
        )?;
        Ok(SimulationConfig {
            initial_peers: req_usize(value, "initial_peers", CTX)?,
            duration: req_u64(value, "duration", CTX)? as Tick,
            join_rate: req_f64(value, "join_rate", CTX)?,
            leave_rate: req_f64(value, "leave_rate", CTX)?,
            crash_rate: req_f64(value, "crash_rate", CTX)?,
            query_rate: req_f64(value, "query_rate", CTX)?,
            query_ttl: req_u32(value, "query_ttl", CTX)?,
            query_method: QueryMethod::from_json(req(value, "query_method", CTX)?)?,
            overlay: OverlayConfig::from_json(req(value, "overlay", CTX)?)?,
            catalog_items: req_usize(value, "catalog_items", CTX)?,
            catalog_skew: req_f64(value, "catalog_skew", CTX)?,
            base_replicas: req_usize(value, "base_replicas", CTX)?,
            snapshot_interval: req_u64(value, "snapshot_interval", CTX)? as Tick,
        })
    }
}

impl ToJson for SessionModel {
    fn to_json(&self) -> JsonValue {
        match *self {
            SessionModel::Exponential { mean } => JsonValue::Object(vec![
                (
                    "model".to_string(),
                    JsonValue::from_str_value("exponential"),
                ),
                ("mean".to_string(), JsonValue::from_f64(mean)),
            ]),
            SessionModel::Pareto { shape, minimum } => JsonValue::Object(vec![
                ("model".to_string(), JsonValue::from_str_value("pareto")),
                ("shape".to_string(), JsonValue::from_f64(shape)),
                ("minimum".to_string(), JsonValue::from_f64(minimum)),
            ]),
            SessionModel::Fixed { length } => JsonValue::Object(vec![
                ("model".to_string(), JsonValue::from_str_value("fixed")),
                ("length".to_string(), JsonValue::from_f64(length)),
            ]),
        }
    }
}

impl FromJson for SessionModel {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "session model";
        match req_str(value, "model", CTX)? {
            "exponential" => {
                check_fields(value, CTX, &["model", "mean"])?;
                Ok(SessionModel::Exponential {
                    mean: req_f64(value, "mean", CTX)?,
                })
            }
            "pareto" => {
                check_fields(value, CTX, &["model", "shape", "minimum"])?;
                Ok(SessionModel::Pareto {
                    shape: req_f64(value, "shape", CTX)?,
                    minimum: req_f64(value, "minimum", CTX)?,
                })
            }
            "fixed" => {
                check_fields(value, CTX, &["model", "length"])?;
                Ok(SessionModel::Fixed {
                    length: req_f64(value, "length", CTX)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown model \"{other}\" (expected exponential, pareto, or fixed)"
            ))),
        }
    }
}

impl ToJson for ChurnTraceConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("duration".to_string(), JsonValue::from_u64(self.duration)),
            (
                "arrival_rate".to_string(),
                JsonValue::from_f64(self.arrival_rate),
            ),
            ("sessions".to_string(), self.sessions.to_json()),
            (
                "crash_fraction".to_string(),
                JsonValue::from_f64(self.crash_fraction),
            ),
        ])
    }
}

impl FromJson for ChurnTraceConfig {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "churn trace config";
        check_fields(
            value,
            CTX,
            &["duration", "arrival_rate", "sessions", "crash_fraction"],
        )?;
        Ok(ChurnTraceConfig {
            duration: req_u64(value, "duration", CTX)? as Tick,
            arrival_rate: req_f64(value, "arrival_rate", CTX)?,
            sessions: SessionModel::from_json(req(value, "sessions", CTX)?)?,
            crash_fraction: req_f64(value, "crash_fraction", CTX)?,
        })
    }
}

impl ToJson for ReplicationStrategy {
    fn to_json(&self) -> JsonValue {
        JsonValue::from_str_value(match self {
            ReplicationStrategy::Uniform => "uniform",
            ReplicationStrategy::Proportional => "proportional",
            ReplicationStrategy::SquareRoot => "square_root",
        })
    }
}

impl FromJson for ReplicationStrategy {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        match value.as_str() {
            Some("uniform") => Ok(ReplicationStrategy::Uniform),
            Some("proportional") => Ok(ReplicationStrategy::Proportional),
            Some("square_root") => Ok(ReplicationStrategy::SquareRoot),
            _ => Err(ScenarioError::invalid(
                "replication strategy must be \"uniform\", \"proportional\", or \"square_root\"",
            )),
        }
    }
}

impl ToJson for Workload {
    fn to_json(&self) -> JsonValue {
        match *self {
            Workload::Stationary => JsonValue::Object(vec![(
                "kind".to_string(),
                JsonValue::from_str_value("stationary"),
            )]),
            Workload::FlashCrowd {
                hot_item,
                start,
                end,
                intensity,
            } => JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::from_str_value("flash_crowd")),
                ("hot_item".to_string(), JsonValue::from_u64(hot_item.rank())),
                ("start".to_string(), JsonValue::from_u64(start)),
                ("end".to_string(), JsonValue::from_u64(end)),
                ("intensity".to_string(), JsonValue::from_f64(intensity)),
            ]),
        }
    }
}

impl FromJson for Workload {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "workload";
        match req_str(value, "kind", CTX)? {
            "stationary" => {
                check_fields(value, CTX, &["kind"])?;
                Ok(Workload::Stationary)
            }
            "flash_crowd" => {
                check_fields(
                    value,
                    CTX,
                    &["kind", "hot_item", "start", "end", "intensity"],
                )?;
                Ok(Workload::FlashCrowd {
                    hot_item: ItemId::new(req_u64(value, "hot_item", CTX)?),
                    start: req_u64(value, "start", CTX)? as Tick,
                    end: req_u64(value, "end", CTX)? as Tick,
                    intensity: req_f64(value, "intensity", CTX)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown kind \"{other}\" (expected stationary or flash_crowd)"
            ))),
        }
    }
}

impl ToJson for TraceRunConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("overlay".to_string(), self.overlay.to_json()),
            (
                "bootstrap_peers".to_string(),
                JsonValue::from_usize(self.bootstrap_peers),
            ),
            (
                "catalog_items".to_string(),
                JsonValue::from_usize(self.catalog_items),
            ),
            (
                "catalog_skew".to_string(),
                JsonValue::from_f64(self.catalog_skew),
            ),
            ("replication".to_string(), self.replication.to_json()),
            (
                "replica_budget".to_string(),
                JsonValue::from_usize(self.replica_budget),
            ),
            ("workload".to_string(), self.workload.to_json()),
            (
                "queries_per_tick".to_string(),
                JsonValue::from_f64(self.queries_per_tick),
            ),
            (
                "query_ttl".to_string(),
                JsonValue::from_u64(u64::from(self.query_ttl)),
            ),
            ("query_method".to_string(), self.query_method.to_json()),
            (
                "snapshot_interval".to_string(),
                JsonValue::from_u64(self.snapshot_interval),
            ),
        ])
    }
}

impl FromJson for TraceRunConfig {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "trace run config";
        check_fields(
            value,
            CTX,
            &[
                "overlay",
                "bootstrap_peers",
                "catalog_items",
                "catalog_skew",
                "replication",
                "replica_budget",
                "workload",
                "queries_per_tick",
                "query_ttl",
                "query_method",
                "snapshot_interval",
            ],
        )?;
        Ok(TraceRunConfig {
            overlay: OverlayConfig::from_json(req(value, "overlay", CTX)?)?,
            bootstrap_peers: req_usize(value, "bootstrap_peers", CTX)?,
            catalog_items: req_usize(value, "catalog_items", CTX)?,
            catalog_skew: req_f64(value, "catalog_skew", CTX)?,
            replication: ReplicationStrategy::from_json(req(value, "replication", CTX)?)?,
            replica_budget: req_usize(value, "replica_budget", CTX)?,
            workload: Workload::from_json(req(value, "workload", CTX)?)?,
            queries_per_tick: req_f64(value, "queries_per_tick", CTX)?,
            query_ttl: req_u32(value, "query_ttl", CTX)?,
            query_method: QueryMethod::from_json(req(value, "query_method", CTX)?)?,
            snapshot_interval: req_u64(value, "snapshot_interval", CTX)? as Tick,
        })
    }
}

impl ToJson for OverlaySample {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("time".to_string(), JsonValue::from_u64(self.time)),
            ("peers".to_string(), JsonValue::from_usize(self.peers)),
            ("edges".to_string(), JsonValue::from_usize(self.edges)),
            (
                "mean_degree".to_string(),
                JsonValue::from_f64(self.mean_degree),
            ),
            (
                "max_degree".to_string(),
                JsonValue::from_usize(self.max_degree),
            ),
            (
                "giant_component_fraction".to_string(),
                JsonValue::from_f64(self.giant_component_fraction),
            ),
        ])
    }
}

impl FromJson for OverlaySample {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "overlay sample";
        check_fields(
            value,
            CTX,
            &[
                "time",
                "peers",
                "edges",
                "mean_degree",
                "max_degree",
                "giant_component_fraction",
            ],
        )?;
        Ok(OverlaySample {
            time: req_u64(value, "time", CTX)? as Tick,
            peers: req_usize(value, "peers", CTX)?,
            edges: req_usize(value, "edges", CTX)?,
            mean_degree: req_f64(value, "mean_degree", CTX)?,
            max_degree: req_usize(value, "max_degree", CTX)?,
            giant_component_fraction: req_f64(value, "giant_component_fraction", CTX)?,
        })
    }
}

// ---------------------------------------------------------------------------------------
// sfo-overlay types.

impl ToJson for ProtocolConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "active_cap".to_string(),
                JsonValue::from_usize(self.active_cap),
            ),
            (
                "passive_cap".to_string(),
                JsonValue::from_usize(self.passive_cap),
            ),
            (
                "attach_walks".to_string(),
                JsonValue::from_u64(u64::from(self.attach_walks)),
            ),
            (
                "forward_ttl".to_string(),
                JsonValue::from_u64(u64::from(self.forward_ttl)),
            ),
            (
                "shuffle_interval".to_string(),
                JsonValue::from_u64(self.shuffle_interval),
            ),
            (
                "shuffle_size".to_string(),
                JsonValue::from_usize(self.shuffle_size),
            ),
            (
                "probe_interval".to_string(),
                JsonValue::from_u64(self.probe_interval),
            ),
            (
                "probe_timeout".to_string(),
                JsonValue::from_u64(self.probe_timeout),
            ),
            (
                "suspect_grace".to_string(),
                JsonValue::from_u64(self.suspect_grace),
            ),
        ])
    }
}

impl FromJson for ProtocolConfig {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "overlay protocol config";
        check_fields(
            value,
            CTX,
            &[
                "active_cap",
                "passive_cap",
                "attach_walks",
                "forward_ttl",
                "shuffle_interval",
                "shuffle_size",
                "probe_interval",
                "probe_timeout",
                "suspect_grace",
            ],
        )?;
        Ok(ProtocolConfig {
            active_cap: req_usize(value, "active_cap", CTX)?,
            passive_cap: req_usize(value, "passive_cap", CTX)?,
            attach_walks: req_u32(value, "attach_walks", CTX)?,
            forward_ttl: req_u32(value, "forward_ttl", CTX)?,
            shuffle_interval: req_u64(value, "shuffle_interval", CTX)?,
            shuffle_size: req_usize(value, "shuffle_size", CTX)?,
            probe_interval: req_u64(value, "probe_interval", CTX)?,
            probe_timeout: req_u64(value, "probe_timeout", CTX)?,
            suspect_grace: req_u64(value, "suspect_grace", CTX)?,
        })
    }
}

impl ToJson for LiveConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("peers".to_string(), JsonValue::from_usize(self.peers)),
            (
                "arrival_spacing".to_string(),
                JsonValue::from_u64(self.arrival_spacing),
            ),
            ("sessions".to_string(), self.sessions.to_json()),
            (
                "crash_fraction".to_string(),
                JsonValue::from_f64(self.crash_fraction),
            ),
            ("settle".to_string(), JsonValue::from_u64(self.settle)),
            ("protocol".to_string(), self.protocol.to_json()),
        ])
    }
}

impl FromJson for LiveConfig {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "live overlay config";
        check_fields(
            value,
            CTX,
            &[
                "peers",
                "arrival_spacing",
                "sessions",
                "crash_fraction",
                "settle",
                "protocol",
            ],
        )?;
        Ok(LiveConfig {
            peers: req_usize(value, "peers", CTX)?,
            arrival_spacing: req_u64(value, "arrival_spacing", CTX)?,
            sessions: SessionModel::from_json(req(value, "sessions", CTX)?)?,
            crash_fraction: req_f64(value, "crash_fraction", CTX)?,
            settle: req_u64(value, "settle", CTX)?,
            protocol: ProtocolConfig::from_json(req(value, "protocol", CTX)?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_core::DegreeCutoff;

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: T) {
        let json = value.to_json();
        let text = json.to_pretty_string();
        let reparsed = JsonValue::parse(&text).expect("codec output parses");
        let back = T::from_json(&reparsed).expect("codec output decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn sim_configs_round_trip() {
        roundtrip(SimulationConfig::small());
        let mut cfg = SimulationConfig::small();
        cfg.overlay = OverlayConfig {
            stubs: 2,
            cutoff: DegreeCutoff::Unbounded,
            join_strategy: JoinStrategy::DegreePreferential,
            repair_on_leave: false,
        };
        cfg.query_method = QueryMethod::RandomWalk;
        roundtrip(cfg);
    }

    #[test]
    fn trace_configs_round_trip() {
        roundtrip(TraceRunConfig::small());
        let mut cfg = TraceRunConfig::small();
        cfg.replication = ReplicationStrategy::Proportional;
        cfg.workload = Workload::FlashCrowd {
            hot_item: ItemId::new(3),
            start: 10,
            end: 90,
            intensity: 0.75,
        };
        cfg.query_method = QueryMethod::Flooding;
        roundtrip(cfg);
        roundtrip(ChurnTraceConfig {
            duration: 500,
            arrival_rate: 0.4,
            sessions: SessionModel::Pareto {
                shape: 1.6,
                minimum: 30.0,
            },
            crash_fraction: 0.25,
        });
        roundtrip(SessionModel::Exponential { mean: 80.0 });
        roundtrip(SessionModel::Fixed { length: 12.0 });
    }

    #[test]
    fn live_configs_round_trip() {
        roundtrip(ProtocolConfig::small());
        roundtrip(LiveConfig::small());
        let mut cfg = LiveConfig::small();
        cfg.sessions = SessionModel::Pareto {
            shape: 1.2,
            minimum: 64.0,
        };
        cfg.crash_fraction = 0.5;
        cfg.protocol.active_cap = 20;
        roundtrip(cfg);
    }

    #[test]
    fn fitness_distributions_round_trip() {
        roundtrip(FitnessDistribution::Uniform);
        roundtrip(FitnessDistribution::UniformRange { min: 0.1, max: 0.9 });
        roundtrip(FitnessDistribution::Exponential { rate: 1.5 });
    }

    #[test]
    fn overlay_samples_round_trip() {
        roundtrip(OverlaySample {
            time: 42,
            peers: 100,
            edges: 280,
            mean_degree: 5.6,
            max_degree: 30,
            giant_component_fraction: 0.987654321,
        });
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        let bad = JsonValue::parse("{\"method\": \"teleport\"}").unwrap();
        assert!(matches!(
            QueryMethod::from_json(&bad),
            Err(ScenarioError::InvalidSpec { .. })
        ));
        let bad = JsonValue::parse("{\"strategy\": \"psychic\"}").unwrap();
        assert!(matches!(
            JoinStrategy::from_json(&bad),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }
}
