//! Error type of the scenario layer.

use sfo_core::TopologyError;
use sfo_graph::snapshot::SnapshotError;
use sfo_overlay::OverlayError;
use sfo_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing, validating, or running a scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The spec is structurally valid JSON but describes an impossible scenario (zero
    /// nodes, a cutoff below `m`, an empty TTL grid, ...), or a field has the wrong shape.
    InvalidSpec {
        /// Human-readable description of the violated constraint, naming the field.
        reason: String,
    },
    /// The spec file is not valid JSON.
    Parse {
        /// What went wrong.
        message: String,
        /// 1-based line of the offending character.
        line: usize,
        /// 1-based column of the offending character.
        column: usize,
    },
    /// A topology generator rejected its configuration or could not place a link.
    Topology(TopologyError),
    /// The churn simulator or trace runner rejected its configuration.
    Sim(SimError),
    /// A `TopologySpec::Snapshot` file could not be read, failed verification, or lacks
    /// the section the scenario needs.
    Snapshot(SnapshotError),
    /// The live membership protocol rejected its configuration or a transport failed.
    Overlay(OverlayError),
    /// Remote execution failed: a worker could not be reached, served the wrong
    /// snapshot, or returned a protocol error (the transport lives in `sfo-net`; this
    /// variant is its error surface inside the scenario layer).
    Remote {
        /// Human-readable description of what the dispatcher or a worker reported.
        message: String,
    },
}

impl ScenarioError {
    /// Builds an [`ScenarioError::InvalidSpec`] from anything stringly.
    pub fn invalid(reason: impl Into<String>) -> Self {
        ScenarioError::InvalidSpec {
            reason: reason.into(),
        }
    }

    /// Builds an [`ScenarioError::Remote`] from anything stringly.
    pub fn remote(message: impl Into<String>) -> Self {
        ScenarioError::Remote {
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidSpec { reason } => write!(f, "invalid scenario spec: {reason}"),
            ScenarioError::Parse {
                message,
                line,
                column,
            } => write!(
                f,
                "spec parse error at line {line}, column {column}: {message}"
            ),
            ScenarioError::Topology(e) => write!(f, "topology generation failed: {e}"),
            ScenarioError::Sim(e) => write!(f, "simulation failed: {e}"),
            ScenarioError::Snapshot(e) => write!(f, "topology snapshot failed: {e}"),
            ScenarioError::Overlay(e) => write!(f, "live overlay failed: {e}"),
            ScenarioError::Remote { message } => write!(f, "remote execution failed: {message}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Topology(e) => Some(e),
            ScenarioError::Sim(e) => Some(e),
            ScenarioError::Snapshot(e) => Some(e),
            ScenarioError::Overlay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for ScenarioError {
    fn from(value: TopologyError) -> Self {
        ScenarioError::Topology(value)
    }
}

impl From<SimError> for ScenarioError {
    fn from(value: SimError) -> Self {
        ScenarioError::Sim(value)
    }
}

impl From<SnapshotError> for ScenarioError {
    fn from(value: SnapshotError) -> Self {
        ScenarioError::Snapshot(value)
    }
}

impl From<OverlayError> for ScenarioError {
    fn from(value: OverlayError) -> Self {
        ScenarioError::Overlay(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let invalid = ScenarioError::invalid("nodes must be positive");
        assert!(invalid.to_string().contains("nodes must be positive"));
        assert!(invalid.source().is_none());

        let parse = ScenarioError::Parse {
            message: "expected ':'".to_string(),
            line: 3,
            column: 9,
        };
        assert!(parse.to_string().contains("line 3"));

        let topo = ScenarioError::from(TopologyError::InvalidConfig { reason: "m" });
        assert!(topo.source().is_some());
        let sim = ScenarioError::from(SimError::EmptyOverlay);
        assert!(sim.source().is_some());
        let overlay = ScenarioError::from(OverlayError::invalid("peers"));
        assert!(overlay.to_string().contains("live overlay failed"));
        assert!(overlay.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ScenarioError>();
    }
}
