//! Building snapshot files from scenario specs: the write side of
//! [`TopologySpec::Snapshot`].
//!
//! [`build_snapshot`] draws the realization-0 topology of a single-curve static spec on
//! the workspace's standard stream — `stream_rng(seed, label_salt(curve label), 0)` —
//! freezes it, and wraps it as a [`SnapshotFile`] whose provenance records the curve
//! label, `m`, cutoff, seed, and the stream's next `u64` (the `sweep_seed`). Because
//! that is byte for byte the state an inline engine-batched sweep would reach, a
//! scenario run against the saved file reproduces the inline run exactly; see
//! [`crate::ScenarioRunner`] and `docs/FORMATS.md`.
//!
//! This is the library behind `sfo snapshot build`; it lives in `sfo-scenario` so tests
//! and other frontends can build snapshots without shelling out.

use crate::spec::{DynamicsSpec, ScenarioSpec, TopologySpec};
use crate::ScenarioError;
use rand::RngCore;
use sfo_engine::ShardedCsr;
use sfo_graph::snapshot::{Provenance, SnapshotFile, SnapshotOrigin};
use sfo_search::experiment::{label_salt, stream_rng};

/// Generates the realization-0 topology of `spec` and packs it as a snapshot with
/// provenance, ready to [`SnapshotFile::save`].
///
/// `shards > 1` also partitions the frozen arrays with [`ShardedCsr`] and embeds the
/// shard manifest (node ranges plus boundary tables — the per-host hand-off unit); the
/// stored topology is identical either way, and a scenario run against the file applies
/// its own `sweep.shard_count` regardless.
///
/// # Errors
///
/// Returns [`ScenarioError::InvalidSpec`] when `spec` is not a static scenario with
/// exactly one inline topology curve, and [`ScenarioError::Topology`] when generation
/// itself fails.
pub fn build_snapshot(spec: &ScenarioSpec, shards: usize) -> Result<SnapshotFile, ScenarioError> {
    if !matches!(spec.dynamics, DynamicsSpec::Static) {
        return Err(ScenarioError::invalid(
            "snapshot build needs a static scenario (the topology section is what gets built)",
        ));
    }
    let curves = spec.expanded_topologies();
    let curve = match curves.as_slice() {
        [curve] => curve,
        [] => {
            return Err(ScenarioError::invalid(
                "snapshot build needs a \"topology\" section",
            ))
        }
        many => {
            return Err(ScenarioError::invalid(format!(
                "snapshot build needs exactly one topology; this spec expands to {} \
                 curves — drop the \"stubs\"/\"cutoffs\" sweep axes or split the spec",
                many.len()
            )))
        }
    };
    if let TopologySpec::Snapshot { path } = curve {
        return Err(ScenarioError::invalid(format!(
            "this spec already reads its topology from the snapshot {path}"
        )));
    }
    curve.validate()?;

    // The exact stream discipline of an inline (curve, realization 0) sweep task:
    // generate on the realization stream, then one u64 draw becomes the batch seed.
    // `curve_label` overrides both the salt and the stored label, exactly as it does
    // in an inline run.
    let label = spec.curve_label.clone().unwrap_or_else(|| curve.label());
    let mut rng = stream_rng(spec.seed, label_salt(&label), 0);
    let graph = curve.build()?.generate(&mut rng)?;
    let sweep_seed = rng.next_u64();

    let provenance = Provenance {
        label,
        m: curve.m() as u64,
        cutoff: curve.cutoff().map(|k_c| k_c as u64),
        seed: spec.seed,
        realization: 0,
        sweep_seed,
        origin: Some(SnapshotOrigin::Generator),
    };
    let mut file = if shards > 1 {
        ShardedCsr::from_csr_owned(graph.freeze(), shards).to_snapshot_file()
    } else {
        SnapshotFile::plain(graph.freeze())
    };
    file.provenance = Some(provenance);
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SearchSpec, SweepSpec};
    use sfo_sim::simulation::SimulationConfig;

    fn base_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::sweep(
            "build-test",
            TopologySpec::Pa {
                nodes: 200,
                m: 2,
                cutoff: Some(10),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2], 5),
            77,
            1,
        );
        spec.sweep.as_mut().unwrap().batch = true;
        spec
    }

    #[test]
    fn build_records_the_inline_stream_state() {
        let file = build_snapshot(&base_spec(), 0).unwrap();
        let provenance = file.provenance.as_ref().unwrap();
        assert_eq!(provenance.label, "PA, m=2, k_c=10");
        assert_eq!(provenance.m, 2);
        assert_eq!(provenance.cutoff, Some(10));
        assert_eq!(provenance.seed, 77);
        assert_eq!(provenance.realization, 0);
        assert_eq!(file.csr.node_count(), 200);
        assert!(file.shards.is_none());

        // Reproduce by hand: the topology and sweep seed come off one stream.
        let mut rng = stream_rng(77, label_salt("PA, m=2, k_c=10"), 0);
        let graph = base_spec()
            .topology
            .unwrap()
            .build()
            .unwrap()
            .generate(&mut rng)
            .unwrap();
        assert_eq!(file.csr, graph.freeze());
        assert_eq!(provenance.sweep_seed, rng.next_u64());
    }

    #[test]
    fn build_with_shards_embeds_a_matching_manifest() {
        let file = build_snapshot(&base_spec(), 4).unwrap();
        let records = file.shards.as_ref().unwrap();
        assert_eq!(records.len(), 4);
        let rebuilt = ShardedCsr::from_csr(&file.csr, 4);
        assert_eq!(rebuilt.to_snapshot_file().shards.as_ref().unwrap(), records);
    }

    #[test]
    fn non_static_and_multi_curve_specs_are_rejected() {
        let churn = ScenarioSpec::churn("churn", SimulationConfig::small(), 1, 1);
        assert!(matches!(
            build_snapshot(&churn, 0),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        let mut grid = base_spec();
        grid.sweep.as_mut().unwrap().stubs = vec![1, 2];
        assert!(matches!(
            build_snapshot(&grid, 0),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }
}
