//! Minimal JSON tree, parser, and writer backing the scenario spec files.
//!
//! The workspace builds offline, and the vendored `serde` stand-in is annotation-only, so
//! this module carries the actual serialization machinery for scenario specs and reports:
//! a [`JsonValue`] tree, a recursive-descent parser, and a deterministic pretty writer.
//! Two properties matter for the scenario layer and are guaranteed here:
//!
//! * **Round-tripping is lossless.** Integers are kept as integers (so 64-bit seeds never
//!   pass through `f64`), and floats are written in Rust's shortest-round-trip form, so
//!   `parse(write(v))` reproduces every finite number bit-for-bit. The one exception:
//!   JSON cannot represent NaN/inf, so non-finite floats serialize as `null` — spec
//!   validation rejects them before they can reach a writer, and report statistics are
//!   finite by construction.
//! * **Writing is deterministic.** Object members keep their insertion order and the
//!   writer has a single canonical layout, so equal values always produce identical
//!   bytes — the report round-trip tests compare serialized reports byte-for-byte.
//!
//! As one extension over strict JSON, the parser skips `//` line comments, so the spec
//! files shipped under `examples/` can carry the header comments tying them to the paper
//! figures they reproduce.

use crate::ScenarioError;
use std::fmt;

/// A JSON number, kept in the narrowest faithful representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JsonNumber {
    /// A non-negative integer (covers sizes, ticks, and 64-bit seeds exactly).
    Unsigned(u64),
    /// A negative integer.
    Signed(i64),
    /// Everything else (decimal point or exponent present).
    Float(f64),
}

impl JsonNumber {
    /// Returns the number as an `f64` (lossy only beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            JsonNumber::Unsigned(u) => u as f64,
            JsonNumber::Signed(i) => i as f64,
            JsonNumber::Float(f) => f,
        }
    }

    /// Returns the number as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonNumber::Unsigned(u) => Some(u),
            JsonNumber::Signed(i) => u64::try_from(i).ok(),
            JsonNumber::Float(_) => None,
        }
    }
}

/// One node of a parsed or to-be-written JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (see [`JsonNumber`]).
    Number(JsonNumber),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order so writing is deterministic.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a number value from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        JsonValue::Number(JsonNumber::Unsigned(value))
    }

    /// Builds a number value from a `usize`.
    pub fn from_usize(value: usize) -> Self {
        JsonValue::Number(JsonNumber::Unsigned(value as u64))
    }

    /// Builds a number value from an `f64`.
    ///
    /// The value is kept as [`JsonNumber::Float`] even when integral; an integral float
    /// prints without a decimal point ("3"), so it may re-parse as
    /// [`JsonNumber::Unsigned`] — the `f64` view is unchanged either way.
    pub fn from_f64(value: f64) -> Self {
        JsonValue::Number(JsonNumber::Float(value))
    }

    /// Builds a string value.
    pub fn from_str_value(value: &str) -> Self {
        JsonValue::String(value.to_string())
    }

    /// Builds `value` as a number or `null` when absent (the encoding used for optional
    /// knobs such as hard cutoffs).
    pub fn from_opt_usize(value: Option<usize>) -> Self {
        match value {
            Some(v) => JsonValue::from_usize(v),
            None => JsonValue::Null,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Returns the boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `f64`, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the number as `u64`, if this value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the number as `usize`, if this value is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// Returns the string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the members, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()
            .and_then(|members| members.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Parses a JSON document (tolerating `//` line comments).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] with a line/column position on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, ScenarioError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws()?;
        let value = parser.parse_value()?;
        parser.skip_ws()?;
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON document"));
        }
        Ok(value)
    }

    /// Serializes the value with the canonical two-space-indented layout.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures get one element
                // per line so spec files remain readable.
                let scalar_only = items
                    .iter()
                    .all(|v| !matches!(v, JsonValue::Array(_) | JsonValue::Object(_)));
                if scalar_only {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        push_indent(out, indent + 1);
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    push_indent(out, indent);
                    out.push(']');
                }
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, number: JsonNumber) {
    use std::fmt::Write as _;
    match number {
        JsonNumber::Unsigned(u) => {
            let _ = write!(out, "{u}");
        }
        JsonNumber::Signed(i) => {
            let _ = write!(out, "{i}");
        }
        JsonNumber::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is the shortest string that parses back to the
                // same bits, which is exactly the determinism the report round trip needs.
                let _ = write!(out, "{f}");
            } else {
                // JSON has no NaN/inf; null is the conventional degradation.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ScenarioError {
        let mut line = 1usize;
        let mut column = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ScenarioError::Parse {
            message: message.to_string(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) -> Result<(), ScenarioError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => self.pos += 1,
                Some(b'/') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'/') {
                        while let Some(b) = self.peek() {
                            self.pos += 1;
                            if b == b'\n' {
                                break;
                            }
                        }
                    } else {
                        return Err(self.error("unexpected '/' (only // comments are allowed)"));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ScenarioError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, ScenarioError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character at start of a value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(
        &mut self,
        keyword: &str,
        value: JsonValue,
    ) -> Result<JsonValue, ScenarioError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{keyword}'")))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, ScenarioError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws()?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws()?;
            let key = self.parse_string()?;
            self.skip_ws()?;
            self.expect(b':')?;
            self.skip_ws()?;
            let value = self.parse_value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.error(&format!("duplicate object key \"{key}\"")));
            }
            members.push((key, value));
            self.skip_ws()?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, ScenarioError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws()?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws()?;
            items.push(self.parse_value()?);
            self.skip_ws()?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ScenarioError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape sequence"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any spec the workspace
                            // writes; reject them instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8 boundaries: walk back one byte and take the
                    // full character from the source text.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by construction");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, ScenarioError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let number = if is_float {
            JsonNumber::Float(
                text.parse::<f64>()
                    .map_err(|_| self.error("invalid number"))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            JsonNumber::Signed(
                -stripped
                    .parse::<i64>()
                    .map_err(|_| self.error("integer out of range"))?,
            )
        } else {
            JsonNumber::Unsigned(
                text.parse::<u64>()
                    .map_err(|_| self.error("integer out of range"))?,
            )
        };
        Ok(JsonValue::Number(number))
    }
}

/// Conversion of a spec/report type into its JSON form.
pub trait ToJson {
    /// Builds the JSON tree for this value.
    fn to_json(&self) -> JsonValue;
}

/// Reconstruction of a spec/report type from its JSON form.
pub trait FromJson: Sized {
    /// Rebuilds the value from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`] describing the offending field.
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        JsonValue::parse(&v.to_pretty_string()).expect("writer output parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::from_u64(u64::MAX),
            JsonValue::Number(JsonNumber::Signed(-42)),
            JsonValue::from_f64(2.2),
            JsonValue::from_f64(0.1 + 0.2),
            JsonValue::from_str_value("hello \"quoted\" \\ line\nbreak"),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn integral_floats_reparse_as_integers_with_equal_value() {
        // 3.0 prints as "3", which re-parses as Unsigned(3): the f64 view is unchanged.
        let v = JsonValue::from_f64(3.0);
        let back = roundtrip(&v);
        assert_eq!(back.as_f64(), Some(3.0));
    }

    #[test]
    fn nested_structures_round_trip_and_preserve_order() {
        let v = JsonValue::Object(vec![
            ("zulu".to_string(), JsonValue::from_u64(1)),
            (
                "alpha".to_string(),
                JsonValue::Array(vec![
                    JsonValue::Null,
                    JsonValue::Object(vec![("x".to_string(), JsonValue::from_f64(1.5))]),
                ]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
        let text = v.to_pretty_string();
        assert!(text.find("zulu").unwrap() < text.find("alpha").unwrap());
        // Deterministic: writing twice yields identical bytes.
        assert_eq!(text, roundtrip(&v).to_pretty_string());
    }

    #[test]
    fn comments_are_skipped() {
        let text =
            "// header comment\n{\n  // inner\n  \"a\": [1, 2], // trailing\n  \"b\": null\n}\n";
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = JsonValue::parse("{\n  \"a\": oops\n}").unwrap_err();
        match err {
            ScenarioError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(
            JsonValue::parse("{\"a\": 1, \"a\": 2}").is_err(),
            "duplicate keys"
        );
        assert!(JsonValue::parse("[1, 2,]").is_err(), "trailing comma");
        assert!(JsonValue::parse("{} extra").is_err(), "trailing garbage");
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v = JsonValue::parse("\"caf\\u00e9 naïve\"").unwrap();
        assert_eq!(v.as_str(), Some("café naïve"));
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = JsonValue::parse("{\"n\": 3.5, \"u\": 7, \"s\": \"x\"}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("u").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("u").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
