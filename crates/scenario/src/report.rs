//! The uniform result of a scenario run, embedding its spec for provenance.
//!
//! Whatever a [`crate::ScenarioRunner`] executes — a static search sweep, a rate-driven
//! churn simulation, or a trace replay — it returns one [`ScenarioReport`]: the
//! originating [`ScenarioSpec`] plus a [`ScenarioResult`] of matching shape. Reports
//! serialize to JSON through the same deterministic writer as specs, so re-running a
//! deserialized spec reproduces the report byte for byte (enforced by the workspace's
//! round-trip tests), and a report file alone is enough to rerun or extend an experiment.

use crate::codec::{check_fields, req, req_f64, req_str, req_u32, req_u64, req_usize};
use crate::json::{FromJson, JsonValue, ToJson};
use crate::spec::ScenarioSpec;
use crate::ScenarioError;
use serde::{Deserialize, Serialize};
use sfo_analysis::{DataPoint, DataSeries, Summary};
use sfo_sim::simulation::OverlaySample;

/// Which measurement of a sweep curve to plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMetric {
    /// Mean distinct peers reached per search (the paper's efficiency metric).
    Hits,
    /// Mean messages per search (the paper's cost metric).
    Messages,
}

/// Mean, spread, and support of one measured quantity across realizations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Mean across realizations.
    pub mean: f64,
    /// Standard error across realizations (0 for a single realization).
    pub std_error: f64,
    /// Number of realizations averaged.
    pub realizations: usize,
}

impl Stat {
    /// Collapses an accumulated summary into its serializable form.
    pub fn from_summary(summary: &Summary) -> Self {
        Stat {
            mean: summary.mean(),
            std_error: summary.std_error(),
            realizations: summary.count(),
        }
    }
}

impl ToJson for Stat {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("mean".to_string(), JsonValue::from_f64(self.mean)),
            ("std_error".to_string(), JsonValue::from_f64(self.std_error)),
            (
                "realizations".to_string(),
                JsonValue::from_usize(self.realizations),
            ),
        ])
    }
}

impl FromJson for Stat {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "stat";
        check_fields(value, CTX, &["mean", "std_error", "realizations"])?;
        Ok(Stat {
            mean: req_f64(value, "mean", CTX)?,
            std_error: req_f64(value, "std_error", CTX)?,
            realizations: req_usize(value, "realizations", CTX)?,
        })
    }
}

/// One TTL point of a sweep curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The time-to-live this point corresponds to.
    pub ttl: u32,
    /// Hits per search, averaged across realizations.
    pub hits: Stat,
    /// Messages per search, averaged across realizations.
    pub messages: Stat,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("ttl".to_string(), JsonValue::from_u64(u64::from(self.ttl))),
            ("hits".to_string(), self.hits.to_json()),
            ("messages".to_string(), self.messages.to_json()),
        ])
    }
}

impl FromJson for SweepPoint {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "sweep point";
        check_fields(value, CTX, &["ttl", "hits", "messages"])?;
        Ok(SweepPoint {
            ttl: req_u32(value, "ttl", CTX)?,
            hits: Stat::from_json(req(value, "hits", CTX)?)?,
            messages: Stat::from_json(req(value, "messages", CTX)?)?,
        })
    }
}

/// One curve of a static sweep: a labelled topology configuration measured per TTL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// The curve label (see [`crate::TopologySpec::label`]); also names the RNG stream
    /// family the curve's realizations were drawn from.
    pub label: String,
    /// One point per TTL of the sweep grid.
    pub points: Vec<SweepPoint>,
}

impl SweepCurve {
    /// Converts the curve into a plot-ready series of the given metric.
    pub fn to_series(&self, metric: SweepMetric) -> DataSeries {
        let mut series = DataSeries::new(self.label.clone());
        for point in &self.points {
            let stat = match metric {
                SweepMetric::Hits => point.hits,
                SweepMetric::Messages => point.messages,
            };
            series.push(DataPoint {
                x: f64::from(point.ttl),
                y: stat.mean,
                y_error: stat.std_error,
                realizations: stat.realizations,
            });
        }
        series
    }
}

impl ToJson for SweepCurve {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("label".to_string(), JsonValue::from_str_value(&self.label)),
            (
                "points".to_string(),
                JsonValue::Array(self.points.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for SweepCurve {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "sweep curve";
        check_fields(value, CTX, &["label", "points"])?;
        let points = req(value, "points", CTX)?
            .as_array()
            .ok_or_else(|| ScenarioError::invalid("sweep curve: \"points\" must be an array"))?
            .iter()
            .map(SweepPoint::from_json)
            .collect::<Result<Vec<SweepPoint>, ScenarioError>>()?;
        Ok(SweepCurve {
            label: req_str(value, "label", CTX)?.to_string(),
            points,
        })
    }
}

/// One log-binned point of a `P(k)` degree-distribution curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeBinPoint {
    /// Geometric center of the bin (the abscissa on a log axis).
    pub k: f64,
    /// Probability density of the bin.
    pub density: f64,
    /// Raw number of degree samples in the bin.
    pub count: usize,
}

impl ToJson for DegreeBinPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("k".to_string(), JsonValue::from_f64(self.k)),
            ("density".to_string(), JsonValue::from_f64(self.density)),
            ("count".to_string(), JsonValue::from_usize(self.count)),
        ])
    }
}

impl FromJson for DegreeBinPoint {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "degree bin";
        check_fields(value, CTX, &["k", "density", "count"])?;
        Ok(DegreeBinPoint {
            k: req_f64(value, "k", CTX)?,
            density: req_f64(value, "density", CTX)?,
            count: req_usize(value, "count", CTX)?,
        })
    }
}

/// One curve of a degree-distribution scenario: the log-binned `P(k)` of a labelled
/// topology configuration, over the concatenated degrees of all its realizations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeCurve {
    /// The curve label (see [`crate::TopologySpec::label`]); also names the RNG stream
    /// family the curve's realizations were drawn from.
    pub label: String,
    /// Non-empty log bins, in increasing `k`.
    pub points: Vec<DegreeBinPoint>,
}

impl DegreeCurve {
    /// Converts the curve into a plot-ready `P(k)` series (the shape of Figs. 1-4).
    pub fn to_series(&self, realizations: usize) -> DataSeries {
        let mut series = DataSeries::new(self.label.clone());
        for point in &self.points {
            series.push(DataPoint {
                x: point.k,
                y: point.density,
                y_error: 0.0,
                realizations,
            });
        }
        series
    }
}

impl ToJson for DegreeCurve {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("label".to_string(), JsonValue::from_str_value(&self.label)),
            (
                "points".to_string(),
                JsonValue::Array(self.points.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for DegreeCurve {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "degree curve";
        check_fields(value, CTX, &["label", "points"])?;
        let points = req(value, "points", CTX)?
            .as_array()
            .ok_or_else(|| ScenarioError::invalid("degree curve: \"points\" must be an array"))?
            .iter()
            .map(DegreeBinPoint::from_json)
            .collect::<Result<Vec<DegreeBinPoint>, ScenarioError>>()?;
        Ok(DegreeCurve {
            label: req_str(value, "label", CTX)?.to_string(),
            points,
        })
    }
}

/// Outcome of one independent churn-simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnRealization {
    /// Realization index (also the RNG stream index).
    pub realization: usize,
    /// Lookups issued.
    pub queries_issued: usize,
    /// Lookups that found a replica within their TTL.
    pub queries_successful: usize,
    /// Total lookup messages.
    pub query_messages: usize,
    /// Fraction of lookups that succeeded.
    pub success_rate: f64,
    /// Mean messages per lookup.
    pub mean_query_messages: f64,
    /// Mean hops to the first replica over successful lookups.
    pub mean_hops_to_find: f64,
    /// Peers that joined after bootstrap.
    pub joins: usize,
    /// Graceful leaves.
    pub leaves: usize,
    /// Crashes.
    pub crashes: usize,
    /// Mean control messages per churn event.
    pub mean_churn_messages: f64,
    /// Peers alive at the end of the run.
    pub final_peers: usize,
    /// Periodic overlay-health samples.
    pub samples: Vec<OverlaySample>,
}

impl ToJson for ChurnRealization {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "realization".to_string(),
                JsonValue::from_usize(self.realization),
            ),
            (
                "queries_issued".to_string(),
                JsonValue::from_usize(self.queries_issued),
            ),
            (
                "queries_successful".to_string(),
                JsonValue::from_usize(self.queries_successful),
            ),
            (
                "query_messages".to_string(),
                JsonValue::from_usize(self.query_messages),
            ),
            (
                "success_rate".to_string(),
                JsonValue::from_f64(self.success_rate),
            ),
            (
                "mean_query_messages".to_string(),
                JsonValue::from_f64(self.mean_query_messages),
            ),
            (
                "mean_hops_to_find".to_string(),
                JsonValue::from_f64(self.mean_hops_to_find),
            ),
            ("joins".to_string(), JsonValue::from_usize(self.joins)),
            ("leaves".to_string(), JsonValue::from_usize(self.leaves)),
            ("crashes".to_string(), JsonValue::from_usize(self.crashes)),
            (
                "mean_churn_messages".to_string(),
                JsonValue::from_f64(self.mean_churn_messages),
            ),
            (
                "final_peers".to_string(),
                JsonValue::from_usize(self.final_peers),
            ),
            (
                "samples".to_string(),
                JsonValue::Array(self.samples.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ChurnRealization {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "churn realization";
        check_fields(
            value,
            CTX,
            &[
                "realization",
                "queries_issued",
                "queries_successful",
                "query_messages",
                "success_rate",
                "mean_query_messages",
                "mean_hops_to_find",
                "joins",
                "leaves",
                "crashes",
                "mean_churn_messages",
                "final_peers",
                "samples",
            ],
        )?;
        Ok(ChurnRealization {
            realization: req_usize(value, "realization", CTX)?,
            queries_issued: req_usize(value, "queries_issued", CTX)?,
            queries_successful: req_usize(value, "queries_successful", CTX)?,
            query_messages: req_usize(value, "query_messages", CTX)?,
            success_rate: req_f64(value, "success_rate", CTX)?,
            mean_query_messages: req_f64(value, "mean_query_messages", CTX)?,
            mean_hops_to_find: req_f64(value, "mean_hops_to_find", CTX)?,
            joins: req_usize(value, "joins", CTX)?,
            leaves: req_usize(value, "leaves", CTX)?,
            crashes: req_usize(value, "crashes", CTX)?,
            mean_churn_messages: req_f64(value, "mean_churn_messages", CTX)?,
            final_peers: req_usize(value, "final_peers", CTX)?,
            samples: samples_from_json(value, CTX)?,
        })
    }
}

/// Outcome of replaying the churn trace of one realization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRealization {
    /// Realization index (also the RNG stream index of the trace and the replay).
    pub realization: usize,
    /// Trace arrivals applied as joins.
    pub arrivals_applied: usize,
    /// Graceful departures applied.
    pub leaves_applied: usize,
    /// Crashes applied.
    pub crashes_applied: usize,
    /// Departures skipped because the peer was already gone.
    pub departures_skipped: usize,
    /// Lookups issued.
    pub queries_issued: usize,
    /// Lookups that found a replica within their TTL.
    pub queries_successful: usize,
    /// Fraction of lookups that succeeded.
    pub success_rate: f64,
    /// Total lookup messages.
    pub query_messages: usize,
    /// Control messages spent on joins and leave repair.
    pub control_messages: usize,
    /// Peers alive when the trace ended.
    pub final_peers: usize,
    /// Smallest giant-component fraction observed.
    pub worst_connectivity: f64,
    /// Periodic overlay-health samples.
    pub samples: Vec<OverlaySample>,
}

impl ToJson for TraceRealization {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "realization".to_string(),
                JsonValue::from_usize(self.realization),
            ),
            (
                "arrivals_applied".to_string(),
                JsonValue::from_usize(self.arrivals_applied),
            ),
            (
                "leaves_applied".to_string(),
                JsonValue::from_usize(self.leaves_applied),
            ),
            (
                "crashes_applied".to_string(),
                JsonValue::from_usize(self.crashes_applied),
            ),
            (
                "departures_skipped".to_string(),
                JsonValue::from_usize(self.departures_skipped),
            ),
            (
                "queries_issued".to_string(),
                JsonValue::from_usize(self.queries_issued),
            ),
            (
                "queries_successful".to_string(),
                JsonValue::from_usize(self.queries_successful),
            ),
            (
                "success_rate".to_string(),
                JsonValue::from_f64(self.success_rate),
            ),
            (
                "query_messages".to_string(),
                JsonValue::from_usize(self.query_messages),
            ),
            (
                "control_messages".to_string(),
                JsonValue::from_usize(self.control_messages),
            ),
            (
                "final_peers".to_string(),
                JsonValue::from_usize(self.final_peers),
            ),
            (
                "worst_connectivity".to_string(),
                JsonValue::from_f64(self.worst_connectivity),
            ),
            (
                "samples".to_string(),
                JsonValue::Array(self.samples.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for TraceRealization {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "trace realization";
        check_fields(
            value,
            CTX,
            &[
                "realization",
                "arrivals_applied",
                "leaves_applied",
                "crashes_applied",
                "departures_skipped",
                "queries_issued",
                "queries_successful",
                "success_rate",
                "query_messages",
                "control_messages",
                "final_peers",
                "worst_connectivity",
                "samples",
            ],
        )?;
        Ok(TraceRealization {
            realization: req_usize(value, "realization", CTX)?,
            arrivals_applied: req_usize(value, "arrivals_applied", CTX)?,
            leaves_applied: req_usize(value, "leaves_applied", CTX)?,
            crashes_applied: req_usize(value, "crashes_applied", CTX)?,
            departures_skipped: req_usize(value, "departures_skipped", CTX)?,
            queries_issued: req_usize(value, "queries_issued", CTX)?,
            queries_successful: req_usize(value, "queries_successful", CTX)?,
            success_rate: req_f64(value, "success_rate", CTX)?,
            query_messages: req_usize(value, "query_messages", CTX)?,
            control_messages: req_usize(value, "control_messages", CTX)?,
            final_peers: req_usize(value, "final_peers", CTX)?,
            worst_connectivity: req_f64(value, "worst_connectivity", CTX)?,
            samples: samples_from_json(value, CTX)?,
        })
    }
}

/// Outcome of growing one overlay through the live membership protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveRealization {
    /// Realization index (always 0: live scenarios grow one overlay per snapshot).
    pub realization: usize,
    /// Peers that arrived over the run.
    pub arrivals: usize,
    /// Graceful departures.
    pub leaves: usize,
    /// Crashes (departures without a `Leave` broadcast).
    pub crashes: usize,
    /// Peers still alive when the overlay was frozen.
    pub final_peers: usize,
    /// Mutual overlay links frozen into the snapshot graph.
    pub edges: usize,
    /// Largest frozen degree (never exceeds the protocol's active-view cap).
    pub max_degree: usize,
    /// Protocol messages delivered over the run.
    pub messages: usize,
    /// Path the provenance-tagged snapshot was written to.
    pub snapshot: String,
    /// Content identity of the written snapshot file.
    pub identity: u64,
}

impl ToJson for LiveRealization {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "realization".to_string(),
                JsonValue::from_usize(self.realization),
            ),
            ("arrivals".to_string(), JsonValue::from_usize(self.arrivals)),
            ("leaves".to_string(), JsonValue::from_usize(self.leaves)),
            ("crashes".to_string(), JsonValue::from_usize(self.crashes)),
            (
                "final_peers".to_string(),
                JsonValue::from_usize(self.final_peers),
            ),
            ("edges".to_string(), JsonValue::from_usize(self.edges)),
            (
                "max_degree".to_string(),
                JsonValue::from_usize(self.max_degree),
            ),
            ("messages".to_string(), JsonValue::from_usize(self.messages)),
            (
                "snapshot".to_string(),
                JsonValue::from_str_value(&self.snapshot),
            ),
            ("identity".to_string(), JsonValue::from_u64(self.identity)),
        ])
    }
}

impl FromJson for LiveRealization {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "live realization";
        check_fields(
            value,
            CTX,
            &[
                "realization",
                "arrivals",
                "leaves",
                "crashes",
                "final_peers",
                "edges",
                "max_degree",
                "messages",
                "snapshot",
                "identity",
            ],
        )?;
        Ok(LiveRealization {
            realization: req_usize(value, "realization", CTX)?,
            arrivals: req_usize(value, "arrivals", CTX)?,
            leaves: req_usize(value, "leaves", CTX)?,
            crashes: req_usize(value, "crashes", CTX)?,
            final_peers: req_usize(value, "final_peers", CTX)?,
            edges: req_usize(value, "edges", CTX)?,
            max_degree: req_usize(value, "max_degree", CTX)?,
            messages: req_usize(value, "messages", CTX)?,
            snapshot: req_str(value, "snapshot", CTX)?.to_string(),
            identity: req_u64(value, "identity", CTX)?,
        })
    }
}

fn samples_from_json(value: &JsonValue, ctx: &str) -> Result<Vec<OverlaySample>, ScenarioError> {
    req(value, "samples", ctx)?
        .as_array()
        .ok_or_else(|| ScenarioError::invalid(format!("{ctx}: \"samples\" must be an array")))?
        .iter()
        .map(OverlaySample::from_json)
        .collect()
}

/// The shape-matched payload of a [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioResult {
    /// Result of a static sweep: one curve per expanded topology configuration.
    Sweep {
        /// The measured curves, in sweep-grid order.
        curves: Vec<SweepCurve>,
    },
    /// Result of a degree-distribution scenario: one `P(k)` curve per expanded topology
    /// configuration.
    DegreeDistribution {
        /// The log-binned curves, in sweep-grid order.
        curves: Vec<DegreeCurve>,
    },
    /// Result of rate-driven churn runs.
    Churn {
        /// One entry per realization, in stream order.
        realizations: Vec<ChurnRealization>,
    },
    /// Result of trace replays.
    Trace {
        /// One entry per realization, in stream order.
        realizations: Vec<TraceRealization>,
    },
    /// Result of growing an overlay through the live membership protocol.
    Live {
        /// One entry per realization (always exactly one).
        realizations: Vec<LiveRealization>,
    },
}

impl ToJson for ScenarioResult {
    fn to_json(&self) -> JsonValue {
        match self {
            ScenarioResult::Sweep { curves } => JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::from_str_value("sweep")),
                (
                    "curves".to_string(),
                    JsonValue::Array(curves.iter().map(ToJson::to_json).collect()),
                ),
            ]),
            ScenarioResult::DegreeDistribution { curves } => JsonValue::Object(vec![
                (
                    "kind".to_string(),
                    JsonValue::from_str_value("degree_distribution"),
                ),
                (
                    "curves".to_string(),
                    JsonValue::Array(curves.iter().map(ToJson::to_json).collect()),
                ),
            ]),
            ScenarioResult::Churn { realizations } => JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::from_str_value("churn")),
                (
                    "realizations".to_string(),
                    JsonValue::Array(realizations.iter().map(ToJson::to_json).collect()),
                ),
            ]),
            ScenarioResult::Trace { realizations } => JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::from_str_value("trace")),
                (
                    "realizations".to_string(),
                    JsonValue::Array(realizations.iter().map(ToJson::to_json).collect()),
                ),
            ]),
            ScenarioResult::Live { realizations } => JsonValue::Object(vec![
                ("kind".to_string(), JsonValue::from_str_value("live")),
                (
                    "realizations".to_string(),
                    JsonValue::Array(realizations.iter().map(ToJson::to_json).collect()),
                ),
            ]),
        }
    }
}

impl FromJson for ScenarioResult {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "scenario result";
        let kind = req_str(value, "kind", CTX)?;
        match kind {
            "sweep" | "degree_distribution" => check_fields(value, CTX, &["kind", "curves"])?,
            "churn" | "trace" | "live" => check_fields(value, CTX, &["kind", "realizations"])?,
            _ => {}
        }
        match kind {
            "sweep" => Ok(ScenarioResult::Sweep {
                curves: req(value, "curves", CTX)?
                    .as_array()
                    .ok_or_else(|| {
                        ScenarioError::invalid("scenario result: \"curves\" must be an array")
                    })?
                    .iter()
                    .map(SweepCurve::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "degree_distribution" => Ok(ScenarioResult::DegreeDistribution {
                curves: req(value, "curves", CTX)?
                    .as_array()
                    .ok_or_else(|| {
                        ScenarioError::invalid("scenario result: \"curves\" must be an array")
                    })?
                    .iter()
                    .map(DegreeCurve::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "churn" => Ok(ScenarioResult::Churn {
                realizations: realizations_from_json(value)?,
            }),
            "trace" => Ok(ScenarioResult::Trace {
                realizations: req(value, "realizations", CTX)?
                    .as_array()
                    .ok_or_else(|| {
                        ScenarioError::invalid("scenario result: \"realizations\" must be an array")
                    })?
                    .iter()
                    .map(TraceRealization::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "live" => Ok(ScenarioResult::Live {
                realizations: req(value, "realizations", CTX)?
                    .as_array()
                    .ok_or_else(|| {
                        ScenarioError::invalid("scenario result: \"realizations\" must be an array")
                    })?
                    .iter()
                    .map(LiveRealization::from_json)
                    .collect::<Result<_, _>>()?,
            }),
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown kind \"{other}\""
            ))),
        }
    }
}

fn realizations_from_json(value: &JsonValue) -> Result<Vec<ChurnRealization>, ScenarioError> {
    req(value, "realizations", "scenario result")?
        .as_array()
        .ok_or_else(|| {
            ScenarioError::invalid("scenario result: \"realizations\" must be an array")
        })?
        .iter()
        .map(ChurnRealization::from_json)
        .collect()
}

/// The uniform outcome of running one [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The spec that produced this report, embedded verbatim for provenance: a report
    /// file alone suffices to rerun the scenario.
    pub spec: ScenarioSpec,
    /// The measured result, shape-matched to the spec's dynamics.
    pub result: ScenarioResult,
}

impl ScenarioReport {
    /// Returns the sweep curves, if this is a static-sweep report.
    pub fn sweep_curves(&self) -> Option<&[SweepCurve]> {
        match &self.result {
            ScenarioResult::Sweep { curves } => Some(curves),
            _ => None,
        }
    }

    /// Returns the curve with the given label, if present.
    pub fn curve_by_label(&self, label: &str) -> Option<&SweepCurve> {
        self.sweep_curves()?.iter().find(|c| c.label == label)
    }

    /// Converts every sweep curve into a plot-ready series of the given metric (empty
    /// for dynamic reports).
    pub fn series(&self, metric: SweepMetric) -> Vec<DataSeries> {
        self.sweep_curves()
            .map(|curves| curves.iter().map(|c| c.to_series(metric)).collect())
            .unwrap_or_default()
    }

    /// Returns the degree-distribution curves, if this is a degree report.
    pub fn degree_curves(&self) -> Option<&[DegreeCurve]> {
        match &self.result {
            ScenarioResult::DegreeDistribution { curves } => Some(curves),
            _ => None,
        }
    }

    /// Converts every degree curve into a plot-ready `P(k)` series (empty for other
    /// report kinds).
    pub fn degree_series(&self) -> Vec<DataSeries> {
        self.degree_curves()
            .map(|curves| {
                curves
                    .iter()
                    .map(|c| c.to_series(self.spec.realizations))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Returns the churn realizations, if this is a churn report.
    pub fn churn_realizations(&self) -> Option<&[ChurnRealization]> {
        match &self.result {
            ScenarioResult::Churn { realizations } => Some(realizations),
            _ => None,
        }
    }

    /// Returns the trace realizations, if this is a trace-replay report.
    pub fn trace_realizations(&self) -> Option<&[TraceRealization]> {
        match &self.result {
            ScenarioResult::Trace { realizations } => Some(realizations),
            _ => None,
        }
    }

    /// Returns the live-overlay realizations, if this is a live-growth report.
    pub fn live_realizations(&self) -> Option<&[LiveRealization]> {
        match &self.result {
            ScenarioResult::Live { realizations } => Some(realizations),
            _ => None,
        }
    }

    /// Serializes the report to its canonical JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] or [`ScenarioError::InvalidSpec`].
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        ScenarioReport::from_json(&JsonValue::parse(text)?)
    }
}

impl ToJson for ScenarioReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("spec".to_string(), self.spec.to_json()),
            ("result".to_string(), self.result.to_json()),
        ])
    }
}

impl FromJson for ScenarioReport {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "scenario report";
        check_fields(value, CTX, &["spec", "result"])?;
        Ok(ScenarioReport {
            spec: ScenarioSpec::from_json(req(value, "spec", CTX)?)?,
            result: ScenarioResult::from_json(req(value, "result", CTX)?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SearchSpec, SweepSpec, TopologySpec};

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            spec: ScenarioSpec::sweep(
                "sample",
                TopologySpec::Pa {
                    nodes: 100,
                    m: 2,
                    cutoff: Some(10),
                },
                SearchSpec::Flooding,
                SweepSpec::single(vec![2, 4], 5),
                3,
                2,
            ),
            result: ScenarioResult::Sweep {
                curves: vec![SweepCurve {
                    label: "PA, m=2, k_c=10".to_string(),
                    points: vec![SweepPoint {
                        ttl: 2,
                        hits: Stat {
                            mean: 10.5,
                            std_error: 0.25,
                            realizations: 2,
                        },
                        messages: Stat {
                            mean: 14.0,
                            std_error: 0.5,
                            realizations: 2,
                        },
                    }],
                }],
            },
        }
    }

    #[test]
    fn report_round_trips_byte_identically() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = ScenarioReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn series_conversion_matches_the_figure_point_shape() {
        let report = sample_report();
        let series = report.series(SweepMetric::Hits);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].label, "PA, m=2, k_c=10");
        let p = series[0].points[0];
        assert_eq!(p.x, 2.0);
        assert_eq!(p.y, 10.5);
        assert_eq!(p.y_error, 0.25);
        assert_eq!(p.realizations, 2);
        let messages = report.series(SweepMetric::Messages);
        assert_eq!(messages[0].points[0].y, 14.0);
        assert!(report.curve_by_label("PA, m=2, k_c=10").is_some());
        assert!(report.curve_by_label("nope").is_none());
    }
}
