//! The declarative scenario vocabulary: specs as data.
//!
//! A [`ScenarioSpec`] is a complete, serializable description of one experiment cell from
//! the paper's evaluation grid (or of one of its churn extensions): which topology family
//! to grow ([`TopologySpec`]), which search to run over it ([`SearchSpec`]), whether the
//! overlay is static or lives under join/leave dynamics ([`DynamicsSpec`]), and which
//! parameter grid to sweep ([`SweepSpec`]). Specs round-trip through JSON (see
//! [`crate::json`]) and are executed by [`crate::ScenarioRunner`], which embeds the spec
//! in its [`crate::ScenarioReport`] for provenance.

use crate::codec::{check_fields, opt_usize, req, req_f64, req_str, req_u32, req_u64, req_usize};
use crate::json::{FromJson, JsonValue, ToJson};
use crate::ScenarioError;
use serde::{Deserialize, Serialize};
use sfo_core::attractiveness::InitialAttractiveness;
use sfo_core::cm::ConfigurationModel;
use sfo_core::dapa::{DapaOverGrn, DapaOverMesh};
use sfo_core::fitness::{FitnessDistribution, FitnessModel};
use sfo_core::hapa::HopAndAttempt;
use sfo_core::local_events::LocalEventsModel;
use sfo_core::nonlinear::NonlinearPreferentialAttachment;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::ucm::UncorrelatedConfigurationModel;
use sfo_core::{DegreeCutoff, DynTopologyGenerator};
use sfo_graph::{CsrGraph, GraphView};
use sfo_overlay::sim::LiveConfig;
use sfo_search::biased_walk::DegreeBiasedWalk;
use sfo_search::expanding_ring::ExpandingRing;
use sfo_search::flooding::Flooding;
use sfo_search::normalized::NormalizedFlooding;
use sfo_search::probabilistic::ProbabilisticFlooding;
use sfo_search::random_walk::{MultipleRandomWalk, RandomWalk};
use sfo_search::SearchAlgorithm;
use sfo_sim::catalog::Catalog;
use sfo_sim::churn::ChurnTraceConfig;
use sfo_sim::query::QueryMethod;
use sfo_sim::simulation::SimulationConfig;
use sfo_sim::trace_runner::TraceRunConfig;

fn cutoff_label(cutoff: Option<usize>) -> String {
    match cutoff {
        None => "no k_c".to_string(),
        Some(k_c) => format!("k_c={k_c}"),
    }
}

/// One topology-generator configuration, covering every generator family in `sfo-core`.
///
/// Each variant holds exactly the parameters of the corresponding generator's
/// constructor plus the hard cutoff, so [`TopologySpec::build`] compiles it into a
/// [`DynTopologyGenerator`] without further input. `cutoff: None` means unbounded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Preferential attachment (paper Alg. 1).
    Pa {
        /// Overlay size.
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Hop-and-attempt PA (paper Alg. 3).
    Hapa {
        /// Overlay size.
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Configuration model with target exponent `gamma` (paper Alg. 2).
    Cm {
        /// Overlay size.
        nodes: usize,
        /// Target degree exponent.
        gamma: f64,
        /// Minimum degree.
        m: usize,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Uncorrelated configuration model with the structural cutoff (ref. \[59\]).
    Ucm {
        /// Overlay size.
        nodes: usize,
        /// Target degree exponent.
        gamma: f64,
        /// Minimum degree.
        m: usize,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Discover-and-attempt PA over a geometric-random-network substrate (paper Alg. 4).
    DapaGrn {
        /// Overlay size (the substrate defaults to twice this, mean degree 10).
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Local discovery TTL on the substrate.
        tau_sub: u32,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Discover-and-attempt PA over a 2D torus-mesh substrate (paper §IV-B).
    DapaMesh {
        /// Overlay size (the torus holds at least twice this many nodes).
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Local discovery TTL on the substrate.
        tau_sub: u32,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Nonlinear PA, `Π ∝ k^α` (refs. \[52, 53\]).
    NonlinearPa {
        /// Overlay size.
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Attachment exponent `α`.
        alpha: f64,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Fitness model, `Π ∝ η k` (refs. \[54, 55\]).
    Fitness {
        /// Overlay size.
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Distribution of the per-node fitness values.
        distribution: FitnessDistribution,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Local-events model: growth plus link addition and rewiring (ref. \[7\]).
    LocalEvents {
        /// Overlay size.
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Probability of a link-addition event.
        p_add_links: f64,
        /// Probability of a rewiring event.
        q_rewire: f64,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// Initial-attractiveness PA, `Π ∝ k + a` (paper §III-C exponent tuning).
    Attractiveness {
        /// Overlay size.
        nodes: usize,
        /// Stubs per joining node.
        m: usize,
        /// Initial attractiveness `a`.
        a: f64,
        /// Hard cutoff `k_c` (`None` = unbounded).
        cutoff: Option<usize>,
    },
    /// A pre-built topology loaded from a binary `SFOS` snapshot file written by
    /// `sfo snapshot build` (see `sfo_graph::snapshot`).
    ///
    /// The file carries the topology *and* its provenance — the generating curve's
    /// label, `m`, cutoff, seed, and the `sweep_seed` drawn from the generation stream
    /// right after the topology was built — so a scenario run against the snapshot is
    /// byte-identical to the same scenario run against the inline generator. The
    /// structural accessors ([`TopologySpec::nodes`], [`TopologySpec::m`],
    /// [`TopologySpec::cutoff`]) return placeholder values for this variant; the runner
    /// resolves the real ones from the file.
    ///
    /// Snapshot scenarios are single-curve and single-realization (the file holds one
    /// frozen realization), and search sweeps over them must set `sweep.batch = true`:
    /// the engine's per-job RNG streams are the only sweep discipline that survives the
    /// build/run split, which is what makes the results byte-identical.
    Snapshot {
        /// Path of the `.sfos` file, relative to the working directory of the run.
        path: String,
    },
}

impl TopologySpec {
    /// Returns the overlay size the spec describes (0 for [`TopologySpec::Snapshot`],
    /// whose size lives in the file header and is resolved by the runner).
    pub fn nodes(&self) -> usize {
        match *self {
            TopologySpec::Snapshot { .. } => 0,
            TopologySpec::Pa { nodes, .. }
            | TopologySpec::Hapa { nodes, .. }
            | TopologySpec::Cm { nodes, .. }
            | TopologySpec::Ucm { nodes, .. }
            | TopologySpec::DapaGrn { nodes, .. }
            | TopologySpec::DapaMesh { nodes, .. }
            | TopologySpec::NonlinearPa { nodes, .. }
            | TopologySpec::Fitness { nodes, .. }
            | TopologySpec::LocalEvents { nodes, .. }
            | TopologySpec::Attractiveness { nodes, .. } => nodes,
        }
    }

    /// Returns the stub count (minimum degree for the configuration models; 0 for
    /// [`TopologySpec::Snapshot`], whose `m` lives in the file's provenance record).
    pub fn m(&self) -> usize {
        match *self {
            TopologySpec::Snapshot { .. } => 0,
            TopologySpec::Pa { m, .. }
            | TopologySpec::Hapa { m, .. }
            | TopologySpec::Cm { m, .. }
            | TopologySpec::Ucm { m, .. }
            | TopologySpec::DapaGrn { m, .. }
            | TopologySpec::DapaMesh { m, .. }
            | TopologySpec::NonlinearPa { m, .. }
            | TopologySpec::Fitness { m, .. }
            | TopologySpec::LocalEvents { m, .. }
            | TopologySpec::Attractiveness { m, .. } => m,
        }
    }

    /// Returns the hard cutoff (`None` = unbounded; also `None` for
    /// [`TopologySpec::Snapshot`], whose cutoff lives in the file's provenance record).
    pub fn cutoff(&self) -> Option<usize> {
        match *self {
            TopologySpec::Snapshot { .. } => None,
            TopologySpec::Pa { cutoff, .. }
            | TopologySpec::Hapa { cutoff, .. }
            | TopologySpec::Cm { cutoff, .. }
            | TopologySpec::Ucm { cutoff, .. }
            | TopologySpec::DapaGrn { cutoff, .. }
            | TopologySpec::DapaMesh { cutoff, .. }
            | TopologySpec::NonlinearPa { cutoff, .. }
            | TopologySpec::Fitness { cutoff, .. }
            | TopologySpec::LocalEvents { cutoff, .. }
            | TopologySpec::Attractiveness { cutoff, .. } => cutoff,
        }
    }

    /// Returns a copy with the stub count replaced (used by sweep expansion; a no-op
    /// for [`TopologySpec::Snapshot`], which validation bars from sweep axes anyway).
    pub fn with_m(&self, new_m: usize) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            TopologySpec::Snapshot { .. } => {}
            TopologySpec::Pa { m, .. }
            | TopologySpec::Hapa { m, .. }
            | TopologySpec::Cm { m, .. }
            | TopologySpec::Ucm { m, .. }
            | TopologySpec::DapaGrn { m, .. }
            | TopologySpec::DapaMesh { m, .. }
            | TopologySpec::NonlinearPa { m, .. }
            | TopologySpec::Fitness { m, .. }
            | TopologySpec::LocalEvents { m, .. }
            | TopologySpec::Attractiveness { m, .. } => *m = new_m,
        }
        spec
    }

    /// Returns a copy with the hard cutoff replaced (used by sweep expansion; a no-op
    /// for [`TopologySpec::Snapshot`], which validation bars from sweep axes anyway).
    pub fn with_cutoff(&self, new_cutoff: Option<usize>) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            TopologySpec::Snapshot { .. } => {}
            TopologySpec::Pa { cutoff, .. }
            | TopologySpec::Hapa { cutoff, .. }
            | TopologySpec::Cm { cutoff, .. }
            | TopologySpec::Ucm { cutoff, .. }
            | TopologySpec::DapaGrn { cutoff, .. }
            | TopologySpec::DapaMesh { cutoff, .. }
            | TopologySpec::NonlinearPa { cutoff, .. }
            | TopologySpec::Fitness { cutoff, .. }
            | TopologySpec::LocalEvents { cutoff, .. }
            | TopologySpec::Attractiveness { cutoff, .. } => *cutoff = new_cutoff,
        }
        spec
    }

    /// The family tag used in the JSON encoding.
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::Pa { .. } => "pa",
            TopologySpec::Hapa { .. } => "hapa",
            TopologySpec::Cm { .. } => "cm",
            TopologySpec::Ucm { .. } => "ucm",
            TopologySpec::DapaGrn { .. } => "dapa_grn",
            TopologySpec::DapaMesh { .. } => "dapa_mesh",
            TopologySpec::NonlinearPa { .. } => "nonlinear_pa",
            TopologySpec::Fitness { .. } => "fitness",
            TopologySpec::LocalEvents { .. } => "local_events",
            TopologySpec::Attractiveness { .. } => "attractiveness",
            TopologySpec::Snapshot { .. } => "snapshot",
        }
    }

    /// The curve label of this configuration, matching the legend strings the figure
    /// harness has always used (e.g. `"PA, m=2, k_c=10"`).
    ///
    /// The label doubles as the salt of the configuration's RNG stream family (via
    /// [`sfo_search::experiment::label_salt`]), so a curve labelled the same way sees
    /// identical topologies in every harness.
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Pa { m, cutoff, .. } => {
                format!("PA, m={m}, {}", cutoff_label(cutoff))
            }
            TopologySpec::Hapa { m, cutoff, .. } => {
                format!("HAPA, m={m}, {}", cutoff_label(cutoff))
            }
            TopologySpec::Cm {
                gamma, m, cutoff, ..
            } => format!("CM gamma={gamma}, m={m}, {}", cutoff_label(cutoff)),
            TopologySpec::Ucm {
                gamma, m, cutoff, ..
            } => format!("UCM gamma={gamma}, m={m}, {}", cutoff_label(cutoff)),
            TopologySpec::DapaGrn {
                m, tau_sub, cutoff, ..
            } => format!("DAPA m={m}, {}, tau_sub={tau_sub}", cutoff_label(cutoff)),
            TopologySpec::DapaMesh {
                m, tau_sub, cutoff, ..
            } => format!(
                "DAPA-mesh m={m}, {}, tau_sub={tau_sub}",
                cutoff_label(cutoff)
            ),
            TopologySpec::NonlinearPa {
                m, alpha, cutoff, ..
            } => format!("PA alpha={alpha}, m={m}, {}", cutoff_label(cutoff)),
            TopologySpec::Fitness {
                m,
                distribution,
                cutoff,
                ..
            } => {
                // The distribution is part of the label: configurations differing only in
                // fitness law must not collide on stream family or curve identity.
                let dist = match distribution {
                    FitnessDistribution::Uniform => "uniform".to_string(),
                    FitnessDistribution::UniformRange { min, max } => format!("U[{min},{max}]"),
                    FitnessDistribution::Exponential { rate } => format!("exp({rate})"),
                };
                format!("fitness {dist}, m={m}, {}", cutoff_label(cutoff))
            }
            TopologySpec::LocalEvents {
                m,
                p_add_links,
                q_rewire,
                cutoff,
                ..
            } => format!(
                "local events p={p_add_links} q={q_rewire}, m={m}, {}",
                cutoff_label(cutoff)
            ),
            TopologySpec::Attractiveness { m, a, cutoff, .. } => {
                format!("PA a={a}, m={m}, {}", cutoff_label(cutoff))
            }
            // Placeholder only: the runner labels snapshot curves with the provenance
            // label stored in the file, so reports match the inline generator's.
            TopologySpec::Snapshot { ref path } => format!("snapshot:{path}"),
        }
    }

    /// Compiles the spec into a boxed generator.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Topology`] when the generator constructor rejects the
    /// parameters (zero `m`, too few nodes, ...).
    pub fn build(&self) -> Result<DynTopologyGenerator, ScenarioError> {
        let cutoff: DegreeCutoff = self.cutoff().into();
        Ok(match *self {
            TopologySpec::Pa { nodes, m, .. } => {
                Box::new(PreferentialAttachment::new(nodes, m)?.with_cutoff(cutoff))
            }
            TopologySpec::Hapa { nodes, m, .. } => {
                Box::new(HopAndAttempt::new(nodes, m)?.with_cutoff(cutoff))
            }
            TopologySpec::Cm {
                nodes, gamma, m, ..
            } => Box::new(ConfigurationModel::new(nodes, gamma, m)?.with_cutoff(cutoff)),
            TopologySpec::Ucm {
                nodes, gamma, m, ..
            } => {
                Box::new(UncorrelatedConfigurationModel::new(nodes, gamma, m)?.with_cutoff(cutoff))
            }
            TopologySpec::DapaGrn {
                nodes, m, tau_sub, ..
            } => Box::new(DapaOverGrn::new(nodes, m, tau_sub)?.with_cutoff(cutoff)),
            TopologySpec::DapaMesh {
                nodes, m, tau_sub, ..
            } => Box::new(DapaOverMesh::new(nodes, m, tau_sub)?.with_cutoff(cutoff)),
            TopologySpec::NonlinearPa {
                nodes, m, alpha, ..
            } => {
                Box::new(NonlinearPreferentialAttachment::new(nodes, m, alpha)?.with_cutoff(cutoff))
            }
            TopologySpec::Fitness {
                nodes,
                m,
                distribution,
                ..
            } => Box::new(
                FitnessModel::new(nodes, m)?
                    .with_distribution(distribution)
                    .with_cutoff(cutoff),
            ),
            TopologySpec::LocalEvents {
                nodes,
                m,
                p_add_links,
                q_rewire,
                ..
            } => Box::new(
                LocalEventsModel::new(nodes, m, p_add_links, q_rewire)?.with_cutoff(cutoff),
            ),
            TopologySpec::Attractiveness { nodes, m, a, .. } => {
                Box::new(InitialAttractiveness::new(nodes, m, a)?.with_cutoff(cutoff))
            }
            TopologySpec::Snapshot { .. } => {
                return Err(ScenarioError::invalid(
                    "snapshot topologies are loaded from their file, not generated; \
                     the scenario runner resolves them directly",
                ))
            }
        })
    }

    /// Validates the configuration without generating anything.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`] for constraints the spec layer checks
    /// itself (zero nodes, a hard cutoff below `m`) and [`ScenarioError::Topology`] for
    /// everything the generator constructors reject.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if let TopologySpec::Snapshot { path } = self {
            // The file must exist, be a snapshot this build reads, and carry the
            // provenance record the runner needs for its RNG discipline. The arrays
            // themselves are verified (checksum and structure) at load time.
            let (header, provenance) = sfo_graph::snapshot::read_meta(path)?;
            if header.node_count == 0 {
                return Err(ScenarioError::invalid(format!(
                    "topology snapshot: {path} holds an empty topology"
                )));
            }
            if provenance.is_none() {
                return Err(ScenarioError::invalid(format!(
                    "topology snapshot: {path} has no provenance record; scenario runs \
                     need one — build the file with `sfo snapshot build`",
                )));
            }
            return Ok(());
        }
        if self.nodes() == 0 {
            return Err(ScenarioError::invalid(format!(
                "topology {}: nodes must be positive",
                self.family()
            )));
        }
        if let Some(k_c) = self.cutoff() {
            if k_c < self.m() {
                return Err(ScenarioError::invalid(format!(
                    "topology {}: hard cutoff {k_c} is below the stub count m={}",
                    self.family(),
                    self.m()
                )));
            }
        }
        self.build().map(|_| ())
    }
}

/// A compiled search configuration, ready to run against frozen snapshots.
///
/// Generic over the snapshot backend: the legacy sweep path runs on [`CsrGraph`] (the
/// default), the engine-batched path on [`sfo_engine::ShardedCsr`] — both compiled by
/// [`SearchSpec::build_for`].
pub enum BuiltSearch<G: GraphView + ?Sized = CsrGraph> {
    /// A plain TTL-sweep algorithm.
    Algorithm(Box<dyn SearchAlgorithm<G> + Send + Sync>),
    /// The paper's message-normalized random walk: for each TTL, the walk's hop budget is
    /// the message count of a normalized flood with fan-out `k_min` from the same source.
    RwNormalizedToNf {
        /// NF fan-out whose message count sets the walk budget.
        k_min: usize,
    },
}

/// One search-algorithm configuration (paper §V plus the related-work variants).
///
/// `k_min: None` on the normalized-flooding variants means "match the topology's stub
/// count `m`", which is how the paper couples NF fan-out to minimum connectedness in
/// Figs. 9-12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchSpec {
    /// Flooding (FL).
    Flooding,
    /// Normalized flooding (NF) with fan-out `k_min` (`None` = match `m`).
    NormalizedFlooding {
        /// Fan-out bound (`None` = match the topology's `m`).
        k_min: Option<usize>,
    },
    /// Gossip-style probabilistic flooding with forwarding probability `p`.
    ProbabilisticFlooding {
        /// Per-neighbor forwarding probability, in `(0, 1]`.
        p: f64,
    },
    /// Expanding-ring search: successive floods of growing radius.
    ExpandingRing {
        /// TTL of the first ring.
        initial_ttl: u32,
        /// Radius increment between rings.
        increment: u32,
    },
    /// A single random walk (RW).
    RandomWalk,
    /// `walkers` parallel random walks sharing one TTL budget.
    MultipleRandomWalk {
        /// Number of parallel walkers.
        walkers: usize,
    },
    /// The degree-biased (highest-degree-seeking) walk of Adamic et al.
    DegreeBiasedWalk,
    /// RW with its hop budget normalized to the message cost of NF at the same TTL
    /// (the methodology of Figs. 11-12). `k_min: None` = match `m`.
    RwNormalizedToNf {
        /// NF fan-out whose message count sets the walk budget (`None` = match `m`).
        k_min: Option<usize>,
    },
}

impl SearchSpec {
    /// Short display name ("FL", "NF", ...).
    pub fn name(&self) -> &'static str {
        match self {
            SearchSpec::Flooding => "FL",
            SearchSpec::NormalizedFlooding { .. } => "NF",
            SearchSpec::ProbabilisticFlooding { .. } => "pFL",
            SearchSpec::ExpandingRing { .. } => "ring",
            SearchSpec::RandomWalk => "RW",
            SearchSpec::MultipleRandomWalk { .. } => "MRW",
            SearchSpec::DegreeBiasedWalk => "HD-RW",
            SearchSpec::RwNormalizedToNf { .. } => "RW/NF",
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`] for zero fan-outs, zero walkers, or
    /// forwarding probabilities outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match *self {
            SearchSpec::NormalizedFlooding { k_min: Some(0) }
            | SearchSpec::RwNormalizedToNf { k_min: Some(0) } => Err(ScenarioError::invalid(
                "search: normalized-flooding fan-out k_min must be positive",
            )),
            SearchSpec::ProbabilisticFlooding { p } => {
                if p.is_finite() && p > 0.0 && p <= 1.0 {
                    Ok(())
                } else {
                    Err(ScenarioError::invalid(
                        "search: forwarding probability p must lie in (0, 1]",
                    ))
                }
            }
            SearchSpec::ExpandingRing {
                initial_ttl,
                increment,
            } => {
                if initial_ttl == 0 || increment == 0 {
                    Err(ScenarioError::invalid(
                        "search: expanding ring needs a positive initial TTL and increment",
                    ))
                } else {
                    Ok(())
                }
            }
            SearchSpec::MultipleRandomWalk { walkers: 0 } => Err(ScenarioError::invalid(
                "search: multiple random walk needs at least one walker",
            )),
            _ => Ok(()),
        }
    }

    /// Compiles the spec for topologies with stub count `m` (resolving `k_min: None`),
    /// bound to the default [`CsrGraph`] backend.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`SearchSpec::validate`].
    pub fn build(&self, m: usize) -> Result<BuiltSearch, ScenarioError> {
        self.build_for::<CsrGraph>(m)
    }

    /// Compiles the spec for topologies with stub count `m`, bound to any graph backend
    /// (every search algorithm is generic over [`GraphView`]).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`SearchSpec::validate`].
    pub fn build_for<G: GraphView + ?Sized>(
        &self,
        m: usize,
    ) -> Result<BuiltSearch<G>, ScenarioError> {
        self.validate()?;
        Ok(match *self {
            SearchSpec::Flooding => BuiltSearch::Algorithm(Box::new(Flooding::new())),
            SearchSpec::NormalizedFlooding { k_min } => {
                BuiltSearch::Algorithm(Box::new(NormalizedFlooding::new(k_min.unwrap_or(m).max(1))))
            }
            SearchSpec::ProbabilisticFlooding { p } => {
                BuiltSearch::Algorithm(Box::new(ProbabilisticFlooding::new(p)))
            }
            SearchSpec::ExpandingRing {
                initial_ttl,
                increment,
            } => BuiltSearch::Algorithm(Box::new(ExpandingRing::new(initial_ttl, increment))),
            SearchSpec::RandomWalk => BuiltSearch::Algorithm(Box::new(RandomWalk::new())),
            SearchSpec::MultipleRandomWalk { walkers } => {
                BuiltSearch::Algorithm(Box::new(MultipleRandomWalk::new(walkers)))
            }
            SearchSpec::DegreeBiasedWalk => {
                BuiltSearch::Algorithm(Box::new(DegreeBiasedWalk::new()))
            }
            SearchSpec::RwNormalizedToNf { k_min } => BuiltSearch::RwNormalizedToNf {
                k_min: k_min.unwrap_or(m).max(1),
            },
        })
    }
}

/// Whether (and how) the overlay lives under join/leave dynamics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DynamicsSpec {
    /// Static snapshots: generate realizations, freeze them, sweep searches (the paper's
    /// §V methodology).
    Static,
    /// Rate-driven churn: the discrete-event simulator of `sfo-sim` with memoryless
    /// join/leave/crash/query interarrivals (the paper's future-work question).
    Churn {
        /// The full simulator configuration, including the live-overlay policy.
        sim: SimulationConfig,
    },
    /// Trace-driven churn: a reproducible churn trace replayed against the live overlay.
    /// Scenarios sharing a seed and trace configuration replay the *identical* event
    /// sequence, so overlay policies can be compared under the same churn.
    Trace {
        /// How the churn trace is generated.
        trace: ChurnTraceConfig,
        /// How the overlay, catalog, and workload replaying the trace are configured.
        run: TraceRunConfig,
    },
    /// Protocol-grown topology: run the `sfo-overlay` membership protocol over its
    /// deterministic in-process transport, freeze the emergent overlay, and write it to
    /// a provenance-tagged snapshot — so the whole static measurement stack (sweeps,
    /// degree figures, remote dispatch) consumes live-grown graphs unchanged.
    Live {
        /// Peer count, churn schedule, and protocol parameters of the growth run.
        live: LiveConfig,
        /// Path the frozen overlay is written to as a `.sfos` snapshot.
        snapshot: String,
    },
}

impl DynamicsSpec {
    /// The kind tag used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            DynamicsSpec::Static => "static",
            DynamicsSpec::Churn { .. } => "churn",
            DynamicsSpec::Trace { .. } => "trace",
            DynamicsSpec::Live { .. } => "live",
        }
    }

    /// Validates the dynamics configuration via the simulator's own validators.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Sim`] naming the violated constraint (for example a
    /// flash-crowd intensity outside `[0, 1]`).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match self {
            DynamicsSpec::Static => Ok(()),
            DynamicsSpec::Churn { sim } => {
                validate_query_method(sim.query_method)?;
                sim.validate().map_err(ScenarioError::from)
            }
            DynamicsSpec::Trace { trace, run } => {
                validate_query_method(run.query_method)?;
                trace.validate()?;
                run.validate()?;
                let catalog = Catalog::new(run.catalog_items, run.catalog_skew)?;
                run.workload.validate(&catalog)?;
                Ok(())
            }
            DynamicsSpec::Live { live, snapshot } => {
                live.validate()
                    .map_err(|e| ScenarioError::invalid(e.to_string()))?;
                if snapshot.is_empty() {
                    return Err(ScenarioError::invalid(
                        "live scenarios must name the \"snapshot\" path the grown \
                         overlay is written to",
                    ));
                }
                Ok(())
            }
        }
    }
}

fn validate_query_method(method: QueryMethod) -> Result<(), ScenarioError> {
    if matches!(method, QueryMethod::NormalizedFlooding { k_min: 0 }) {
        Err(ScenarioError::invalid(
            "dynamics: query-method fan-out k_min must be positive",
        ))
    } else {
        Ok(())
    }
}

/// The parameter grid a static scenario expands into, plus the measurement knobs.
///
/// The cross product `stubs × cutoffs` is applied to the base topology (an empty axis
/// keeps the base value), producing one labelled curve per combination; every curve is
/// then swept over `ttls` with `searches_per_point` random sources per TTL and averaged
/// over the scenario's realizations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Stub counts to sweep (empty = keep the base topology's `m`).
    pub stubs: Vec<usize>,
    /// Hard cutoffs to sweep, `None` = unbounded (empty = keep the base cutoff).
    pub cutoffs: Vec<Option<usize>>,
    /// Time-to-live grid.
    pub ttls: Vec<u32>,
    /// Searches (random sources) per TTL per realization.
    pub searches_per_point: usize,
    /// Worker threads (0 = all available cores). With `batch: false` they fan
    /// `(curve, realization)` tasks; with `batch: true` they are the engine pool fanning
    /// searches *inside* each realization. Results are independent of this value either
    /// way: every task or job has its own RNG stream.
    pub threads: usize,
    /// Number of contiguous node-id shards each frozen realization is partitioned into
    /// (0 or 1 = unsharded). Sharding never changes results: the sharded store reports
    /// the exact neighbor order of the unsharded snapshot.
    pub shard_count: usize,
    /// Routes the TTL sweep of every realization through the `sfo-engine` query-batch
    /// scheduler: one job per `(ttl, search)` cell with its own derived RNG stream,
    /// fanned across a persistent worker pool. Batched results are independent of the
    /// thread and shard counts, but use per-job streams instead of the legacy per-curve
    /// sequential stream, so they differ numerically (not statistically) from
    /// `batch: false` runs.
    pub batch: bool,
    /// Addresses of `sfo serve` worker processes to split the sweep across (`host:port`
    /// for TCP, `unix:/path` for Unix sockets; empty = run locally). Requires a
    /// snapshot topology — the workers must serve the *identical* realization, which
    /// the dispatcher enforces by comparing snapshot identity hashes — and therefore
    /// also `batch: true`. Because every job's RNG stream is a pure function of its
    /// global job index, the worker list (its length *and* how the grid is split) can
    /// never change a byte of the report.
    pub workers: Vec<String>,
    /// Placed execution: worker `i` of the list holds only shard `i` of
    /// `workers.len()` (shipped by the dispatcher, or pinned with `sfo serve
    /// --shard i`), each job starts on the worker owning its source node, and a
    /// traversal that needs a foreign row hops between workers as a forwarded
    /// frontier. Requires a non-empty `workers` list. Because every frontier carries
    /// the exact serial traversal state, placement can never change a byte of the
    /// report either.
    pub placed: bool,
}

impl SweepSpec {
    /// A sweep of the base topology only: no grid, just a TTL sweep.
    pub fn single(ttls: Vec<u32>, searches_per_point: usize) -> Self {
        SweepSpec {
            stubs: Vec::new(),
            cutoffs: Vec::new(),
            ttls,
            searches_per_point,
            threads: 0,
            shard_count: 0,
            batch: false,
            workers: Vec::new(),
            placed: false,
        }
    }

    /// A full `stubs × cutoffs` grid.
    pub fn grid(
        stubs: Vec<usize>,
        cutoffs: Vec<Option<usize>>,
        ttls: Vec<u32>,
        searches_per_point: usize,
    ) -> Self {
        SweepSpec {
            stubs,
            cutoffs,
            ttls,
            searches_per_point,
            threads: 0,
            shard_count: 0,
            batch: false,
            workers: Vec::new(),
            placed: false,
        }
    }

    /// A `stubs × cutoffs` grid with no measurement knobs: the shape of a
    /// degree-distribution scenario, which sweeps topologies but runs no searches.
    pub fn axes(stubs: Vec<usize>, cutoffs: Vec<Option<usize>>) -> Self {
        SweepSpec {
            stubs,
            cutoffs,
            ttls: Vec::new(),
            searches_per_point: 0,
            threads: 0,
            shard_count: 0,
            batch: false,
            workers: Vec::new(),
            placed: false,
        }
    }

    /// Returns a copy routed through the engine: `shard_count` shards per realization,
    /// batched execution.
    pub fn with_engine(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self.batch = true;
        self
    }
}

/// What a static scenario measures over its expanded topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasureSpec {
    /// The search sweep of the paper's §V: every curve swept over `ttls` with
    /// `searches_per_point` sources per TTL (the default, and the only measure dynamic
    /// scenarios support).
    SearchSweep,
    /// The degree distributions of the paper's §III/§IV: `P(k)` of every curve,
    /// log-binned over the concatenated degrees of all realizations (the methodology of
    /// Figs. 1-4). Needs no `search` section, and the `sweep` section — if present —
    /// contributes only its `stubs`/`cutoffs` axes.
    DegreeDistribution {
        /// Logarithmic bins per decade of `k` (the figures use 8).
        bins_per_decade: usize,
    },
}

impl MeasureSpec {
    /// The kind tag used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            MeasureSpec::SearchSweep => "search_sweep",
            MeasureSpec::DegreeDistribution { .. } => "degree_distribution",
        }
    }
}

impl ToJson for MeasureSpec {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![("kind".to_string(), JsonValue::from_str_value(self.kind()))];
        if let MeasureSpec::DegreeDistribution { bins_per_decade } = *self {
            members.push((
                "bins_per_decade".to_string(),
                JsonValue::from_usize(bins_per_decade),
            ));
        }
        JsonValue::Object(members)
    }
}

impl FromJson for MeasureSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "measure";
        match req_str(value, "kind", CTX)? {
            "search_sweep" => {
                check_fields(value, CTX, &["kind"])?;
                Ok(MeasureSpec::SearchSweep)
            }
            "degree_distribution" => {
                check_fields(value, CTX, &["kind", "bins_per_decade"])?;
                Ok(MeasureSpec::DegreeDistribution {
                    bins_per_decade: req_usize(value, "bins_per_decade", CTX)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown kind \"{other}\" (expected search_sweep or degree_distribution)"
            ))),
        }
    }
}

/// A complete, serializable scenario: one cell (or grid) of the paper's evaluation.
///
/// Static search sweeps require `topology`, `search`, and `sweep`; degree-distribution
/// scenarios require `topology` and take no `search`; dynamic scenarios (churn or trace
/// replay) configure everything inside `dynamics` and must leave the three static fields
/// `None` — [`ScenarioSpec::validate`] enforces the split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name; doubles as the RNG stream-family salt for dynamic runs.
    pub name: String,
    /// Base topology of a static scenario (`None` for dynamic scenarios).
    pub topology: Option<TopologySpec>,
    /// Search algorithm of a static sweep (`None` for dynamic and degree scenarios).
    pub search: Option<SearchSpec>,
    /// Static snapshots, rate-driven churn, or trace replay.
    pub dynamics: DynamicsSpec,
    /// Parameter grid and measurement knobs of a static scenario (`None` for dynamic
    /// scenarios; optional for degree distributions).
    pub sweep: Option<SweepSpec>,
    /// What the scenario measures (search sweep or degree distribution).
    pub measure: MeasureSpec,
    /// Master seed; every realization/thread stream is derived from it.
    pub seed: u64,
    /// Independent realizations averaged per data point (static) or independent runs
    /// (dynamic).
    pub realizations: usize,
    /// Overrides the single curve's label — and therefore its RNG stream-family salt —
    /// in place of [`TopologySpec::label`]. Only valid for static scenarios that expand
    /// to exactly one inline curve (no sweep axes, not a snapshot topology, whose
    /// provenance label already pins the streams). This is what lets the `P(k)` figure
    /// harness express its historically-labelled curves as degree specs without moving
    /// a single stream.
    pub curve_label: Option<String>,
}

impl ScenarioSpec {
    /// Builds a static sweep scenario.
    pub fn sweep(
        name: impl Into<String>,
        topology: TopologySpec,
        search: SearchSpec,
        sweep: SweepSpec,
        seed: u64,
        realizations: usize,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            topology: Some(topology),
            search: Some(search),
            dynamics: DynamicsSpec::Static,
            sweep: Some(sweep),
            measure: MeasureSpec::SearchSweep,
            seed,
            realizations,
            curve_label: None,
        }
    }

    /// Builds a degree-distribution scenario: `P(k)` of the base topology (expanded over
    /// the optional sweep axes), log-binned with `bins_per_decade` bins per decade.
    pub fn degree_distribution(
        name: impl Into<String>,
        topology: TopologySpec,
        sweep: Option<SweepSpec>,
        bins_per_decade: usize,
        seed: u64,
        realizations: usize,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            topology: Some(topology),
            search: None,
            dynamics: DynamicsSpec::Static,
            sweep,
            measure: MeasureSpec::DegreeDistribution { bins_per_decade },
            seed,
            realizations,
            curve_label: None,
        }
    }

    /// Builds a rate-driven churn scenario.
    pub fn churn(
        name: impl Into<String>,
        sim: SimulationConfig,
        seed: u64,
        realizations: usize,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            topology: None,
            search: None,
            dynamics: DynamicsSpec::Churn { sim },
            sweep: None,
            measure: MeasureSpec::SearchSweep,
            seed,
            realizations,
            curve_label: None,
        }
    }

    /// Builds a trace-replay scenario.
    pub fn trace(
        name: impl Into<String>,
        trace: ChurnTraceConfig,
        run: TraceRunConfig,
        seed: u64,
        realizations: usize,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            topology: None,
            search: None,
            dynamics: DynamicsSpec::Trace { trace, run },
            sweep: None,
            measure: MeasureSpec::SearchSweep,
            seed,
            realizations,
            curve_label: None,
        }
    }

    /// Builds a live-overlay growth scenario: the protocol grows the topology, the
    /// emergent overlay is frozen and written to `snapshot`.
    pub fn live(
        name: impl Into<String>,
        live: LiveConfig,
        snapshot: impl Into<String>,
        seed: u64,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            topology: None,
            search: None,
            dynamics: DynamicsSpec::Live {
                live,
                snapshot: snapshot.into(),
            },
            sweep: None,
            measure: MeasureSpec::SearchSweep,
            seed,
            realizations: 1,
            curve_label: None,
        }
    }

    /// Expands the sweep grid into the concrete topology of every curve, in grid order
    /// (stub axis outer, cutoff axis inner). A missing sweep section keeps the base
    /// topology alone; dynamic scenarios (no topology) expand to nothing.
    pub fn expanded_topologies(&self) -> Vec<TopologySpec> {
        let Some(base) = &self.topology else {
            return Vec::new();
        };
        let Some(sweep) = &self.sweep else {
            return vec![base.clone()];
        };
        let stubs = if sweep.stubs.is_empty() {
            vec![base.m()]
        } else {
            sweep.stubs.clone()
        };
        let cutoffs = if sweep.cutoffs.is_empty() {
            vec![base.cutoff()]
        } else {
            sweep.cutoffs.clone()
        };
        let mut expanded = Vec::with_capacity(stubs.len() * cutoffs.len());
        for &m in &stubs {
            for &cutoff in &cutoffs {
                expanded.push(base.with_m(m).with_cutoff(cutoff));
            }
        }
        expanded
    }

    /// Validates the whole scenario: field consistency, the topology grid, the search
    /// configuration, and the dynamics configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`], [`ScenarioError::Topology`], or
    /// [`ScenarioError::Sim`] naming the offending constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::invalid("scenario name must not be empty"));
        }
        if self.realizations == 0 {
            return Err(ScenarioError::invalid("realizations must be positive"));
        }
        self.dynamics.validate()?;
        match self.dynamics {
            DynamicsSpec::Static => {
                if self.topology.is_none() {
                    return Err(ScenarioError::invalid(
                        "static scenarios require a \"topology\" section",
                    ));
                }
                match self.measure {
                    MeasureSpec::SearchSweep => {
                        let Some(search) = &self.search else {
                            return Err(ScenarioError::invalid(
                                "static scenarios require a \"search\" section",
                            ));
                        };
                        let Some(sweep) = &self.sweep else {
                            return Err(ScenarioError::invalid(
                                "static scenarios require a \"sweep\" section",
                            ));
                        };
                        if sweep.ttls.is_empty() {
                            return Err(ScenarioError::invalid("sweep: ttls must not be empty"));
                        }
                        if sweep.searches_per_point == 0 {
                            return Err(ScenarioError::invalid(
                                "sweep: searches_per_point must be positive",
                            ));
                        }
                        search.validate()?;
                    }
                    MeasureSpec::DegreeDistribution { bins_per_decade } => {
                        if bins_per_decade == 0 {
                            return Err(ScenarioError::invalid(
                                "measure: bins_per_decade must be positive",
                            ));
                        }
                        if self.search.is_some() {
                            return Err(ScenarioError::invalid(
                                "degree-distribution scenarios run no searches; \
                                 \"search\" must be null",
                            ));
                        }
                        if let Some(sweep) = &self.sweep {
                            if !sweep.ttls.is_empty() || sweep.searches_per_point != 0 {
                                return Err(ScenarioError::invalid(
                                    "degree-distribution scenarios use only the \
                                     \"stubs\"/\"cutoffs\" sweep axes; \"ttls\" must be \
                                     empty and \"searches_per_point\" zero",
                                ));
                            }
                        }
                    }
                }
                for topology in self.expanded_topologies() {
                    topology.validate()?;
                }
                if let Some(TopologySpec::Snapshot { path }) = &self.topology {
                    self.validate_snapshot_rules(path)?;
                }
                if let Some(label) = &self.curve_label {
                    if label.is_empty() {
                        return Err(ScenarioError::invalid(
                            "\"curve_label\" must not be empty (omit it to use the \
                             topology's own label)",
                        ));
                    }
                    if matches!(self.topology, Some(TopologySpec::Snapshot { .. })) {
                        return Err(ScenarioError::invalid(
                            "\"curve_label\" cannot override a snapshot topology; the \
                             file's provenance label already names (and salts) its streams",
                        ));
                    }
                    if self.expanded_topologies().len() != 1 {
                        return Err(ScenarioError::invalid(
                            "\"curve_label\" names exactly one curve; drop the \
                             \"stubs\"/\"cutoffs\" sweep axes or the override",
                        ));
                    }
                }
                if let Some(sweep) = &self.sweep {
                    self.validate_workers(sweep)?;
                }
                Ok(())
            }
            DynamicsSpec::Churn { .. } | DynamicsSpec::Trace { .. } | DynamicsSpec::Live { .. } => {
                if self.topology.is_some() || self.search.is_some() || self.sweep.is_some() {
                    return Err(ScenarioError::invalid(
                        "dynamic scenarios configure their overlay and workload inside \
                         \"dynamics\"; \"topology\", \"search\", and \"sweep\" must be null",
                    ));
                }
                if self.measure != MeasureSpec::SearchSweep {
                    return Err(ScenarioError::invalid(
                        "dynamic scenarios support only the search_sweep measure",
                    ));
                }
                if self.curve_label.is_some() {
                    return Err(ScenarioError::invalid(
                        "dynamic scenarios have no curves; \"curve_label\" must be null",
                    ));
                }
                if matches!(self.dynamics, DynamicsSpec::Live { .. }) && self.realizations != 1 {
                    return Err(ScenarioError::invalid(
                        "live scenarios grow exactly one overlay per snapshot file; \
                         \"realizations\" must be 1",
                    ));
                }
                Ok(())
            }
        }
    }

    /// The extra constraints of a scenario that splits its sweep across remote workers.
    ///
    /// Workers serve one frozen realization loaded from a snapshot file, so a
    /// distributed sweep must name that file as its topology (anything generated inline
    /// would exist only in the dispatching process; the identity-hash handshake makes
    /// the mismatch impossible rather than silent). The snapshot rules then already pin
    /// the scenario to one curve, one realization, and `batch: true` — the per-job
    /// stream discipline that makes the split invisible in the results.
    fn validate_workers(&self, sweep: &SweepSpec) -> Result<(), ScenarioError> {
        if sweep.workers.is_empty() {
            if sweep.placed {
                return Err(ScenarioError::invalid(
                    "sweep: \"placed\" splits the topology across the \"workers\" \
                     list; name at least one worker address",
                ));
            }
            return Ok(());
        }
        if sweep.workers.iter().any(|w| w.is_empty()) {
            return Err(ScenarioError::invalid(
                "sweep: worker addresses must not be empty strings",
            ));
        }
        if self.measure != MeasureSpec::SearchSweep {
            return Err(ScenarioError::invalid(
                "sweep: \"workers\" applies only to search sweeps; degree \
                 distributions read the snapshot locally",
            ));
        }
        if !matches!(self.topology, Some(TopologySpec::Snapshot { .. })) {
            return Err(ScenarioError::invalid(
                "sweep: \"workers\" requires a snapshot topology — remote workers \
                 serve a persisted realization (`sfo snapshot build`, then point \
                 \"topology\" at the .sfos file and `sfo serve` it on every worker)",
            ));
        }
        Ok(())
    }

    /// The extra constraints of a scenario whose topology is a pre-built snapshot file.
    ///
    /// A snapshot holds exactly one frozen realization of one curve, so the scenario
    /// must be single-curve (no sweep axes) and single-realization; its seed must match
    /// the seed the file was built with (anything else would silently measure a
    /// different experiment than the spec claims); and a search sweep must route
    /// through the engine batch scheduler, because per-job RNG streams are the only
    /// sweep discipline that can continue identically across the build/run split.
    fn validate_snapshot_rules(&self, path: &str) -> Result<(), ScenarioError> {
        // TopologySpec::validate has already rejected provenance-less files, but this
        // is a fresh read of an external file — never assume it still agrees.
        let (_, provenance) = sfo_graph::snapshot::read_meta(path)?;
        let Some(provenance) = provenance else {
            return Err(ScenarioError::invalid(format!(
                "topology snapshot: {path} has no provenance record; scenario runs \
                 need one — build the file with `sfo snapshot build`",
            )));
        };
        if self.realizations != 1 {
            return Err(ScenarioError::invalid(
                "snapshot scenarios hold one frozen realization; \"realizations\" must be 1",
            ));
        }
        if self.seed != provenance.seed {
            return Err(ScenarioError::invalid(format!(
                "scenario seed {} does not match the seed {} the snapshot was built \
                 with; the file continues that seed's RNG streams",
                self.seed, provenance.seed
            )));
        }
        if let Some(sweep) = &self.sweep {
            if !sweep.stubs.is_empty() || !sweep.cutoffs.is_empty() {
                return Err(ScenarioError::invalid(
                    "snapshot topologies cannot be regenerated along \"stubs\"/\"cutoffs\" \
                     sweep axes; both must be empty",
                ));
            }
            if self.measure == MeasureSpec::SearchSweep && !sweep.batch {
                return Err(ScenarioError::invalid(
                    "snapshot search sweeps require \"batch\": true — the engine's \
                     per-job RNG streams are what make results byte-identical to the \
                     inline generator",
                ));
            }
        }
        Ok(())
    }

    /// Serializes the spec to its canonical JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a spec from JSON text (tolerating `//` line comments).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] for malformed JSON and
    /// [`ScenarioError::InvalidSpec`] for well-formed JSON with wrong fields.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        ScenarioSpec::from_json(&JsonValue::parse(text)?)
    }
}

// ---------------------------------------------------------------------------------------
// JSON codecs.

impl ToJson for TopologySpec {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![(
            "family".to_string(),
            JsonValue::from_str_value(self.family()),
        )];
        if let TopologySpec::Snapshot { path } = self {
            members.push(("path".to_string(), JsonValue::from_str_value(path)));
            return JsonValue::Object(members);
        }
        members.push(("nodes".to_string(), JsonValue::from_usize(self.nodes())));
        match *self {
            TopologySpec::Cm { gamma, .. } | TopologySpec::Ucm { gamma, .. } => {
                members.push(("gamma".to_string(), JsonValue::from_f64(gamma)));
            }
            _ => {}
        }
        members.push(("m".to_string(), JsonValue::from_usize(self.m())));
        match *self {
            TopologySpec::DapaGrn { tau_sub, .. } | TopologySpec::DapaMesh { tau_sub, .. } => {
                members.push((
                    "tau_sub".to_string(),
                    JsonValue::from_u64(u64::from(tau_sub)),
                ));
            }
            TopologySpec::NonlinearPa { alpha, .. } => {
                members.push(("alpha".to_string(), JsonValue::from_f64(alpha)));
            }
            TopologySpec::Fitness { distribution, .. } => {
                members.push(("distribution".to_string(), distribution.to_json()));
            }
            TopologySpec::LocalEvents {
                p_add_links,
                q_rewire,
                ..
            } => {
                members.push(("p_add_links".to_string(), JsonValue::from_f64(p_add_links)));
                members.push(("q_rewire".to_string(), JsonValue::from_f64(q_rewire)));
            }
            TopologySpec::Attractiveness { a, .. } => {
                members.push(("a".to_string(), JsonValue::from_f64(a)));
            }
            _ => {}
        }
        members.push((
            "cutoff".to_string(),
            JsonValue::from_opt_usize(self.cutoff()),
        ));
        JsonValue::Object(members)
    }
}

impl FromJson for TopologySpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "topology";
        // Snapshot is the one family with no generator parameters, so it is dispatched
        // before the shared nodes/m/cutoff fields are required.
        if req_str(value, "family", CTX)? == "snapshot" {
            check_fields(value, CTX, &["family", "path"])?;
            return Ok(TopologySpec::Snapshot {
                path: req_str(value, "path", CTX)?.to_string(),
            });
        }
        let nodes = req_usize(value, "nodes", CTX)?;
        let m = req_usize(value, "m", CTX)?;
        let cutoff = opt_usize(value, "cutoff", CTX)?;
        const BASE: [&str; 4] = ["family", "nodes", "m", "cutoff"];
        let fields = |extra: &[&str]| {
            let mut allowed: Vec<&str> = BASE.to_vec();
            allowed.extend_from_slice(extra);
            check_fields(value, CTX, &allowed)
        };
        match req_str(value, "family", CTX)? {
            "pa" => {
                fields(&[])?;
                Ok(TopologySpec::Pa { nodes, m, cutoff })
            }
            "hapa" => {
                fields(&[])?;
                Ok(TopologySpec::Hapa { nodes, m, cutoff })
            }
            "cm" => {
                fields(&["gamma"])?;
                Ok(TopologySpec::Cm {
                    nodes,
                    gamma: req_f64(value, "gamma", CTX)?,
                    m,
                    cutoff,
                })
            }
            "ucm" => {
                fields(&["gamma"])?;
                Ok(TopologySpec::Ucm {
                    nodes,
                    gamma: req_f64(value, "gamma", CTX)?,
                    m,
                    cutoff,
                })
            }
            "dapa_grn" => {
                fields(&["tau_sub"])?;
                Ok(TopologySpec::DapaGrn {
                    nodes,
                    m,
                    tau_sub: req_u32(value, "tau_sub", CTX)?,
                    cutoff,
                })
            }
            "dapa_mesh" => {
                fields(&["tau_sub"])?;
                Ok(TopologySpec::DapaMesh {
                    nodes,
                    m,
                    tau_sub: req_u32(value, "tau_sub", CTX)?,
                    cutoff,
                })
            }
            "nonlinear_pa" => {
                fields(&["alpha"])?;
                Ok(TopologySpec::NonlinearPa {
                    nodes,
                    m,
                    alpha: req_f64(value, "alpha", CTX)?,
                    cutoff,
                })
            }
            "fitness" => {
                fields(&["distribution"])?;
                Ok(TopologySpec::Fitness {
                    nodes,
                    m,
                    distribution: FitnessDistribution::from_json(req(value, "distribution", CTX)?)?,
                    cutoff,
                })
            }
            "local_events" => {
                fields(&["p_add_links", "q_rewire"])?;
                Ok(TopologySpec::LocalEvents {
                    nodes,
                    m,
                    p_add_links: req_f64(value, "p_add_links", CTX)?,
                    q_rewire: req_f64(value, "q_rewire", CTX)?,
                    cutoff,
                })
            }
            "attractiveness" => {
                fields(&["a"])?;
                Ok(TopologySpec::Attractiveness {
                    nodes,
                    m,
                    a: req_f64(value, "a", CTX)?,
                    cutoff,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown family \"{other}\""
            ))),
        }
    }
}

fn opt_k_min(value: &JsonValue) -> Result<Option<usize>, ScenarioError> {
    opt_usize(value, "k_min", "search")
}

impl ToJson for SearchSpec {
    fn to_json(&self) -> JsonValue {
        let tag = |s: &str| ("algorithm".to_string(), JsonValue::from_str_value(s));
        match *self {
            SearchSpec::Flooding => JsonValue::Object(vec![tag("flooding")]),
            SearchSpec::NormalizedFlooding { k_min } => JsonValue::Object(vec![
                tag("normalized_flooding"),
                ("k_min".to_string(), JsonValue::from_opt_usize(k_min)),
            ]),
            SearchSpec::ProbabilisticFlooding { p } => JsonValue::Object(vec![
                tag("probabilistic_flooding"),
                ("p".to_string(), JsonValue::from_f64(p)),
            ]),
            SearchSpec::ExpandingRing {
                initial_ttl,
                increment,
            } => JsonValue::Object(vec![
                tag("expanding_ring"),
                (
                    "initial_ttl".to_string(),
                    JsonValue::from_u64(u64::from(initial_ttl)),
                ),
                (
                    "increment".to_string(),
                    JsonValue::from_u64(u64::from(increment)),
                ),
            ]),
            SearchSpec::RandomWalk => JsonValue::Object(vec![tag("random_walk")]),
            SearchSpec::MultipleRandomWalk { walkers } => JsonValue::Object(vec![
                tag("multiple_random_walk"),
                ("walkers".to_string(), JsonValue::from_usize(walkers)),
            ]),
            SearchSpec::DegreeBiasedWalk => JsonValue::Object(vec![tag("degree_biased_walk")]),
            SearchSpec::RwNormalizedToNf { k_min } => JsonValue::Object(vec![
                tag("rw_normalized_to_nf"),
                ("k_min".to_string(), JsonValue::from_opt_usize(k_min)),
            ]),
        }
    }
}

impl FromJson for SearchSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "search";
        let fields = |extra: &[&str]| {
            let mut allowed: Vec<&str> = vec!["algorithm"];
            allowed.extend_from_slice(extra);
            check_fields(value, CTX, &allowed)
        };
        match req_str(value, "algorithm", CTX)? {
            "flooding" => {
                fields(&[])?;
                Ok(SearchSpec::Flooding)
            }
            "normalized_flooding" => {
                fields(&["k_min"])?;
                Ok(SearchSpec::NormalizedFlooding {
                    k_min: opt_k_min(value)?,
                })
            }
            "probabilistic_flooding" => {
                fields(&["p"])?;
                Ok(SearchSpec::ProbabilisticFlooding {
                    p: req_f64(value, "p", CTX)?,
                })
            }
            "expanding_ring" => {
                fields(&["initial_ttl", "increment"])?;
                Ok(SearchSpec::ExpandingRing {
                    initial_ttl: req_u32(value, "initial_ttl", CTX)?,
                    increment: req_u32(value, "increment", CTX)?,
                })
            }
            "random_walk" => {
                fields(&[])?;
                Ok(SearchSpec::RandomWalk)
            }
            "multiple_random_walk" => {
                fields(&["walkers"])?;
                Ok(SearchSpec::MultipleRandomWalk {
                    walkers: req_usize(value, "walkers", CTX)?,
                })
            }
            "degree_biased_walk" => {
                fields(&[])?;
                Ok(SearchSpec::DegreeBiasedWalk)
            }
            "rw_normalized_to_nf" => {
                fields(&["k_min"])?;
                Ok(SearchSpec::RwNormalizedToNf {
                    k_min: opt_k_min(value)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown algorithm \"{other}\""
            ))),
        }
    }
}

impl ToJson for DynamicsSpec {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![("kind".to_string(), JsonValue::from_str_value(self.kind()))];
        match self {
            DynamicsSpec::Static => {}
            DynamicsSpec::Churn { sim } => members.push(("sim".to_string(), sim.to_json())),
            DynamicsSpec::Trace { trace, run } => {
                members.push(("trace".to_string(), trace.to_json()));
                members.push(("run".to_string(), run.to_json()));
            }
            DynamicsSpec::Live { live, snapshot } => {
                members.push(("live".to_string(), live.to_json()));
                members.push(("snapshot".to_string(), JsonValue::from_str_value(snapshot)));
            }
        }
        JsonValue::Object(members)
    }
}

impl FromJson for DynamicsSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "dynamics";
        match req_str(value, "kind", CTX)? {
            "static" => {
                check_fields(value, CTX, &["kind"])?;
                Ok(DynamicsSpec::Static)
            }
            "churn" => {
                check_fields(value, CTX, &["kind", "sim"])?;
                Ok(DynamicsSpec::Churn {
                    sim: SimulationConfig::from_json(req(value, "sim", CTX)?)?,
                })
            }
            "trace" => {
                check_fields(value, CTX, &["kind", "trace", "run"])?;
                Ok(DynamicsSpec::Trace {
                    trace: ChurnTraceConfig::from_json(req(value, "trace", CTX)?)?,
                    run: TraceRunConfig::from_json(req(value, "run", CTX)?)?,
                })
            }
            "live" => {
                check_fields(value, CTX, &["kind", "live", "snapshot"])?;
                Ok(DynamicsSpec::Live {
                    live: LiveConfig::from_json(req(value, "live", CTX)?)?,
                    snapshot: req_str(value, "snapshot", CTX)?.to_string(),
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown kind \"{other}\" (expected static, churn, trace, or live)"
            ))),
        }
    }
}

impl ToJson for SweepSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "stubs".to_string(),
                JsonValue::Array(
                    self.stubs
                        .iter()
                        .map(|&m| JsonValue::from_usize(m))
                        .collect(),
                ),
            ),
            (
                "cutoffs".to_string(),
                JsonValue::Array(
                    self.cutoffs
                        .iter()
                        .map(|&c| JsonValue::from_opt_usize(c))
                        .collect(),
                ),
            ),
            (
                "ttls".to_string(),
                JsonValue::Array(
                    self.ttls
                        .iter()
                        .map(|&t| JsonValue::from_u64(u64::from(t)))
                        .collect(),
                ),
            ),
            (
                "searches_per_point".to_string(),
                JsonValue::from_usize(self.searches_per_point),
            ),
            ("threads".to_string(), JsonValue::from_usize(self.threads)),
            (
                "shard_count".to_string(),
                JsonValue::from_usize(self.shard_count),
            ),
            ("batch".to_string(), JsonValue::Bool(self.batch)),
            (
                "workers".to_string(),
                JsonValue::Array(
                    self.workers
                        .iter()
                        .map(|w| JsonValue::from_str_value(w))
                        .collect(),
                ),
            ),
            ("placed".to_string(), JsonValue::Bool(self.placed)),
        ])
    }
}

impl FromJson for SweepSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "sweep";
        check_fields(
            value,
            CTX,
            &[
                "stubs",
                "cutoffs",
                "ttls",
                "searches_per_point",
                "threads",
                "shard_count",
                "batch",
                "workers",
                "placed",
            ],
        )?;
        let stubs = match value.get("stubs") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ScenarioError::invalid("sweep: \"stubs\" must be an array"))?
                .iter()
                .map(|item| {
                    item.as_usize()
                        .ok_or_else(|| ScenarioError::invalid("sweep: stubs must be integers"))
                })
                .collect::<Result<Vec<usize>, ScenarioError>>()?,
        };
        let cutoffs = match value.get("cutoffs") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ScenarioError::invalid("sweep: \"cutoffs\" must be an array"))?
                .iter()
                .map(|item| {
                    if item.is_null() {
                        Ok(None)
                    } else {
                        item.as_usize().map(Some).ok_or_else(|| {
                            ScenarioError::invalid("sweep: cutoffs must be integers or null")
                        })
                    }
                })
                .collect::<Result<Vec<Option<usize>>, ScenarioError>>()?,
        };
        // Absent `ttls`/`searches_per_point` default to the empty measurement (the shape
        // degree-distribution scenarios use); search sweeps enforce non-empty values at
        // validation time.
        let ttls = match value.get("ttls") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ScenarioError::invalid("sweep: \"ttls\" must be an array"))?
                .iter()
                .map(|item| {
                    item.as_u64()
                        .and_then(|t| u32::try_from(t).ok())
                        .ok_or_else(|| {
                            ScenarioError::invalid("sweep: ttls must be 32-bit integers")
                        })
                })
                .collect::<Result<Vec<u32>, ScenarioError>>()?,
        };
        let threads = opt_usize(value, "threads", CTX)?.unwrap_or(0);
        let batch = match value.get("batch") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ScenarioError::invalid("sweep: \"batch\" must be a boolean"))?,
        };
        // Absent `workers` (every pre-`sfo-net` spec file) means local execution.
        let workers = match value.get("workers") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ScenarioError::invalid("sweep: \"workers\" must be an array"))?
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        ScenarioError::invalid(
                            "sweep: workers must be address strings \
                             (\"host:port\" or \"unix:/path\")",
                        )
                    })
                })
                .collect::<Result<Vec<String>, ScenarioError>>()?,
        };
        // Absent `placed` (every pre-placement spec file) means whole-snapshot ranges.
        let placed = match value.get("placed") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ScenarioError::invalid("sweep: \"placed\" must be a boolean"))?,
        };
        Ok(SweepSpec {
            stubs,
            cutoffs,
            ttls,
            searches_per_point: opt_usize(value, "searches_per_point", CTX)?.unwrap_or(0),
            threads,
            shard_count: opt_usize(value, "shard_count", CTX)?.unwrap_or(0),
            batch,
            workers,
            placed,
        })
    }
}

impl ToJson for ScenarioSpec {
    fn to_json(&self) -> JsonValue {
        let opt = |v: Option<JsonValue>| v.unwrap_or(JsonValue::Null);
        JsonValue::Object(vec![
            ("name".to_string(), JsonValue::from_str_value(&self.name)),
            (
                "topology".to_string(),
                opt(self.topology.as_ref().map(ToJson::to_json)),
            ),
            (
                "search".to_string(),
                opt(self.search.as_ref().map(ToJson::to_json)),
            ),
            ("dynamics".to_string(), self.dynamics.to_json()),
            (
                "sweep".to_string(),
                opt(self.sweep.as_ref().map(ToJson::to_json)),
            ),
            ("measure".to_string(), self.measure.to_json()),
            ("seed".to_string(), JsonValue::from_u64(self.seed)),
            (
                "realizations".to_string(),
                JsonValue::from_usize(self.realizations),
            ),
            (
                "curve_label".to_string(),
                opt(self.curve_label.as_deref().map(JsonValue::from_str_value)),
            ),
        ])
    }
}

impl FromJson for ScenarioSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "scenario";
        check_fields(
            value,
            CTX,
            &[
                "name",
                "topology",
                "search",
                "dynamics",
                "sweep",
                "measure",
                "seed",
                "realizations",
                "curve_label",
            ],
        )?;
        let section = |key: &str| -> Option<&JsonValue> { value.get(key).filter(|v| !v.is_null()) };
        Ok(ScenarioSpec {
            name: req_str(value, "name", CTX)?.to_string(),
            topology: section("topology")
                .map(TopologySpec::from_json)
                .transpose()?,
            search: section("search").map(SearchSpec::from_json).transpose()?,
            dynamics: DynamicsSpec::from_json(req(value, "dynamics", CTX)?)?,
            sweep: section("sweep").map(SweepSpec::from_json).transpose()?,
            // Absent (pre-engine spec files) defaults to the search sweep.
            measure: section("measure")
                .map(MeasureSpec::from_json)
                .transpose()?
                .unwrap_or(MeasureSpec::SearchSweep),
            seed: req_u64(value, "seed", CTX)?,
            realizations: req_usize(value, "realizations", CTX)?,
            curve_label: section("curve_label")
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| {
                        ScenarioError::invalid("scenario: \"curve_label\" must be a string")
                    })
                })
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies(nodes: usize) -> Vec<TopologySpec> {
        vec![
            TopologySpec::Pa {
                nodes,
                m: 2,
                cutoff: Some(10),
            },
            TopologySpec::Hapa {
                nodes,
                m: 2,
                cutoff: None,
            },
            TopologySpec::Cm {
                nodes,
                gamma: 2.2,
                m: 2,
                cutoff: Some(20),
            },
            TopologySpec::Ucm {
                nodes,
                gamma: 2.6,
                m: 1,
                cutoff: None,
            },
            TopologySpec::DapaGrn {
                nodes,
                m: 2,
                tau_sub: 4,
                cutoff: Some(15),
            },
            TopologySpec::DapaMesh {
                nodes,
                m: 2,
                tau_sub: 6,
                cutoff: None,
            },
            TopologySpec::NonlinearPa {
                nodes,
                m: 2,
                alpha: 0.8,
                cutoff: None,
            },
            TopologySpec::Fitness {
                nodes,
                m: 2,
                distribution: FitnessDistribution::UniformRange { min: 0.1, max: 1.0 },
                cutoff: Some(25),
            },
            TopologySpec::LocalEvents {
                nodes,
                m: 2,
                p_add_links: 0.2,
                q_rewire: 0.1,
                cutoff: None,
            },
            TopologySpec::Attractiveness {
                nodes,
                m: 2,
                a: 2.0,
                cutoff: Some(30),
            },
        ]
    }

    #[test]
    fn every_family_round_trips_through_json() {
        for spec in all_topologies(200) {
            let text = spec.to_json().to_pretty_string();
            let back = TopologySpec::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn every_family_builds_and_generates() {
        use rand::SeedableRng;
        for spec in all_topologies(120) {
            spec.validate().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            let generator = spec.build().unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let graph = generator
                .generate(&mut rng)
                .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(graph.node_count(), 120, "{spec:?}");
            if let Some(k_c) = spec.cutoff() {
                assert!(graph.max_degree().unwrap() <= k_c, "{spec:?}");
            }
        }
    }

    #[test]
    fn labels_match_the_legacy_legend_strings() {
        assert_eq!(
            TopologySpec::Pa {
                nodes: 10,
                m: 2,
                cutoff: Some(10)
            }
            .label(),
            "PA, m=2, k_c=10"
        );
        assert_eq!(
            TopologySpec::Cm {
                nodes: 10,
                gamma: 2.2,
                m: 1,
                cutoff: None
            }
            .label(),
            "CM gamma=2.2, m=1, no k_c"
        );
        assert_eq!(
            TopologySpec::Cm {
                nodes: 10,
                gamma: 3.0,
                m: 3,
                cutoff: Some(40)
            }
            .label(),
            "CM gamma=3, m=3, k_c=40"
        );
        assert_eq!(
            TopologySpec::DapaGrn {
                nodes: 10,
                m: 1,
                tau_sub: 4,
                cutoff: Some(50)
            }
            .label(),
            "DAPA m=1, k_c=50, tau_sub=4"
        );
    }

    #[test]
    fn parameter_variants_get_distinct_labels() {
        // Labels are stream-family salts and curve identities, so configurations that
        // differ in any generator parameter must not collide.
        let fitness = |distribution| TopologySpec::Fitness {
            nodes: 100,
            m: 2,
            distribution,
            cutoff: None,
        };
        assert_ne!(
            fitness(FitnessDistribution::Uniform).label(),
            fitness(FitnessDistribution::Exponential { rate: 1.0 }).label()
        );
        assert_ne!(
            fitness(FitnessDistribution::Exponential { rate: 1.0 }).label(),
            fitness(FitnessDistribution::Exponential { rate: 2.0 }).label()
        );
        let local = |p, q| TopologySpec::LocalEvents {
            nodes: 100,
            m: 2,
            p_add_links: p,
            q_rewire: q,
            cutoff: None,
        };
        assert_ne!(local(0.2, 0.1).label(), local(0.1, 0.2).label());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        // A typo must fail loudly instead of silently running a different experiment.
        let misspelled_cutoff =
            JsonValue::parse(r#"{"family": "pa", "nodes": 100, "m": 2, "cutof": 10}"#).unwrap();
        let err = TopologySpec::from_json(&misspelled_cutoff).unwrap_err();
        assert!(err.to_string().contains("cutof"), "{err}");

        let misspelled_k_min =
            JsonValue::parse(r#"{"algorithm": "normalized_flooding", "kmin": 5}"#).unwrap();
        assert!(matches!(
            SearchSpec::from_json(&misspelled_k_min),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        // Fields of another variant are also rejected.
        let wrong_variant_field =
            JsonValue::parse(r#"{"family": "pa", "nodes": 100, "m": 2, "gamma": 2.2}"#).unwrap();
        assert!(TopologySpec::from_json(&wrong_variant_field).is_err());

        let misspelled_sweep_threads =
            JsonValue::parse(r#"{"ttls": [1, 2], "searches_per_point": 5, "thread": 4}"#).unwrap();
        assert!(matches!(
            SweepSpec::from_json(&misspelled_sweep_threads),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn invalid_topologies_yield_typed_errors() {
        let zero_nodes = TopologySpec::Pa {
            nodes: 0,
            m: 2,
            cutoff: None,
        };
        assert!(matches!(
            zero_nodes.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));
        let cutoff_below_m = TopologySpec::Pa {
            nodes: 100,
            m: 3,
            cutoff: Some(2),
        };
        assert!(matches!(
            cutoff_below_m.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));
        let zero_m = TopologySpec::Pa {
            nodes: 100,
            m: 0,
            cutoff: None,
        };
        assert!(matches!(zero_m.validate(), Err(ScenarioError::Topology(_))));
    }

    #[test]
    fn search_specs_round_trip_and_validate() {
        let specs = [
            SearchSpec::Flooding,
            SearchSpec::NormalizedFlooding { k_min: None },
            SearchSpec::NormalizedFlooding { k_min: Some(3) },
            SearchSpec::ProbabilisticFlooding { p: 0.5 },
            SearchSpec::ExpandingRing {
                initial_ttl: 1,
                increment: 2,
            },
            SearchSpec::RandomWalk,
            SearchSpec::MultipleRandomWalk { walkers: 4 },
            SearchSpec::DegreeBiasedWalk,
            SearchSpec::RwNormalizedToNf { k_min: None },
        ];
        for spec in specs {
            spec.validate().unwrap();
            let text = spec.to_json().to_pretty_string();
            let back = SearchSpec::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "{text}");
            let _ = spec.build(2).unwrap();
        }
        assert!(SearchSpec::NormalizedFlooding { k_min: Some(0) }
            .validate()
            .is_err());
        assert!(SearchSpec::ProbabilisticFlooding { p: 1.5 }
            .validate()
            .is_err());
        assert!(SearchSpec::MultipleRandomWalk { walkers: 0 }
            .validate()
            .is_err());
    }

    #[test]
    fn sweep_expansion_follows_grid_order() {
        let spec = ScenarioSpec::sweep(
            "grid",
            TopologySpec::Pa {
                nodes: 100,
                m: 1,
                cutoff: None,
            },
            SearchSpec::Flooding,
            SweepSpec::grid(vec![1, 2], vec![Some(10), None], vec![1, 2], 5),
            7,
            1,
        );
        let labels: Vec<String> = spec
            .expanded_topologies()
            .iter()
            .map(TopologySpec::label)
            .collect();
        assert_eq!(
            labels,
            vec![
                "PA, m=1, k_c=10",
                "PA, m=1, no k_c",
                "PA, m=2, k_c=10",
                "PA, m=2, no k_c",
            ]
        );
    }

    #[test]
    fn empty_sweep_axes_keep_the_base_configuration() {
        let spec = ScenarioSpec::sweep(
            "single",
            TopologySpec::Hapa {
                nodes: 100,
                m: 3,
                cutoff: Some(12),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![4], 5),
            7,
            1,
        );
        let expanded = spec.expanded_topologies();
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].m(), 3);
        assert_eq!(expanded[0].cutoff(), Some(12));
    }

    #[test]
    fn scenario_validation_enforces_the_static_dynamic_split() {
        let mut churn = ScenarioSpec::churn("churn", SimulationConfig::small(), 1, 1);
        churn.validate().unwrap();
        churn.topology = Some(TopologySpec::Pa {
            nodes: 100,
            m: 2,
            cutoff: None,
        });
        assert!(matches!(
            churn.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        let mut incomplete = ScenarioSpec::sweep(
            "static",
            TopologySpec::Pa {
                nodes: 100,
                m: 2,
                cutoff: None,
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![2], 5),
            1,
            1,
        );
        incomplete.sweep = None;
        assert!(matches!(
            incomplete.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn invalid_dynamic_specs_yield_typed_errors() {
        use sfo_sim::catalog::ItemId;
        use sfo_sim::workload::Workload;

        let mut sim = SimulationConfig::small();
        sim.initial_peers = 0;
        let spec = ScenarioSpec::churn("bad-churn", sim, 1, 1);
        assert!(matches!(spec.validate(), Err(ScenarioError::Sim(_))));

        let trace_cfg = ChurnTraceConfig {
            duration: 100,
            arrival_rate: 0.5,
            sessions: sfo_sim::churn::SessionModel::Exponential { mean: 40.0 },
            crash_fraction: 0.2,
        };
        let mut run = TraceRunConfig::small();
        run.workload = Workload::FlashCrowd {
            hot_item: ItemId::new(0),
            start: 0,
            end: 50,
            intensity: 1.5, // out of [0, 1]
        };
        let spec = ScenarioSpec::trace("bad-trace", trace_cfg, run, 1, 1);
        assert!(matches!(spec.validate(), Err(ScenarioError::Sim(_))));
    }

    #[test]
    fn scenario_specs_round_trip_through_json_text() {
        let static_spec = ScenarioSpec::sweep(
            "fig6-pa",
            TopologySpec::Pa {
                nodes: 1000,
                m: 1,
                cutoff: None,
            },
            SearchSpec::NormalizedFlooding { k_min: None },
            SweepSpec::grid(
                vec![1, 2, 3],
                vec![Some(10), Some(50), None],
                vec![2, 4, 6],
                20,
            ),
            42,
            3,
        );
        let churn_spec = ScenarioSpec::churn("churn", SimulationConfig::small(), 7, 2);
        let trace_spec = ScenarioSpec::trace(
            "trace",
            ChurnTraceConfig {
                duration: 300,
                arrival_rate: 0.4,
                sessions: sfo_sim::churn::SessionModel::Pareto {
                    shape: 1.6,
                    minimum: 30.0,
                },
                crash_fraction: 0.25,
            },
            TraceRunConfig::small(),
            9,
            1,
        );
        let mut batched_spec = ScenarioSpec::sweep(
            "batched",
            TopologySpec::Pa {
                nodes: 500,
                m: 2,
                cutoff: Some(20),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2], 10).with_engine(4),
            3,
            2,
        );
        batched_spec.sweep.as_mut().unwrap().threads = 2;
        let degree_spec = ScenarioSpec::degree_distribution(
            "degrees",
            TopologySpec::Hapa {
                nodes: 400,
                m: 1,
                cutoff: Some(15),
            },
            Some(SweepSpec::axes(vec![1, 2], vec![Some(10), None])),
            8,
            11,
            2,
        );
        for spec in [
            static_spec,
            churn_spec,
            trace_spec,
            batched_spec,
            degree_spec,
        ] {
            let text = spec.to_json_string();
            let back = ScenarioSpec::parse(&text).unwrap();
            assert_eq!(back, spec, "{text}");
            // Serialization is deterministic.
            assert_eq!(back.to_json_string(), text);
        }
    }

    #[test]
    fn engine_knobs_default_off_and_old_spec_files_still_parse() {
        // A pre-engine spec file: no shard_count/batch in the sweep, no measure section.
        let text = r#"{
            "name": "legacy",
            "topology": {"family": "pa", "nodes": 100, "m": 2, "cutoff": null},
            "search": {"algorithm": "flooding"},
            "dynamics": {"kind": "static"},
            "sweep": {"ttls": [1, 2], "searches_per_point": 5, "threads": 0},
            "seed": 1,
            "realizations": 1
        }"#;
        let spec = ScenarioSpec::parse(text).unwrap();
        spec.validate().unwrap();
        let sweep = spec.sweep.as_ref().unwrap();
        assert_eq!(sweep.shard_count, 0);
        assert!(!sweep.batch);
        assert_eq!(spec.measure, MeasureSpec::SearchSweep);
        // with_engine turns both knobs on.
        let engined = SweepSpec::single(vec![1], 1).with_engine(8);
        assert_eq!(engined.shard_count, 8);
        assert!(engined.batch);
    }

    #[test]
    fn measure_specs_round_trip_and_reject_unknown_kinds() {
        for measure in [
            MeasureSpec::SearchSweep,
            MeasureSpec::DegreeDistribution { bins_per_decade: 8 },
        ] {
            let text = measure.to_json().to_pretty_string();
            let back = MeasureSpec::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            assert_eq!(back, measure, "{text}");
        }
        let bad = JsonValue::parse(r#"{"kind": "entropy"}"#).unwrap();
        assert!(matches!(
            MeasureSpec::from_json(&bad),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn degree_scenario_validation_enforces_its_shape() {
        let topology = TopologySpec::Pa {
            nodes: 100,
            m: 2,
            cutoff: None,
        };
        let good = ScenarioSpec::degree_distribution("deg", topology.clone(), None, 8, 1, 1);
        good.validate().unwrap();

        // A search section is meaningless for a degree measure.
        let mut with_search = good.clone();
        with_search.search = Some(SearchSpec::Flooding);
        assert!(matches!(
            with_search.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        // Sweep measurement knobs must stay empty.
        let mut with_ttls = good.clone();
        with_ttls.sweep = Some(SweepSpec::single(vec![1], 5));
        assert!(matches!(
            with_ttls.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        // Zero bins per decade cannot bin anything.
        let zero_bins = ScenarioSpec::degree_distribution("deg", topology, None, 0, 1, 1);
        assert!(matches!(
            zero_bins.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        // Dynamic scenarios only support the search-sweep measure.
        let mut churn = ScenarioSpec::churn("churn", SimulationConfig::small(), 1, 1);
        churn.measure = MeasureSpec::DegreeDistribution { bins_per_decade: 8 };
        assert!(matches!(
            churn.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }
}
